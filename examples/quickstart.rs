//! Quickstart: fuzz a simulated PostgreSQL with LEGO for a small budget and
//! print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lego_fuzz::prelude::*;

fn main() {
    // 1. A fuzzer: LEGO with default configuration (LEN = 5).
    let mut fuzzer = LegoFuzzer::new(Dialect::Postgres, Config::default());

    // 2. A budget: 50k statement-execution units (a few seconds).
    let budget = Budget::units(50_000);

    // 3. Run the campaign. Each test case executes against a fresh simulated
    //    PostgreSQL; coverage feedback drives affinity analysis and
    //    progressive sequence synthesis.
    let stats = run_campaign(&mut fuzzer, Dialect::Postgres, budget);

    println!("fuzzer            : {}", stats.fuzzer);
    println!("test cases run    : {}", stats.execs);
    println!("branches covered  : {}", stats.branches);
    println!("type-affinities   : {}", stats.corpus_affinities);
    println!("retained seeds    : {}", stats.corpus_size);
    println!("bugs found        : {}", stats.bugs.len());
    for bug in &stats.bugs {
        println!(
            "  [{}] {} in {} ({:?}) at exec #{}",
            bug.crash.identifier,
            bug.crash.bug_type.name(),
            bug.crash.component.name(),
            bug.crash.dialect,
            bug.first_exec
        );
    }

    // 4. The coverage curve, suitable for plotting.
    println!("\ncoverage over time (units, branches):");
    for (units, branches) in stats.coverage_curve.iter().step_by(5) {
        println!("  {units:>8}  {branches}");
    }
}
