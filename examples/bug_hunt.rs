//! Bug hunt: reproduce the paper's § V.B case study by hand, then let LEGO
//! rediscover planted memory-safety bugs on MariaDB.
//!
//! ```sh
//! cargo run --release --example bug_hunt
//! ```

use lego_fuzz::prelude::*;

fn main() {
    // --- Part 1: the PostgreSQL case study (Figure 7), replayed verbatim. --
    // CREATE TABLE → CREATE RULE (DO INSTEAD NOTIFY) → COPY → WITH: the
    // rewriter replaces the data-modifying CTE with a NOTIFY it cannot plan,
    // and the optimizer dereferences a NULL jointree.
    let case_study = "\
        CREATE TABLE v0( v4 INT, v3 INT UNIQUE, v2 INT , v1 INT UNIQUE ) ;\n\
        CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY COMPRESSION;\n\
        COPY ( SELECT 32 EXCEPT SELECT v3 + 16 FROM v0 ) TO STDOUT CSV HEADER ;\n\
        WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = - - - 48;";

    println!("=== Case study: CREATE RULE → NOTIFY → COPY → WITH ===\n{case_study}\n");
    let mut pg = Dbms::new(Dialect::Postgres);
    let report = pg.execute_script(case_study);
    match report.crash() {
        Some(crash) => {
            println!("server crashed: {} ({})", crash.identifier, crash.bug_type.name());
            println!("component     : {}", crash.component.name());
            println!("call stack    :");
            for frame in &crash.stack {
                println!("  {frame}");
            }
        }
        None => println!("no crash?! the case study should SEGV"),
    }

    // --- Part 2: let LEGO find sequence bugs in MariaDB on its own. --------
    println!("\n=== LEGO vs MariaDB (300k units) ===");
    let mut fuzzer = LegoFuzzer::new(Dialect::MariaDb, Config::default());
    let stats = run_campaign(&mut fuzzer, Dialect::MariaDb, Budget::units(300_000));
    println!("{} executions, {} branches, {} bugs:", stats.execs, stats.branches, stats.bugs.len());
    for bug in &stats.bugs {
        println!(
            "\n[{}] {} in {}, found at exec #{}; reproducer:",
            bug.crash.identifier,
            bug.crash.bug_type.name(),
            bug.crash.component.name(),
            bug.first_exec
        );
        for line in bug.case_sql.lines() {
            println!("  {line}");
        }
    }
}
