//! Compare all five engines (LEGO, LEGO-, SQUIRREL, SQLancer, SQLsmith) on
//! one simulated DBMS under identical budgets — a miniature Figure 9 cell.
//!
//! ```sh
//! cargo run --release --example compare_fuzzers [units] [pg|mysql|maria|comdb2]
//! ```

use lego_fuzz::baselines::engine_by_name;
use lego_fuzz::prelude::*;

fn main() {
    let units: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(150_000);
    let dialect = match std::env::args().nth(2).as_deref() {
        Some("mysql") => Dialect::MySql,
        Some("maria") => Dialect::MariaDb,
        Some("comdb2") => Dialect::Comdb2,
        _ => Dialect::Postgres,
    };
    println!("{} — {} statement units per engine\n", dialect.name(), units);
    println!("{:<9} {:>9} {:>9} {:>11} {:>6}", "fuzzer", "branches", "execs", "affinities", "bugs");
    let mut names = vec!["LEGO", "LEGO-", "SQUIRREL", "SQLancer"];
    if dialect == Dialect::Postgres {
        names.push("SQLsmith");
    }
    for name in names {
        let mut engine = engine_by_name(name, dialect, 0x1e60);
        let stats = run_campaign(engine.as_mut(), dialect, Budget::units(units));
        println!(
            "{:<9} {:>9} {:>9} {:>11} {:>6}",
            stats.fuzzer,
            stats.branches,
            stats.execs,
            stats.corpus_affinities,
            stats.bugs.len()
        );
    }
}
