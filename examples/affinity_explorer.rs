//! Affinity explorer: the paper's Algorithms 2 and 3 on display.
//!
//! Extracts type-affinities from example scripts (Algorithm 2), then
//! progressively synthesizes all affinity-consistent SQL Type Sequences up
//! to LEN (Algorithm 3) and instantiates one into an executable test case.
//!
//! ```sh
//! cargo run --release --example affinity_explorer
//! ```

use lego_fuzz::fuzzer::instantiate::{instantiate, AstLibrary};
use lego_fuzz::fuzzer::synthesis::SequenceStore;
use lego_fuzz::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // Two test cases in the style of the paper's Figure 5.
    let scripts = [
        "CREATE TABLE t1 (v1 INT, v2 INT);\n\
         INSERT INTO t1 VALUES (1, 1);\n\
         INSERT INTO t1 VALUES (2, 1);\n\
         UPDATE t1 SET v1 = 1;\n\
         SELECT * FROM t1 ORDER BY v1;",
        "CREATE TABLE t2 (a INT);\n\
         INSERT INTO t2 VALUES (3);\n\
         DELETE FROM t2 WHERE a = 3;\n\
         SELECT COUNT(*) FROM t2;",
    ];

    // Algorithm 2: type-affinity analysis.
    let mut map = AffinityMap::new();
    let mut all_new = Vec::new();
    for script in scripts {
        let case = lego_fuzz::sqlparser::parse_script(script).expect("parse");
        println!(
            "type sequence: {:?}",
            case.type_sequence().iter().map(|k| k.name()).collect::<Vec<_>>()
        );
        let new = map.analyze(&case);
        for (a, b) in &new {
            println!("  new affinity: {} -> {}", a.name(), b.name());
        }
        all_new.extend(new);
    }
    println!("\naffinity map now holds {} pairs", map.len());

    // Algorithm 3: progressive synthesis with the Prefix Sequence index.
    let starters: Vec<StmtKind> = Dialect::Postgres
        .supported_kinds()
        .into_iter()
        .filter(|k| k.is_sequence_starter())
        .collect();
    let mut store = SequenceStore::new(5, &starters);
    for (t1, t2) in all_new {
        let fresh = store.on_new_affinity(t1, t2, &map, 1_000);
        if !fresh.is_empty() {
            println!(
                "affinity {} -> {} synthesized {} new sequences",
                t1.name(),
                t2.name(),
                fresh.len()
            );
        }
    }
    println!("\n{} sequences synthesized in total; a sample:", store.len());
    for seq in store.sequences().iter().rev().take(5) {
        println!("  {:?}", seq.iter().map(|k| k.name()).collect::<Vec<_>>());
    }

    // Instantiation: sequence -> executable SQL (with dependency fixing).
    let longest =
        store.sequences().iter().max_by_key(|s| s.len()).expect("store is non-empty").clone();
    let mut rng = SmallRng::seed_from_u64(42);
    let lib = AstLibrary::new();
    let case = instantiate(&longest, &lib, Dialect::Postgres, &mut rng);
    println!("\ninstantiating {:?}:", longest.iter().map(|k| k.name()).collect::<Vec<_>>());
    println!("{}", case.to_sql());

    // And it runs.
    let mut db = Dbms::new(Dialect::Postgres);
    let report = db.execute_case(&case);
    println!(
        "executed {} statements with {} semantic errors, {} branches covered",
        report.statements_executed,
        report.errors.len(),
        report.coverage.edge_count()
    );
}
