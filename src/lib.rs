#![forbid(unsafe_code)]

//! Facade crate for the `lego-fuzz` workspace: a Rust reproduction of
//! *Sequence-Oriented DBMS Fuzzing* (LEGO, ICDE 2023).
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! ```
//! use lego_fuzz::prelude::*;
//! ```

pub use lego as fuzzer;
pub use lego_baselines as baselines;
pub use lego_coverage as coverage;
pub use lego_dbms as dbms;
pub use lego_observe as observe;
pub use lego_sqlast as sqlast;
pub use lego_sqlparser as sqlparser;
pub use lego_sqlsema as sqlsema;

/// The items a typical user needs to run a fuzzing campaign.
pub mod prelude {
    pub use lego::prelude::*;
    pub use lego_dbms::prelude::*;
    pub use lego_sqlast::prelude::*;
}
