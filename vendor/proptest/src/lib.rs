#![forbid(unsafe_code)]

//! Offline vendored subset of `proptest`.
//!
//! Provides the `proptest!` macro, `prop_assert*` macros, `any::<T>()`,
//! integer-range / tuple / `prop::collection::vec` / string-pattern
//! strategies — the surface the workspace's property tests use. Cases are
//! generated from a deterministic per-test seed (FNV of the test name XOR
//! the case index), so failures reproduce without a persistence file; there
//! is no shrinking.

use rand::rngs::SmallRng;
use rand::Rng;

/// A failing property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// proptest-compatible alias.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Value-producing strategy (no shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

/// `any::<T>()` — the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen_bool(0.5)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// String strategies from a small regex subset: sequences of `.` or
/// `[class]` atoms, each with an optional `{n}` / `{m,n}` repeat. This covers
/// the patterns the workspace tests use (e.g. `"[ -~\n]{0,200}"`, `".{0,200}"`).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut SmallRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut SmallRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        // Parse one atom.
        let atom: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                Vec::new() // empty = "any char" sentinel
            }
            '[' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != ']' {
                    if chars[j] == '\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let class = parse_class(&chars[start..j.min(chars.len())]);
                i = j + 1;
                class
            }
            c => {
                i += 1;
                if c == '\\' && i < chars.len() {
                    let e = unescape(chars[i]);
                    i += 1;
                    vec![e]
                } else {
                    vec![c]
                }
            }
        };
        // Parse an optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let mut j = i + 1;
            while j < chars.len() && chars[j] != '}' {
                j += 1;
            }
            let body: String = chars[i + 1..j].iter().collect();
            i = j + 1;
            match body.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(0)),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1usize, 1usize)
        };
        let count = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        for _ in 0..count {
            if atom.is_empty() {
                out.push(sample_any_char(rng));
            } else {
                out.push(atom[rng.gen_range(0..atom.len())]);
            }
        }
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        c => c,
    }
}

fn parse_class(body: &[char]) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let c = if body[i] == '\\' && i + 1 < body.len() {
            i += 1;
            unescape(body[i])
        } else {
            body[i]
        };
        if i + 2 < body.len() && body[i + 1] == '-' && body[i + 2] != ']' {
            let hi = body[i + 2];
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    set
}

/// `.` — mostly printable ASCII, some whitespace, some non-ASCII unicode so
/// robustness tests see multi-byte input.
fn sample_any_char(rng: &mut SmallRng) -> char {
    match rng.gen_range(0u32..10) {
        0..=6 => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
        7 => ['\t', ' ', '\u{a0}'][rng.gen_range(0usize..3)],
        8 => char::from_u32(rng.gen_range(0xa1u32..0x250)).unwrap_or('é'),
        _ => char::from_u32(rng.gen_range(0x400u32..0x4ff)).unwrap_or('Ж'),
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lo: size.start, hi: size.end.saturating_sub(1) }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.hi > self.lo { rng.gen_range(self.lo..=self.hi) } else { self.lo };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespaced re-exports matching `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Deterministic per-test seed.
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}` at {}:{}",
            l,
            r,
            file!(),
            line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}` at {}:{}",
            l,
            r,
            file!(),
            line!()
        );
    }};
}

/// The `proptest!` block macro: expands each property into a `#[test]` that
/// samples its strategies `cases` times with a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::test_seed(stringify!($name));
                for case_idx in 0..config.cases as u64 {
                    let mut __rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(
                        base ^ case_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest case {} of `{}` failed: {}",
                            case_idx,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_char_class_with_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = sample_pattern("[ -~\n]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn pattern_dot_produces_bounded_strings() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = sample_pattern(".{0,50}", &mut rng);
            assert!(s.chars().count() <= 50);
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let strat = collection::vec((0u16..50, 0u16..50), 0..200);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 200);
            assert!(v.iter().all(|&(a, b)| a < 50 && b < 50));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0usize..10, y in any::<u64>()) {
            prop_assert!(x < 10);
            let _ = y;
            prop_assert_eq!(x, x);
        }
    }
}
