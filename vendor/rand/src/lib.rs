#![forbid(unsafe_code)]

//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the small slice of `rand` it actually uses. Bit-for-bit compatibility with
//! `rand 0.8.5` matters here: the bug oracle derives its trigger patterns
//! from seeded [`SmallRng`] streams, and every campaign is reproducible only
//! if the generator sequence is stable. The implementation therefore mirrors
//! the upstream algorithms exactly:
//!
//! * `SmallRng` (64-bit targets) is xoshiro256++, seeded from a `u64` via the
//!   SplitMix64 expansion, with `next_u32` taking the *high* half of
//!   `next_u64`.
//! * `gen_range` uses the widening-multiply rejection sampler
//!   (`sample_single_inclusive`) of `rand::distributions::uniform`.
//! * `gen_bool` uses the fixed-point Bernoulli comparison against a scaled
//!   64-bit threshold.

pub mod rngs {
    /// A small-state, fast, non-cryptographic PRNG — xoshiro256++ exactly as
    /// shipped by `rand 0.8` on 64-bit platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_seed_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            SmallRng { s }
        }

        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The lowest bits of xoshiro256++ have weak linear dependencies,
            // so rand takes the highest 32 — reproduced for stream parity.
            (self.next_u64_impl() >> 32) as u32
        }
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            SmallRng::from_seed_bytes(seed)
        }
    }
}

/// The raw generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32;
}

/// Seeding interface (subset of `rand_core::SeedableRng`), with the
/// SplitMix64-based `seed_from_u64` used throughout the workspace.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, byte-identical to rand_core 0.6.
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int_64 {
    ($ty:ty) => {
        impl SampleUniform for $ty {
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let range = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if range == 0 {
                    // Full integer range.
                    return rng.next_u64() as $ty;
                }
                // rand 0.8's widening-multiply rejection zone.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128) * (range as u128);
                    let lo = m as u64;
                    if lo <= zone {
                        return low.wrapping_add((m >> 64) as u64 as $ty);
                    }
                }
            }
        }
    };
}

macro_rules! uniform_int_32 {
    ($ty:ty) => {
        impl SampleUniform for $ty {
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let range = (high as u32).wrapping_sub(low as u32).wrapping_add(1);
                if range == 0 {
                    return rng.next_u32() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u32();
                    let m = (v as u64) * (range as u64);
                    let lo = m as u32;
                    if lo <= zone {
                        return low.wrapping_add((m >> 32) as u32 as $ty);
                    }
                }
            }
        }
    };
}

macro_rules! uniform_int_16 {
    ($ty:ty) => {
        impl SampleUniform for $ty {
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let range = ((high as u16).wrapping_sub(low as u16).wrapping_add(1)) as u32;
                if range == 0 {
                    return rng.next_u32() as $ty;
                }
                // Small types reject via the modulo zone (rand 0.8 behaviour
                // for types no wider than u16).
                let ints_to_reject = (u32::MAX - range + 1) % range;
                let zone = u32::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u32();
                    let m = (v as u64) * (range as u64);
                    let lo = m as u32;
                    if lo <= zone {
                        return low.wrapping_add((m >> 32) as u16 as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_64!(u64);
uniform_int_64!(i64);
uniform_int_64!(usize);
uniform_int_64!(isize);
uniform_int_32!(u32);
uniform_int_32!(i32);
uniform_int_16!(u16);
uniform_int_16!(i16);
uniform_int_16!(u8);
uniform_int_16!(i8);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_single_inclusive(self.start, self.end.minus_one(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait One {
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($ty:ty),*) => {
        $(impl One for $ty {
            #[inline]
            fn minus_one(self) -> Self {
                self - 1
            }
        })*
    };
}

impl_one!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// Values producible by [`Rng::gen`] (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: one bit from a u32 draw.
        (rng.next_u32() & 1) == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 Standard for f64: 53 random mantissa bits scaled.
        let v = rng.next_u64() >> 11;
        v as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw, fixed-point comparison exactly as `rand 0.8`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p == 1.0 {
            return true;
        }
        // 2^64 as f64; (p * SCALE) truncated to u64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Known-answer test for the xoshiro256++ reference vectors: seeding the
    /// raw state with {1,2,3,4} must yield the published output stream.
    #[test]
    fn xoshiro256plusplus_reference_vectors() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 8] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(0usize..7);
            assert!(v < 7);
            let w = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&w));
            let u = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_edges_and_balance() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }
}
