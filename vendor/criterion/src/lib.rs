#![forbid(unsafe_code)]

//! Offline vendored subset of `criterion`.
//!
//! Implements the `Criterion` / `BenchmarkGroup` / `Bencher` API the
//! workspace's benches use, with a simple warm-up + timed-sampling harness
//! that reports mean/min/max per benchmark to stdout. No plotting, no
//! statistics beyond the basics — enough to compare before/after timings
//! offline.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value. `std::hint::black_box` is
/// stable since 1.66 — delegate to it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Read a benchmark-name filter from argv (ignores harness flags like
    /// `--bench`).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        if let Some(f) = args.into_iter().next() {
            self.filter = Some(f);
        }
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one<F>(&self, name: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(name) {
            return;
        }
        // Warm-up: run the routine until the warm-up window elapses, using
        // the observed rate to size measurement iterations.
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            bencher.iters = 1;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let total_iters = (self.measurement_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let iters_per_sample = (total_iters / self.sample_size as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = samples[samples.len() / 2];
        println!(
            "{name:<44} time: [{} {} {}] (min {}, {} samples x {} iters)",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(max),
            fmt_time(min),
            samples.len(),
            iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, &mut f);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.sample_size(2).measurement_time(Duration::from_millis(4));
        group.bench_function("x", |b| b.iter(|| black_box(42)));
        group.finish();
    }
}
