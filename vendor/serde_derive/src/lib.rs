//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! reimplements the slice of `serde_derive` the workspace uses, over the
//! stock `proc_macro` API (no `syn`/`quote`). Supported input shapes — and
//! everything the workspace derives on — are:
//!
//! * structs with named fields,
//! * enums whose variants are unit, newtype, or tuple variants.
//!
//! The generated `Serialize` impl writes `serde_json`-compatible output:
//! structs as objects, unit variants as strings, data variants as
//! externally-tagged one-entry objects. `Deserialize` is a marker (nothing
//! in the workspace deserializes), kept so existing derive lists compile.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` skeleton: just enough shape for codegen.
enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, usize)> },
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    let mut kw = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the bracketed attribute group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    kw = Some(s);
                    break;
                }
            }
            _ => {}
        }
    }
    let kw = kw.ok_or("expected `struct` or `enum`")?;
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    // Reject generics: nothing in the workspace derives on generic types.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("generic type `{name}` not supported by vendored derive"))
            }
            Some(_) => continue,
            None => return Err(format!("missing body for `{name}`")),
        }
    };
    if kw == "struct" {
        Ok(Shape::Struct { name, fields: parse_named_fields(body)? })
    } else {
        Ok(Shape::Enum { name, variants: parse_variants(body)? })
    }
}

/// Split a brace-group body at top-level commas.
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => out.push(Vec::new()),
            _ => out.last_mut().unwrap().push(tt),
        }
    }
    out.retain(|part| !part.is_empty());
    out
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for part in split_top_level(body) {
        let mut it = part.into_iter().peekable();
        let mut name = None;
        while let Some(tt) = it.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    it.next();
                }
                TokenTree::Ident(id) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = it.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                it.next();
                            }
                        }
                        continue;
                    }
                    name = Some(s);
                    break;
                }
                _ => return Err("tuple structs not supported by vendored derive".into()),
            }
        }
        fields.push(name.ok_or("unnamed struct field")?);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    for part in split_top_level(body) {
        let mut it = part.into_iter().peekable();
        let mut name = None;
        let mut arity = 0usize;
        while let Some(tt) = it.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    it.next();
                }
                TokenTree::Ident(id) => {
                    name = Some(id.to_string());
                    match it.peek() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            arity = split_top_level(g.stream()).len();
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            return Err(format!(
                                "struct variant `{}` not supported by vendored derive",
                                id
                            ));
                        }
                        _ => {}
                    }
                    break;
                }
                _ => {}
            }
        }
        variants.push((name.ok_or("unnamed enum variant")?, arity));
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, arity) in &variants {
                match arity {
                    0 => arms.push_str(&format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n")),
                    1 => arms.push_str(&format!(
                        "{name}::{v}(f0) => {{\n\
                             out.push_str(\"{{\\\"{v}\\\":\");\n\
                             ::serde::Serialize::serialize_json(f0, out);\n\
                             out.push('}}');\n\
                         }}\n"
                    )),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut inner = format!("out.push_str(\"{{\\\"{v}\\\":[\");\n");
                        for (i, b) in binders.iter().enumerate() {
                            if i > 0 {
                                inner.push_str("out.push(',');\n");
                            }
                            inner.push_str(&format!(
                                "::serde::Serialize::serialize_json({b}, out);\n"
                            ));
                        }
                        inner.push_str("out.push_str(\"]}\");\n");
                        arms.push_str(&format!(
                            "{name}::{v}({}) => {{\n{inner}}}\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let name = match &shape {
        Shape::Struct { name, .. } | Shape::Enum { name, .. } => name.clone(),
    };
    format!("impl ::serde::Deserialize for {name} {{}}").parse().unwrap()
}
