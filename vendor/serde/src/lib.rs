#![forbid(unsafe_code)]

//! Offline vendored subset of `serde`: a single-method JSON serialization
//! trait plus derive macros, shaped so existing `#[derive(Serialize)]` code
//! compiles unchanged while the build has no crates.io access.
//!
//! Output is `serde_json`-compatible for the shapes the workspace uses:
//! structs → objects, unit enum variants → strings, data-carrying variants →
//! externally-tagged objects, tuples → arrays, maps → objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// JSON serialization. The derive macro generates field-by-field impls; the
/// primitives below cover the leaf types.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker for derive compatibility — nothing in the workspace deserializes.
pub trait Deserialize {}

/// Escape and quote a string into JSON.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_int {
    ($($ty:ty),*) => {
        $(impl Serialize for $ty {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        })*
    };
}

fn itoa_buf(v: i128) -> String {
    v.to_string()
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // Match serde_json: integral floats print with a trailing `.0`.
            if *self == self.trunc() && self.abs() < 1e15 {
                out.push_str(&format!("{self:.1}"));
            } else {
                out.push_str(&format!("{self}"));
            }
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(',');
        self.3.serialize_json(out);
        out.push(']');
    }
}

fn write_map<'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(k, out);
        out.push(':');
        v.serialize_json(out);
    }
    out.push('}');
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        write_map(self.iter(), out);
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        // Sort for deterministic output (serde_json iteration order is the
        // map's; determinism is load-bearing for this workspace's reports).
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by_key(|&(k, _)| k);
        write_map(entries.into_iter(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&3usize), "3");
        assert_eq!(json(&-7i64), "-7");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&2.0f64), "2.0");
        assert_eq!(json(&"a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(json(&(1usize, 2usize)), "[1,2]");
        assert_eq!(json(&Some(5u32)), "5");
        assert_eq!(json(&Option::<u32>::None), "null");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1u8);
        assert_eq!(json(&m), "{\"k\":1}");
    }
}
