#![forbid(unsafe_code)]

//! Offline vendored subset of `serde_json`: `to_string` and
//! `to_string_pretty` over the vendored [`serde::Serialize`] trait, plus a
//! [`Value`] tree with [`from_str`] for the read side (the vendored `serde`
//! has no deserialization machinery, so readers walk the tree by hand).

use std::fmt;

pub mod value;

pub use value::{from_str, ParseError, Value};

/// Serialization error. The vendored writer is infallible; the type exists
/// for API compatibility with real `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indent a compact JSON document (2-space indent, serde_json style).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = vec![(1usize, 2usize), (3, 4)];
        assert_eq!(to_string(&v).unwrap(), "[[1,2],[3,4]]");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("[\n"));
        assert!(pretty.ends_with(']'));
    }

    #[test]
    fn strings_with_structural_chars_survive_prettify() {
        let s = "a{b}[c],:\"d\"".to_string();
        let compact = to_string(&s).unwrap();
        assert_eq!(to_string_pretty(&s).unwrap(), compact);
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v: Vec<u8> = Vec::new();
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }
}
