//! A minimal parsed-JSON tree and recursive-descent parser.
//!
//! The vendored `serde` crate is serialize-only (its `Deserialize` is a
//! marker trait), so anything in the workspace that needs to *read* JSON —
//! campaign checkpoints above all — goes through [`from_str`] and walks the
//! resulting [`Value`] by hand.
//!
//! Numbers keep their source literal (`Value::Number(String)`) and are only
//! converted on access, so `u64` values above 2^53 (stack hashes, RNG seeds,
//! oracle fingerprints) round-trip exactly instead of being squashed through
//! an `f64`.

use std::collections::BTreeMap;

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// The unparsed number literal exactly as it appeared in the source.
    Number(String),
    String(String),
    Array(Vec<Value>),
    /// Object keys are sorted (`BTreeMap`); duplicate keys keep the last value,
    /// matching `serde_json`'s default behaviour.
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            saw_digit = true;
            self.pos += 1;
        }
        if !saw_digit {
            return Err(self.err("invalid number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let lit = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        Ok(Value::Number(lit.to_string()))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences from the source.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (d as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("\"hi\"").unwrap().as_str(), Some("hi"));
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str("2.5").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn u64_above_f64_precision_roundtrips() {
        let big = u64::MAX - 1;
        let v = from_str(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_decode() {
        let v = from_str(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = from_str(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn serialize_then_parse_roundtrips() {
        let original = vec![("k\"1".to_string(), 18_446_744_073_709_551_615u64)];
        let json = crate::to_string(&original).unwrap();
        let v = from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_array().unwrap()[0].as_str(), Some("k\"1"));
        assert_eq!(arr[0].as_array().unwrap()[1].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = from_str("[1,]").unwrap_err();
        assert!(e.offset > 0);
        assert!(from_str("{\"a\":1").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn non_ascii_passthrough() {
        let v = from_str("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }
}
