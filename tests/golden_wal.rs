//! Golden-file tests pinning the WAL's on-disk record format.
//!
//! `tests/golden/wal/*.wal` are committed byte images produced by the WAL
//! writer. Each test asserts both directions against them:
//!
//! 1. **writer pin** — encoding today's statements produces byte-for-byte
//!    the committed image (catches silent format drift: field reorder,
//!    endianness, checksum polynomial, magic), and
//! 2. **reader pin** — scanning the committed image recovers the expected
//!    statements and torn-tail verdict (catches reader regressions against
//!    logs written by earlier builds — the compatibility that matters for
//!    resuming a checkpointed campaign on a newer binary).
//!
//! After an *intentional* format change, regenerate with
//! `GOLDEN_BLESS=1 cargo test --test golden_wal` — and bump the magic, so
//! old logs are rejected loudly rather than misparsed.

use lego_fuzz::dbms::recovery::scan_wal;
use lego_fuzz::dbms::wal::{encode_record, WAL_MAGIC};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wal")
}

/// The statement sequence every fixture derives from: DDL, multi-row DML,
/// transaction control, and a failed statement — the shapes the engine
/// journals verbatim.
const STATEMENTS: [&str; 5] = [
    "CREATE TABLE t (a INT, b TEXT);",
    "INSERT INTO t VALUES (1, 'x''y'), (2, 'z');",
    "BEGIN;",
    "UPDATE t SET b = 'w' WHERE a = 1;",
    "COMMIT;",
];

fn image(records: &[&str]) -> Vec<u8> {
    let mut buf = WAL_MAGIC.to_vec();
    for r in records {
        buf.extend_from_slice(&encode_record(r));
    }
    buf
}

fn check_fixture(name: &str, produced: &[u8]) -> Vec<u8> {
    let path = golden_dir().join(format!("{name}.wal"));
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden/wal");
        std::fs::write(&path, produced).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return produced.to_vec();
    }
    let pinned = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\n(run GOLDEN_BLESS=1 cargo test --test golden_wal to create it)",
            path.display()
        )
    });
    assert_eq!(
        produced,
        &pinned[..],
        "WAL writer output for {name}.wal drifted from the pinned image; \
         if the format change is intentional, bump WAL_MAGIC and re-bless"
    );
    pinned
}

#[test]
fn empty_log_image_is_pinned() {
    let pinned = check_fixture("empty", &image(&[]));
    assert_eq!(pinned, WAL_MAGIC, "an empty log is exactly the magic");
    let log = scan_wal(&pinned);
    assert!(log.records.is_empty() && !log.torn);
}

#[test]
fn full_log_image_is_pinned_and_recovers() {
    let pinned = check_fixture("basic", &image(&STATEMENTS));
    // Field-level pins, independent of the encoder: magic, then record 0's
    // little-endian length prefix.
    assert_eq!(&pinned[..8], b"LEGOWAL1");
    let len0 = STATEMENTS[0].len() as u32;
    assert_eq!(&pinned[8..12], &len0.to_le_bytes(), "length prefix must be u32le");
    let log = scan_wal(&pinned);
    assert_eq!(log.records, STATEMENTS);
    assert!(!log.torn);
    assert_eq!(log.valid_len, pinned.len() as u64);
}

#[test]
fn torn_log_image_is_pinned_and_recovers_the_prefix() {
    // The committed fixture ends mid-record: the last statement's image is
    // cut 5 bytes short, the crash artifact the reader must tolerate.
    let mut img = image(&STATEMENTS);
    img.truncate(img.len() - 5);
    let pinned = check_fixture("torn", &img);
    let log = scan_wal(&pinned);
    assert_eq!(log.records, STATEMENTS[..STATEMENTS.len() - 1]);
    assert!(log.torn, "a mid-record cut must read as torn");
}
