//! Golden-file tests for the parser → AST → printer round-trip.
//!
//! `tests/golden/<dialect>.sql` pins a corpus of tricky statements in each
//! dialect's flavor; `tests/golden/<dialect>.expected.sql` pins the
//! canonical printed form. Each corpus must:
//!
//! 1. parse without error,
//! 2. contain only statement kinds the dialect supports (so the corpora
//!    stay honest as dialect-flavored, not just parser-flavored),
//! 3. print byte-for-byte to the pinned expected file,
//! 4. re-parse from its printed form to the identical AST, and
//! 5. be a printer fixpoint: printing the re-parsed AST changes nothing.
//!
//! After an intentional printer change, regenerate the expected files with
//! `GOLDEN_BLESS=1 cargo test --test golden_roundtrip`.

use lego_fuzz::prelude::*;
use lego_fuzz::sqlparser::parse_script;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_dialect(dialect: Dialect, file: &str) {
    let input_path = golden_dir().join(format!("{file}.sql"));
    let expected_path = golden_dir().join(format!("{file}.expected.sql"));
    let input = std::fs::read_to_string(&input_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", input_path.display()));

    let case = parse_script(&input).unwrap_or_else(|e| panic!("parse {file}.sql: {e}"));
    assert!(!case.statements.is_empty(), "{file}.sql is empty");
    for stmt in &case.statements {
        assert!(
            dialect.supports(stmt.kind()),
            "{file}.sql contains {:?}, which {} does not support: {stmt}",
            stmt.kind(),
            dialect.name(),
        );
    }

    let printed = case.to_sql();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(&expected_path, &printed)
            .unwrap_or_else(|e| panic!("bless {}: {e}", expected_path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\n(run GOLDEN_BLESS=1 cargo test --test golden_roundtrip to create it)",
            expected_path.display()
        )
    });
    assert_eq!(
        printed, expected,
        "printer output for {file}.sql drifted from the pinned golden file; \
         if the change is intentional, re-bless with GOLDEN_BLESS=1"
    );

    // Round-trip: the printed form parses back to the identical AST…
    let reparsed = parse_script(&printed).unwrap_or_else(|e| panic!("reparse {file}: {e}"));
    assert_eq!(
        reparsed.statements, case.statements,
        "printed SQL for {file}.sql does not parse back to the same AST"
    );
    // …and printing is a fixpoint after one normalization pass.
    assert_eq!(reparsed.to_sql(), printed, "printer is not a fixpoint for {file}.sql");
}

#[test]
fn postgres_golden_roundtrip() {
    check_dialect(Dialect::Postgres, "postgres");
}

#[test]
fn mysql_golden_roundtrip() {
    check_dialect(Dialect::MySql, "mysql");
}

#[test]
fn mariadb_golden_roundtrip() {
    check_dialect(Dialect::MariaDb, "mariadb");
}

#[test]
fn comdb2_golden_roundtrip() {
    check_dialect(Dialect::Comdb2, "comdb2");
}
