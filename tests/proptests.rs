//! Property-based tests over the core data structures and invariants.

use lego_fuzz::coverage::{CovMap, CovRecorder, GlobalCoverage, SiteId};
use lego_fuzz::fuzzer::affinity::AffinityMap;
use lego_fuzz::fuzzer::gen::{gen_statement, SchemaModel};
use lego_fuzz::fuzzer::instantiate::{fix_case, instantiate, AstLibrary};
use lego_fuzz::fuzzer::mutation::conventional_mutate;
use lego_fuzz::fuzzer::synthesis::SequenceStore;
use lego_fuzz::prelude::*;
use lego_fuzz::sqlparser::parse_script;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn schema() -> SchemaModel {
    let mut m = SchemaModel::new();
    m.observe(
        &lego_fuzz::sqlparser::parse_statement("CREATE TABLE t1 (v1 INT, v2 TEXT);").unwrap(),
    );
    m.observe(&lego_fuzz::sqlparser::parse_statement("CREATE TABLE t2 (a INT, b INT);").unwrap());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated statement of every dialect renders to SQL that parses
    /// back to the identical AST (full display/parse round-trip).
    #[test]
    fn generated_statements_roundtrip(seed in any::<u64>(), dialect_idx in 0usize..4) {
        let dialect = Dialect::ALL[dialect_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let kinds = dialect.supported_kinds();
        let kind = kinds[(seed as usize) % kinds.len()];
        let stmt = gen_statement(kind, &schema(), dialect, &mut rng);
        prop_assert_eq!(stmt.kind(), kind);
        let sql = format!("{stmt};");
        let parsed = parse_script(&sql)
            .map_err(|e| TestCaseError::fail(format!("parse {sql:?}: {e}")))?;
        prop_assert_eq!(&parsed.statements[0], &stmt, "round-trip mismatch for {}", sql);
    }

    /// Executing any generated script never panics and always yields a
    /// coverage map (robustness of the whole engine stack).
    #[test]
    fn engine_never_panics_on_generated_scripts(seed in any::<u64>(), dialect_idx in 0usize..4) {
        let dialect = Dialect::ALL[dialect_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let kinds = dialect.supported_kinds();
        let mut stmts = Vec::new();
        let mut model = SchemaModel::new();
        for i in 0..6 {
            let kind = kinds[(seed as usize + i * 37) % kinds.len()];
            let s = gen_statement(kind, &model, dialect, &mut rng);
            model.observe(&s);
            stmts.push(s);
        }
        let mut case = TestCase::new(stmts);
        fix_case(&mut case, &mut rng);
        let report = Dbms::new(dialect).execute_case(&case);
        prop_assert!(report.statements_executed <= case.len());
    }

    /// Conventional mutation preserves the SQL Type Sequence — the defining
    /// property of SQUIRREL-style mutation.
    #[test]
    fn conventional_mutation_is_sequence_preserving(seed in any::<u64>()) {
        let case = parse_script(
            "CREATE TABLE t (a INT, b INT);\n\
             INSERT INTO t VALUES (1, 2);\n\
             UPDATE t SET a = 3;\n\
             SELECT * FROM t;",
        ).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mutant = conventional_mutate(&case, &mut rng);
        prop_assert_eq!(mutant.type_sequence(), case.type_sequence());
    }

    /// Instantiation honours the requested type sequence (modulo the
    /// documented CREATE TABLE + INSERT dependency prologue).
    #[test]
    fn instantiation_preserves_requested_sequence(seed in any::<u64>()) {
        let dialect = Dialect::Postgres;
        let kinds = dialect.supported_kinds();
        let seq: Vec<StmtKind> = (0..4).map(|i| kinds[(seed as usize + i * 13) % kinds.len()]).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let case = instantiate(&seq, &AstLibrary::new(), dialect, &mut rng);
        let got = case.type_sequence();
        prop_assert!(got.len() >= seq.len());
        prop_assert_eq!(&got[got.len() - seq.len()..], &seq[..]);
    }

    /// The affinity map never records same-type pairs and its size equals
    /// the number of distinct ordered pairs inserted.
    #[test]
    fn affinity_map_counts_distinct_pairs(pairs in prop::collection::vec((0u16..50, 0u16..50), 0..200)) {
        let kinds = Dialect::Postgres.supported_kinds();
        let mut map = AffinityMap::new();
        let mut reference = std::collections::HashSet::new();
        for (a, b) in pairs {
            let (t1, t2) = (kinds[a as usize], kinds[b as usize]);
            if t1 != t2 {
                let added = map.insert(t1, t2);
                prop_assert_eq!(added, reference.insert((t1, t2)));
            }
        }
        prop_assert_eq!(map.len(), reference.len());
    }

    /// Synthesized sequences respect the LEN bound and always contain the
    /// triggering affinity.
    #[test]
    fn synthesis_respects_len(len in 2usize..6, pair_count in 1usize..8, seed in any::<u64>()) {
        let kinds = Dialect::Comdb2.supported_kinds();
        let starters: Vec<StmtKind> = kinds.iter().copied().filter(|k| k.is_sequence_starter()).collect();
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(len, &starters);
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..pair_count {
            let t1 = kinds[rng.gen_range(0..kinds.len())];
            let t2 = kinds[rng.gen_range(0..kinds.len())];
            if t1 == t2 { continue; }
            if map.insert(t1, t2) {
                let fresh = store.on_new_affinity(t1, t2, &map, 500);
                for &key in &fresh {
                    let seq = lego_fuzz::fuzzer::ngram::unpack_seq(key);
                    prop_assert!(seq.len() <= len);
                    prop_assert!(seq.windows(2).any(|w| w[0] == t1 && w[1] == t2));
                }
            }
        }
    }

    /// Coverage-map merging is monotone and idempotent.
    #[test]
    fn coverage_merge_monotone(sites in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut rec = CovRecorder::new();
        for &s in &sites {
            rec.hit(SiteId::from_raw(s));
        }
        let map: CovMap = rec.into_map();
        let mut global = GlobalCoverage::new();
        let before = global.edges_covered();
        let new = global.merge(&map);
        prop_assert!(new);
        prop_assert!(global.edges_covered() > before);
        // Idempotent: merging again adds nothing.
        let edges = global.edges_covered();
        prop_assert!(!global.merge(&map));
        prop_assert_eq!(global.edges_covered(), edges);
    }

    /// SQL value coercion into YEAR always lands in the valid domain.
    #[test]
    fn year_coercion_domain(v in any::<i64>()) {
        use lego_fuzz::dbms::Value;
        let coerced = Value::Int(v).coerce_to(lego_fuzz::sqlast::expr::DataType::Year);
        match coerced {
            Value::Int(y) => prop_assert!(y == 0 || (1901..=2155).contains(&y)),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics, whatever bytes it is fed.
    #[test]
    fn parser_never_panics_on_garbage(input in "[ -~\\n]{0,200}") {
        let _ = parse_script(&input);
    }

    /// The lexer never panics either, including on non-ASCII input.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lego_fuzz::sqlparser::lex(&input);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transactional atomicity: any generated statement batch wrapped in
    /// BEGIN … ROLLBACK leaves the catalog exactly as it was (PostgreSQL
    /// profile: fully transactional DDL).
    #[test]
    fn rollback_restores_the_catalog(seed in any::<u64>()) {
        let dialect = Dialect::Postgres;
        let mut rng = SmallRng::seed_from_u64(seed);
        let kinds = dialect.supported_kinds();
        let mut db = Dbms::new(dialect);
        db.execute_script(
            "CREATE TABLE base (a INT, b TEXT); INSERT INTO base VALUES (1, 'x'), (2, 'y');",
        );
        let before = format!("{:?}", db.session().cat);
        // Random statement batch inside a transaction.
        let mut model = SchemaModel::new();
        model.observe(&lego_fuzz::sqlparser::parse_statement("CREATE TABLE base (a INT, b TEXT);").unwrap());
        let mut stmts = vec![lego_fuzz::sqlparser::parse_statement("BEGIN;").unwrap()];
        for i in 0..5 {
            let kind = kinds[(seed as usize + i * 41) % kinds.len()];
            // TCL statements would end the transaction midway; skip them so
            // ROLLBACK below is the only transaction boundary.
            if kind.category() == lego_fuzz::sqlast::kind::StmtCategory::Tcl {
                continue;
            }
            let s = gen_statement(kind, &model, dialect, &mut rng);
            model.observe(&s);
            stmts.push(s);
        }
        stmts.push(lego_fuzz::sqlparser::parse_statement("ROLLBACK;").unwrap());
        let mut case = TestCase::new(stmts);
        fix_case(&mut case, &mut rng);
        // fix_case must not touch the leading BEGIN / trailing ROLLBACK.
        let report = db.execute_case(&case);
        if report.crash().is_none() {
            let after = format!("{:?}", db.session().cat);
            prop_assert_eq!(before, after);
        }
    }

    /// Executing the same case twice on fresh instances yields identical
    /// coverage digests and outcomes (full-engine determinism).
    #[test]
    fn engine_execution_is_deterministic(seed in any::<u64>(), dialect_idx in 0usize..4) {
        let dialect = Dialect::ALL[dialect_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let kinds = dialect.supported_kinds();
        let mut stmts = Vec::new();
        let mut model = SchemaModel::new();
        for i in 0..5 {
            let kind = kinds[(seed as usize + i * 29) % kinds.len()];
            let s = gen_statement(kind, &model, dialect, &mut rng);
            model.observe(&s);
            stmts.push(s);
        }
        let mut case = TestCase::new(stmts);
        fix_case(&mut case, &mut rng);
        let r1 = Dbms::new(dialect).execute_case(&case);
        let r2 = Dbms::new(dialect).execute_case(&case);
        prop_assert_eq!(r1.coverage.digest(), r2.coverage.digest());
        prop_assert_eq!(r1.statements_executed, r2.statements_executed);
        prop_assert_eq!(r1.errors, r2.errors);
    }
}
