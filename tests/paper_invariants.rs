//! Invariants transcribed from the paper's tables, enforced as tests.

use lego_fuzz::dbms::bugs;
use lego_fuzz::prelude::*;

#[test]
fn table_iv_statement_type_inventories() {
    assert_eq!(Dialect::Postgres.statement_type_count(), 188);
    assert_eq!(Dialect::MySql.statement_type_count(), 158);
    assert_eq!(Dialect::MariaDb.statement_type_count(), 160);
    assert_eq!(Dialect::Comdb2.statement_type_count(), 24);
}

#[test]
fn table_i_bug_inventory() {
    let m = bugs::manifest();
    assert_eq!(m.len(), 102);
    let count = |d: Dialect| m.iter().filter(|b| b.dialect == d).count();
    assert_eq!(count(Dialect::Postgres), 6);
    assert_eq!(count(Dialect::MySql), 21);
    assert_eq!(count(Dialect::MariaDb), 42);
    assert_eq!(count(Dialect::Comdb2), 33);
    assert_eq!(m.iter().filter(|b| b.is_cve()).count(), 22);
}

#[test]
fn paper_identifiers_are_present() {
    let idents: Vec<&str> = bugs::manifest().iter().map(|b| b.identifier.as_str()).collect();
    for must in [
        "CVE-2021-35643",
        "CVE-2021-2357",
        "CVE-2022-27376",
        "CVE-2020-26746",
        "BUG #17097",
        "MDEV-26403",
    ] {
        assert!(idents.contains(&must), "missing identifier {must}");
    }
}

#[test]
fn seed_sequences_match_the_oracle_exclusion_list() {
    // The bug oracle excludes generated patterns that live inside the seed
    // corpus; the exclusion list is mirrored in lego-dbms (to avoid a
    // circular dependency) and must stay in sync with the real seeds.
    let mirrored = bugs::seed_sequences_for_tests();
    for d in Dialect::ALL {
        for case in lego_fuzz::fuzzer::seeds::initial_corpus(d) {
            let seq = case.type_sequence();
            assert!(
                mirrored.contains(&seq),
                "seed sequence {:?} not mirrored in lego-dbms::bugs",
                seq.iter().map(|k| k.name()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn seeds_are_crash_free_on_every_dialect() {
    for d in Dialect::ALL {
        for case in lego_fuzz::fuzzer::seeds::initial_corpus(d) {
            let r = Dbms::new(d).execute_case(&case);
            assert!(r.crash().is_none(), "seed crashes {d:?}: {}", case.to_sql());
            assert!(r.errors.is_empty(), "seed errors {d:?}: {:?}", r.errors);
        }
    }
}

#[test]
fn shallow_bugs_belong_to_mysql_family_only() {
    for b in bugs::manifest() {
        if matches!(b.depth, bugs::Depth::Shallow) {
            assert!(
                matches!(b.dialect, Dialect::MySql | Dialect::MariaDb),
                "{} is shallow but on {:?}",
                b.identifier,
                b.dialect
            );
        }
    }
}

#[test]
fn figure_2_same_statements_different_order_different_coverage() {
    let q1 = "CREATE TABLE t1 (a INT, b VARCHAR(100));\n\
              INSERT INTO t1 VALUES (1, 'name1');\n\
              INSERT INTO t1 VALUES (3, 'name1');\n\
              SELECT * FROM t1 ORDER BY a DESC;";
    let q2 = "CREATE TABLE t1 (a INT, b VARCHAR(100));\n\
              SELECT * FROM t1 ORDER BY a DESC;\n\
              INSERT INTO t1 VALUES (1, 'name1');\n\
              INSERT INTO t1 VALUES (3, 'name1');";
    let r1 = Dbms::new(Dialect::MariaDb).execute_script(q1);
    let r2 = Dbms::new(Dialect::MariaDb).execute_script(q2);
    assert_ne!(r1.coverage.digest(), r2.coverage.digest());
}

#[test]
fn figure_2_row_counts() {
    let q1 = "CREATE TABLE t1 (a INT);\n\
              INSERT INTO t1 VALUES (1);\n\
              SELECT * FROM t1;";
    let q2 = "CREATE TABLE t1 (a INT);\n\
              SELECT * FROM t1;\n\
              INSERT INTO t1 VALUES (1);";
    assert_eq!(Dbms::new(Dialect::Postgres).execute_script(q1).last_rows, 1);
    assert_eq!(Dbms::new(Dialect::Postgres).execute_script(q2).last_rows, 0);
}
