//! Reachability proof for the planted bug inventory: for every Table I bug
//! we craft a script realizing its pattern + predicates and check that the
//! engine crashes — i.e. all 102 bugs are actually discoverable, none is a
//! dead entry.

use lego_fuzz::dbms::bugs::{self, BugSpec, StateReq, Structural};
use lego_fuzz::fuzzer::gen::{gen_statement, SchemaModel};
use lego_fuzz::prelude::*;
use lego_fuzz::sqlast::ast::*;
use lego_fuzz::sqlast::expr::*;
use lego_fuzz::sqlast::kind::StandaloneKind;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Build a statement of `kind` whose structure satisfies `structural`.
fn stmt_for(
    kind: StmtKind,
    structural: Structural,
    schema: &SchemaModel,
    dialect: Dialect,
    rng: &mut SmallRng,
) -> Statement {
    let table = schema.tables.first().map(|t| t.name.clone()).unwrap_or_else(|| "t0".into());
    let col = "a".to_string();
    let simple_select = |proj: Vec<SelectItem>,
                         where_: Option<Expr>,
                         group_by: Vec<Expr>,
                         order: Vec<OrderItem>,
                         distinct: bool,
                         from: Vec<TableRef>| {
        Statement::Select(SelectStmt {
            query: Box::new(Query {
                body: SetExpr::Select(Box::new(Select {
                    distinct,
                    projection: proj,
                    from,
                    where_,
                    group_by,
                    having: None,
                })),
                order_by: order,
                limit: None,
                offset: None,
            }),
            variant: if kind == StmtKind::Other(StandaloneKind::SelectV) {
                SelectVariant::SelectV
            } else {
                SelectVariant::Plain
            },
        })
    };
    match (kind, structural) {
        (StmtKind::Other(StandaloneKind::Select | StandaloneKind::SelectV), s) => {
            let from = vec![TableRef::named(table.clone())];
            match s {
                Structural::WindowFunction => simple_select(
                    vec![SelectItem::Expr {
                        expr: Expr::Window {
                            func: FuncCall::new("LEAD", vec![Expr::col(col.clone())]),
                            spec: WindowSpec {
                                partition_by: vec![],
                                order_by: vec![OrderItem { expr: Expr::col(col), desc: false }],
                                frame: None,
                            },
                        },
                        alias: None,
                    }],
                    None,
                    vec![],
                    vec![],
                    false,
                    from,
                ),
                Structural::GroupBy => simple_select(
                    vec![
                        SelectItem::Expr { expr: Expr::col(col.clone()), alias: None },
                        SelectItem::Expr { expr: Expr::Func(FuncCall::star("COUNT")), alias: None },
                    ],
                    None,
                    vec![Expr::col(col)],
                    vec![],
                    false,
                    from,
                ),
                Structural::OrderBy => simple_select(
                    vec![SelectItem::Star],
                    None,
                    vec![],
                    vec![OrderItem { expr: Expr::col(col), desc: false }],
                    false,
                    from,
                ),
                Structural::WhereClause => simple_select(
                    vec![SelectItem::Star],
                    Some(Expr::binary(Expr::col(col), BinOp::Gt, Expr::int(0))),
                    vec![],
                    vec![],
                    false,
                    from,
                ),
                Structural::Distinct => {
                    simple_select(vec![SelectItem::Star], None, vec![], vec![], true, from)
                }
                Structural::Join => simple_select(
                    vec![SelectItem::Star],
                    None,
                    vec![],
                    vec![],
                    false,
                    vec![TableRef::Join {
                        left: Box::new(TableRef::Named {
                            name: table.clone(),
                            alias: Some("j1".into()),
                        }),
                        right: Box::new(TableRef::Named { name: table, alias: Some("j2".into()) }),
                        kind: JoinKind::Cross,
                        on: None,
                    }],
                ),
                Structural::SetOperation => Statement::Select(SelectStmt {
                    query: Box::new(Query {
                        body: SetExpr::SetOp {
                            op: SetOp::Union,
                            all: true,
                            left: Box::new(SetExpr::Select(Box::new(Select {
                                distinct: false,
                                projection: vec![SelectItem::Star],
                                from: vec![TableRef::named(table)],
                                where_: None,
                                group_by: vec![],
                                having: None,
                            }))),
                            right: Box::new(SetExpr::Values(vec![vec![
                                Expr::int(1),
                                Expr::int(1),
                            ]])),
                        },
                        order_by: vec![],
                        limit: None,
                        offset: None,
                    }),
                    variant: SelectVariant::Plain,
                }),
                _ => simple_select(vec![SelectItem::Star], None, vec![], vec![], false, from),
            }
        }
        (StmtKind::Other(StandaloneKind::Insert), s) => Statement::Insert(Insert {
            table,
            columns: vec![],
            source: InsertSource::Values(vec![vec![Expr::int(5), Expr::int(6)]]),
            ignore: s == Structural::InsertIgnore,
            replace: false,
            low_priority: false,
        }),
        (StmtKind::Other(StandaloneKind::Update), s) => Statement::Update(Update {
            table,
            assignments: vec![(col.clone(), Expr::int(9))],
            where_: if s == Structural::WhereClause {
                Some(Expr::binary(Expr::col(col), BinOp::Ge, Expr::int(0)))
            } else {
                None
            },
        }),
        (StmtKind::Other(StandaloneKind::Delete), s) => Statement::Delete(Delete {
            table,
            where_: if s == Structural::WhereClause {
                Some(Expr::binary(Expr::col(col), BinOp::Lt, Expr::int(0)))
            } else {
                None
            },
        }),
        (other, _) => gen_statement(other, schema, dialect, rng),
    }
}

/// Craft a script that should trigger `bug`, then execute it.
fn craft_and_run(bug: &BugSpec) -> Option<lego_fuzz::dbms::CrashReport> {
    let mut rng = SmallRng::seed_from_u64(500 + bug.id as u64);
    let mut statements = Vec::new();
    let mut schema = SchemaModel::new();

    // Prologue: a populated table.
    let ct = lego_fuzz::sqlparser::parse_statement("CREATE TABLE t0 (a INT, b INT);").unwrap();
    schema.observe(&ct);
    statements.push(ct);
    statements.push(
        lego_fuzz::sqlparser::parse_statement("INSERT INTO t0 VALUES (1, 1), (2, 2);").unwrap(),
    );

    // State setup.
    match bug.state {
        StateReq::TriggerExists => statements.push(
            lego_fuzz::sqlparser::parse_statement(
                "CREATE TRIGGER tr0 AFTER DELETE ON t0 FOR EACH ROW DELETE FROM t0;",
            )
            .unwrap(),
        ),
        StateReq::RuleExists => statements.push(
            lego_fuzz::sqlparser::parse_statement("CREATE RULE r0 AS ON DELETE TO t0 DO NOTHING;")
                .unwrap(),
        ),
        StateReq::InTransaction => statements.push(Statement::Begin),
        StateReq::IndexExists => statements
            .push(lego_fuzz::sqlparser::parse_statement("CREATE INDEX ix0 ON t0 (a);").unwrap()),
        StateReq::ViewExists => statements.push(
            lego_fuzz::sqlparser::parse_statement("CREATE VIEW vw0 AS SELECT a FROM t0;").unwrap(),
        ),
        StateReq::TableNonEmpty | StateReq::Any => {}
    }

    // The pattern itself; the final statement carries the structural feature.
    for (i, &kind) in bug.pattern.iter().enumerate() {
        let structural = if i + 1 == bug.pattern.len() { bug.structural } else { Structural::Any };
        let stmt = stmt_for(kind, structural, &schema, bug.dialect, &mut rng);
        schema.observe(&stmt);
        statements.push(stmt);
    }

    let case = TestCase::new(statements);
    let mut db = Dbms::new(bug.dialect);
    let report = db.execute_case(&case);
    report.crash().cloned()
}

#[test]
fn every_planted_bug_is_reachable() {
    let mut exact = 0usize;
    let mut crashed = 0usize;
    let mut misses: Vec<&str> = Vec::new();
    let mut specials = 0usize;
    for bug in bugs::manifest() {
        if bug.special.is_some() {
            // The PG case study has its own end-to-end test.
            specials += 1;
            continue;
        }
        match craft_and_run(bug) {
            Some(crash) => {
                crashed += 1;
                if crash.bug_id == bug.id {
                    exact += 1;
                }
            }
            None => misses.push(&bug.identifier),
        }
    }
    let total = bugs::manifest().len() - specials;
    assert!(
        misses.is_empty(),
        "crafted scripts failed to crash for {} bugs: {:?}",
        misses.len(),
        misses
    );
    // A handful may be shadowed by an overlapping bug with higher precedence;
    // the vast majority must fire exactly.
    assert!(
        exact * 10 >= total * 9,
        "only {exact}/{total} bugs fired exactly (crashed: {crashed})"
    );
}

#[test]
fn the_special_case_study_bug_is_reachable() {
    let r = Dbms::new(Dialect::Postgres).execute_script(
        "CREATE TABLE t0 (a INT);\n\
         CREATE RULE r0 AS ON INSERT TO t0 DO INSTEAD NOTIFY ch;\n\
         WITH w AS (INSERT INTO t0 VALUES (1)) SELECT 1;",
    );
    assert_eq!(r.crash().map(|c| c.identifier.as_str()), Some("BUG #17097"));
}
