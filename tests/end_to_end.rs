//! Cross-crate integration tests: parser → engine → coverage → fuzzer →
//! campaign, plus the paper's case studies end to end.

use lego_fuzz::baselines::engine_by_name;
use lego_fuzz::prelude::*;
use lego_fuzz::sqlparser::parse_script;

#[test]
fn parse_execute_coverage_roundtrip() {
    let case = parse_script(
        "CREATE TABLE t (a INT, b TEXT);\n\
         INSERT INTO t VALUES (1, 'x'), (2, 'y');\n\
         SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 0;",
    )
    .unwrap();
    let mut db = Dbms::new(Dialect::Postgres);
    let report = db.execute_case(&case);
    assert!(matches!(report.outcome, Outcome::Ok), "{:?}", report.errors);
    assert!(report.errors.is_empty());
    assert!(report.coverage.edge_count() > 10);
}

#[test]
fn rendered_sql_reexecutes_identically() {
    // Display -> parse -> execute must behave like the original AST.
    let sql = "CREATE TABLE t (a INT);\n\
               INSERT INTO t VALUES (1), (2), (3);\n\
               SELECT * FROM t WHERE a > 1 ORDER BY a DESC LIMIT 1;";
    let case = parse_script(sql).unwrap();
    let rendered = case.to_sql();
    let case2 = parse_script(&rendered).unwrap();
    assert_eq!(case, case2);
    let r1 = Dbms::new(Dialect::MySql).execute_case(&case);
    let r2 = Dbms::new(Dialect::MySql).execute_case(&case2);
    assert_eq!(r1.coverage.digest(), r2.coverage.digest());
}

#[test]
fn case_study_sequence_only_crashes_with_all_four_statements() {
    let full = "CREATE TABLE v0 (v1 INT);\n\
         CREATE RULE r1 AS ON INSERT TO v0 DO INSTEAD NOTIFY compression;\n\
         COPY (SELECT 1) TO STDOUT;\n\
         WITH c AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v1 = 0;";
    let r = Dbms::new(Dialect::Postgres).execute_script(full);
    assert!(r.crash().is_some(), "full sequence must crash");

    // Dropping the rule, or replacing the data-modifying CTE, defuses it.
    let no_rule = "CREATE TABLE v0 (v1 INT);\n\
         COPY (SELECT 1) TO STDOUT;\n\
         WITH c AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v1 = 0;";
    assert!(Dbms::new(Dialect::Postgres).execute_script(no_rule).crash().is_none());

    let query_cte = "CREATE TABLE v0 (v1 INT);\n\
         CREATE RULE r1 AS ON INSERT TO v0 DO INSTEAD NOTIFY compression;\n\
         COPY (SELECT 1) TO STDOUT;\n\
         WITH c AS (SELECT 1) DELETE FROM v0 WHERE v1 = 0;";
    assert!(Dbms::new(Dialect::Postgres).execute_script(query_cte).crash().is_none());
}

#[test]
fn every_engine_runs_on_every_dialect() {
    for dialect in Dialect::ALL {
        for name in ["LEGO", "LEGO-", "SQUIRREL", "SQLancer", "SQLsmith"] {
            let mut engine = engine_by_name(name, dialect, 11);
            let stats = run_campaign(engine.as_mut(), dialect, Budget::units(2_000));
            assert!(stats.branches > 0, "{name} on {dialect:?} covered nothing");
            assert!(stats.execs > 0);
        }
    }
}

#[test]
fn campaigns_are_deterministic_given_a_seed() {
    let run = || {
        let mut fz =
            LegoFuzzer::new(Dialect::MariaDb, Config { rng_seed: 123, ..Config::default() });
        let stats = run_campaign(&mut fz, Dialect::MariaDb, Budget::units(20_000));
        (
            stats.branches,
            stats.execs,
            stats.corpus_affinities,
            stats.bugs.iter().map(|b| b.crash.bug_id).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn lego_discovers_the_mysql_trigger_window_cve_shape() {
    // CVE-2021-35643's trigger-then-window-select sequence must be reachable
    // by executing the figure-3-style synthesized seed.
    let synthesized = "CREATE TABLE v0 (v1 YEAR);\n\
         INSERT LOW_PRIORITY IGNORE INTO v0 VALUES (NULL), (2021), (1999);\n\
         CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0;\n\
         SELECT LEAD (v1) OVER (ORDER BY v1) AS v1 FROM v0;";
    let r = Dbms::new(Dialect::MySql).execute_script(synthesized);
    let crash = r.crash().expect("figure-3 sequence must crash");
    assert_eq!(crash.identifier, "CVE-2021-35643");
}

#[test]
fn coverage_feedback_actually_guides_lego() {
    // With feedback wired, the retained corpus grows beyond the seeds and
    // the affinity map grows beyond the seed affinities.
    let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
    let stats = run_campaign(&mut fz, Dialect::Postgres, Budget::units(40_000));
    assert!(stats.corpus_size > 10);
    assert!(stats.corpus_affinities > 30);
}

#[test]
fn crashing_case_sql_reproduces_its_bug() {
    // Every bug report carries a SQL reproducer; replaying it on a fresh
    // instance must re-trigger the same bug.
    let mut fz = LegoFuzzer::new(Dialect::MariaDb, Config::default());
    let stats = run_campaign(&mut fz, Dialect::MariaDb, Budget::units(300_000));
    assert!(!stats.bugs.is_empty(), "expected at least one MariaDB bug");
    for bug in stats.bugs.iter().take(3) {
        let r = Dbms::new(Dialect::MariaDb).execute_script(&bug.case_sql);
        let crash =
            r.crash().unwrap_or_else(|| panic!("reproducer did not crash:\n{}", bug.case_sql));
        assert_eq!(crash.bug_id, bug.crash.bug_id);
    }
}
