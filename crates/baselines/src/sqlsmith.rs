//! SQLsmith-style fuzzing: grammar-random *query* generation.
//!
//! SQLsmith (Seltenreich et al.) introspects an existing database and emits
//! endless syntactically-correct SELECT statements, deliberately leaving the
//! database unchanged; the paper notes it "mainly generates SELECT
//! statements" and officially supports PostgreSQL only. Since our harness
//! gives every test case a fresh empty instance, each case carries the same
//! fixed schema prologue (standing in for the pre-existing regression
//! database SQLsmith would introspect) followed by one generated query — so
//! its *generated* corpus is single-statement, exactly as the paper assumes
//! when excluding it from the affinity table.

use lego::campaign::FuzzEngine;
use lego::gen::{gen_query, SchemaModel};

use lego_dbms::ExecReport;
use lego_sqlast::ast::{SelectStmt, SelectVariant, Statement};
use lego_sqlast::{Dialect, TestCase};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The fixed schema prologue every SQLsmith case starts with. Ends with a
/// plain SELECT so the generated query never directly follows an INSERT.
const PROLOGUE: &str = "CREATE TABLE s1 (a INT, b INT, c VARCHAR(100));\n\
    CREATE TABLE s2 (x INT PRIMARY KEY, y TEXT);\n\
    INSERT INTO s1 VALUES (1, 10, 'alpha'), (2, 20, 'beta'), (3, 30, 'gamma');\n\
    INSERT INTO s2 VALUES (1, 'one'), (2, 'two');\n\
    SELECT a FROM s1;";

pub struct SqlsmithFuzzer {
    dialect: Dialect,
    rng: SmallRng,
    prologue: TestCase,
    schema: SchemaModel,
    /// Generated queries that produced new coverage (bounded).
    corpus: Vec<Arc<TestCase>>,
}

impl SqlsmithFuzzer {
    pub fn new(dialect: Dialect, rng_seed: u64) -> Self {
        let prologue = lego_sqlparser::parse_script(PROLOGUE).expect("valid prologue");
        let schema = SchemaModel::of_statements(&prologue.statements);
        Self {
            dialect,
            rng: SmallRng::seed_from_u64(rng_seed ^ 0x5417),
            prologue,
            schema,
            corpus: Vec::new(),
        }
    }
}

impl FuzzEngine for SqlsmithFuzzer {
    fn name(&self) -> &'static str {
        "SQLsmith"
    }

    fn next_case(&mut self) -> Arc<TestCase> {
        // Deep, feature-rich single query (SQLsmith's strength).
        let query = gen_query(&self.schema, self.dialect, &mut self.rng, 2);
        let select =
            Statement::Select(SelectStmt { query: Box::new(query), variant: SelectVariant::Plain });
        let mut statements = self.prologue.statements.clone();
        statements.push(select);
        Arc::new(TestCase::new(statements))
    }

    fn feedback(&mut self, case: &Arc<TestCase>, _report: &ExecReport, new_coverage: bool) {
        if new_coverage && self.corpus.len() < 4096 {
            // Record only the generated query — SQLsmith test cases are
            // single statements (paper § V-C, Table II footnote).
            if let Some(q) = case.statements.last() {
                self.corpus.push(Arc::new(TestCase::new(vec![q.clone()])));
            }
        }
    }

    fn corpus(&self) -> Vec<Arc<TestCase>> {
        self.corpus.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego::affinity::corpus_affinities;
    use lego::campaign::{run_campaign, Budget};

    #[test]
    fn generates_only_selects() {
        let mut fz = SqlsmithFuzzer::new(Dialect::Postgres, 1);
        for _ in 0..50 {
            let case = fz.next_case();
            let last = case.statements.last().unwrap();
            assert_eq!(last.kind().name(), "SELECT");
        }
    }

    #[test]
    fn corpus_is_single_statement_and_affinity_free() {
        let mut fz = SqlsmithFuzzer::new(Dialect::Postgres, 1);
        run_campaign(&mut fz, Dialect::Postgres, Budget::units(20_000));
        assert!(!fz.corpus().is_empty());
        assert!(fz.corpus().iter().all(|c| c.len() == 1));
        assert_eq!(corpus_affinities(&fz.corpus()).len(), 0);
    }

    #[test]
    fn gains_decent_coverage_on_postgres() {
        let mut fz = SqlsmithFuzzer::new(Dialect::Postgres, 1);
        let stats = run_campaign(&mut fz, Dialect::Postgres, Budget::units(40_000));
        assert!(stats.branches > 300, "branches = {}", stats.branches);
        assert_eq!(stats.bugs.len(), 0, "SQLsmith should find no bugs");
    }

    #[test]
    fn prologue_is_never_mutated() {
        let mut fz = SqlsmithFuzzer::new(Dialect::Postgres, 2);
        let a = fz.next_case();
        let b = fz.next_case();
        assert_eq!(a.statements[..5], b.statements[..5]);
    }
}
