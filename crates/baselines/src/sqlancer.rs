//! SQLancer-style fuzzing: rule-based test-case generation.
//!
//! SQLancer (Rigger & Su) generates each test case from fixed pattern rules:
//! a randomized schema-setup phase drawn from a small statement-type
//! repertoire, followed by SELECT probes whose results it checks (PQS/TLP —
//! the logic-bug oracles themselves are irrelevant to the coverage/memory-bug
//! comparison). There is no coverage feedback: "SQLancer continuously
//! generates test cases for fuzzing based on custom pattern rules, while
//! only a limited number of SQL Type Sequences can be generated" (§ V-C).

use lego::campaign::FuzzEngine;
use lego::gen::{gen_expr, gen_statement, SchemaModel};
use lego::instantiate::fix_case;
use lego_dbms::ExecReport;
use lego_sqlast::ast::*;
use lego_sqlast::kind::{DdlVerb, ObjectKind, StandaloneKind, StmtKind};
use lego_sqlast::{Dialect, TestCase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

pub struct SqlancerFuzzer {
    dialect: Dialect,
    rng: SmallRng,
    /// A sample of generated cases (SQLancer keeps no corpus; the paper's
    /// Table II analyzes the test cases each fuzzer produced, so we retain a
    /// bounded sample for that accounting).
    sample: Vec<Arc<TestCase>>,
}

impl SqlancerFuzzer {
    pub fn new(dialect: Dialect, rng_seed: u64) -> Self {
        Self { dialect, rng: SmallRng::seed_from_u64(rng_seed ^ 0x1a9c), sample: Vec::new() }
    }

    /// The setup-phase statement-type repertoire (fixed rules). SQLancer's
    /// database generators emit a moderate range of statement types in a
    /// randomized but template-bound order — richer than SQUIRREL's frozen
    /// seeds (Table II) yet far from LEGO's affinity-driven space.
    fn setup_kinds(&mut self) -> Vec<StmtKind> {
        use StandaloneKind as K;
        let mut kinds = Vec::new();
        if self.rng.gen_bool(0.3) {
            kinds.push(StmtKind::Other(K::Set));
        }
        kinds.push(StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table));
        // Optionally a second table.
        if self.rng.gen_bool(0.4) {
            kinds.push(StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table));
        }
        if self.rng.gen_bool(0.5) {
            kinds.push(StmtKind::Ddl(DdlVerb::Create, ObjectKind::Index));
        }
        if self.rng.gen_bool(0.25) && self.dialect != Dialect::Comdb2 {
            kinds.push(StmtKind::Ddl(DdlVerb::Create, ObjectKind::View));
        }
        for _ in 0..self.rng.gen_range(1..4) {
            kinds.push(StmtKind::Other(K::Insert));
        }
        if self.rng.gen_bool(0.3) {
            kinds.push(StmtKind::Other(K::Analyze));
        }
        if self.rng.gen_bool(0.2) && self.dialect != Dialect::Comdb2 {
            kinds.push(StmtKind::Other(K::Vacuum));
        }
        // Data churn between probes, always behind a SELECT so no seed pair
        // is reproduced: SELECT, then UPDATE/DELETE.
        if self.rng.gen_bool(0.35) {
            kinds.push(StmtKind::Other(K::Select));
            kinds.push(StmtKind::Other(if self.rng.gen_bool(0.6) { K::Update } else { K::Delete }));
        }
        if self.rng.gen_bool(0.1) {
            kinds.push(StmtKind::Ddl(DdlVerb::Drop, ObjectKind::Table));
        }
        kinds
    }
}

impl SqlancerFuzzer {
    /// A plain star-projection select with a simple (depth-1) predicate —
    /// PQS-style pivot probing: never ORDER BY / GROUP BY / DISTINCT /
    /// window functions, which would change the fetched pivot row set.
    fn plain_select(&mut self, schema: &SchemaModel) -> Statement {
        let (table, cols) = match schema.random_table(&mut self.rng) {
            Some(t) => (t.name.clone(), t.columns.clone()),
            None => ("t1".to_string(), vec![]),
        };
        let where_ = Some(gen_expr(&cols, &mut self.rng, 1));
        Statement::Select(SelectStmt {
            query: Box::new(Query {
                body: SetExpr::Select(Box::new(Select {
                    distinct: false,
                    projection: vec![SelectItem::Star],
                    from: vec![TableRef::named(table)],
                    where_,
                    group_by: vec![],
                    having: None,
                })),
                order_by: vec![],
                limit: None,
                offset: None,
            }),
            variant: SelectVariant::Plain,
        })
    }
}

impl FuzzEngine for SqlancerFuzzer {
    fn name(&self) -> &'static str {
        "SQLancer"
    }

    fn next_case(&mut self) -> Arc<TestCase> {
        let mut statements = Vec::new();
        let mut schema = SchemaModel::new();
        for kind in self.setup_kinds() {
            let kind = if self.dialect.supports(kind) {
                kind
            } else {
                StmtKind::Other(StandaloneKind::Insert)
            };
            // Rule-bound statement shapes: SQLancer's generators emit plain
            // setup statements (no IGNORE, no rich SELECT features) — its
            // oracles need predictable row sets.
            let mut stmt = match kind {
                StmtKind::Other(StandaloneKind::Select) => self.plain_select(&schema),
                other => gen_statement(other, &schema, self.dialect, &mut self.rng),
            };
            if let Statement::Insert(i) = &mut stmt {
                i.ignore = false;
                i.low_priority = false;
                i.source = match i.source.clone() {
                    InsertSource::Query(_) => {
                        InsertSource::Values(vec![vec![lego_sqlast::expr::Expr::Integer(1)]])
                    }
                    other => other,
                };
            }
            if let Statement::CreateView(v) = &mut stmt {
                // Views over plain projections only.
                if let Statement::Select(plain) = self.plain_select(&schema) {
                    v.query = plain.query;
                }
                v.materialized = false;
            }
            schema.observe(&stmt);
            statements.push(stmt);
        }
        // SELECT probes: pivot-style point queries.
        for _ in 0..self.rng.gen_range(1..4) {
            if schema.tables.is_empty() {
                break;
            }
            let probe = self.plain_select(&schema);
            statements.push(probe);
        }
        let mut case = TestCase::new(statements);
        fix_case(&mut case, &mut self.rng);
        Arc::new(case)
    }

    fn feedback(&mut self, case: &Arc<TestCase>, _report: &ExecReport, _new_coverage: bool) {
        // No coverage guidance; keep a bounded sample for Table II.
        if self.sample.len() < 2048 {
            self.sample.push(Arc::clone(case));
        }
    }

    fn corpus(&self) -> Vec<Arc<TestCase>> {
        self.sample.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego::affinity::corpus_affinities;
    use lego::campaign::{run_campaign, Budget};

    #[test]
    fn cases_follow_the_template() {
        let mut fz = SqlancerFuzzer::new(Dialect::Postgres, 3);
        for _ in 0..30 {
            let case = fz.next_case();
            let first = case.statements[0].kind();
            assert!(
                matches!(first, StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table))
                    || first == StmtKind::Other(StandaloneKind::Set),
                "unexpected template head {first:?}"
            );
            // Probes are plain WHERE selects.
            let last = case.statements.last().unwrap();
            if let Statement::Select(s) = last {
                assert!(s.query.order_by.is_empty());
            }
        }
    }

    #[test]
    fn finds_no_bugs_in_a_budgeted_run() {
        for d in [Dialect::Postgres, Dialect::MySql, Dialect::MariaDb, Dialect::Comdb2] {
            let mut fz = SqlancerFuzzer::new(d, 3);
            let stats = run_campaign(&mut fz, d, Budget::units(30_000));
            assert_eq!(stats.bugs.len(), 0, "SQLancer found bugs on {d:?}");
        }
    }

    #[test]
    fn affinity_count_is_moderate() {
        // More than SQUIRREL (whose sequences are frozen), far fewer than
        // LEGO — the Table II ordering.
        let mut fz = SqlancerFuzzer::new(Dialect::Postgres, 3);
        run_campaign(&mut fz, Dialect::Postgres, Budget::units(30_000));
        let aff = corpus_affinities(&fz.corpus()).len();
        assert!(aff > 5 && aff < 300, "affinities = {aff}");
    }
}
