#![forbid(unsafe_code)]

//! Re-implementations of the baseline fuzzers' *generation policies*
//! (paper § V): SQLancer (rule-based templates, SELECT-centric probes),
//! SQLsmith (grammar-random single SELECT statements against an existing
//! schema), and SQUIRREL (coverage-guided structure/data mutation that never
//! changes the SQL Type Sequence). All run under the same campaign harness
//! as LEGO, so the comparison isolates exactly the input-space policy.

pub mod sqlancer;
pub mod sqlsmith;
pub mod squirrel;

pub use sqlancer::SqlancerFuzzer;
pub use sqlsmith::SqlsmithFuzzer;
pub use squirrel::SquirrelFuzzer;

use lego::campaign::FuzzEngine;
use lego::fuzzer::{Config, LegoFuzzer};
use lego_sqlast::Dialect;

/// Construct any evaluated engine by name (used by the experiment binaries).
///
/// Names: `LEGO`, `LEGO-`, `SQUIRREL`, `SQLancer`, `SQLsmith`. The box is
/// `Send` so it can serve as a worker shard in `run_campaign_parallel`.
pub fn engine_by_name(name: &str, dialect: Dialect, rng_seed: u64) -> Box<dyn FuzzEngine + Send> {
    let cfg = Config { rng_seed, ..Config::default() };
    match name {
        "LEGO" => Box::new(LegoFuzzer::new(dialect, cfg)),
        "LEGO-" => Box::new(LegoFuzzer::lego_minus(dialect, cfg)),
        "SQUIRREL" => Box::new(SquirrelFuzzer::new(dialect, rng_seed)),
        "SQLancer" => Box::new(SqlancerFuzzer::new(dialect, rng_seed)),
        "SQLsmith" => Box::new(SqlsmithFuzzer::new(dialect, rng_seed)),
        other => panic!("unknown fuzzer {other}"),
    }
}
