//! SQUIRREL-style fuzzing: coverage-guided, syntax-preserving and
//! semantics-guided mutation of the structure and data *within* individual
//! statements (Zhong et al., CCS 2020). The SQL Type Sequence of every
//! mutant equals its parent's — the paper's central criticism.

use lego::campaign::FuzzEngine;
use lego::fuzzer::{Config, LegoFuzzer};
use lego_dbms::ExecReport;
use lego_sqlast::{Dialect, TestCase};
use std::sync::Arc;

/// SQUIRREL = the shared mutation engine with both sequence-oriented
/// switches off (no substitution/insertion/deletion, no affinity analysis,
/// no synthesis) — only conventional within-statement mutations remain.
pub struct SquirrelFuzzer {
    inner: LegoFuzzer,
}

impl SquirrelFuzzer {
    pub fn new(dialect: Dialect, rng_seed: u64) -> Self {
        // SQUIRREL compensates for the missing sequence stage with more, and
        // more aggressive, within-statement mutants per seed (its IR mutator
        // stacks edits).
        let cfg = Config {
            rng_seed,
            seq_mutation: false,
            sequence_oriented: false,
            conventional_per_seed: 24,
            mutation_stack: 4,
            ..Config::default()
        };
        Self { inner: LegoFuzzer::new(dialect, cfg) }
    }
}

impl FuzzEngine for SquirrelFuzzer {
    fn name(&self) -> &'static str {
        "SQUIRREL"
    }

    fn next_case(&mut self) -> Arc<TestCase> {
        self.inner.next_case()
    }

    fn feedback(&mut self, case: &Arc<TestCase>, report: &ExecReport, new_coverage: bool) {
        self.inner.feedback(case, report, new_coverage)
    }

    fn corpus(&self) -> Vec<Arc<TestCase>> {
        self.inner.corpus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego::affinity::corpus_affinities;
    use lego::campaign::{run_campaign, Budget};

    #[test]
    fn squirrel_never_changes_type_sequences() {
        let mut fz = SquirrelFuzzer::new(Dialect::Postgres, 7);
        let stats = run_campaign(&mut fz, Dialect::Postgres, Budget::units(30_000));
        // Every retained case's type sequence must equal one of the seeds'.
        let seed_seqs: Vec<Vec<lego_sqlast::StmtKind>> =
            lego::seeds::initial_corpus(Dialect::Postgres)
                .iter()
                .map(|c| c.type_sequence())
                .collect();
        for case in fz.corpus() {
            assert!(
                seed_seqs.contains(&case.type_sequence()),
                "SQUIRREL changed a type sequence: {:?}",
                case.type_sequence()
            );
        }
        assert!(stats.branches > 0);
    }

    #[test]
    fn squirrel_corpus_affinities_stay_tiny() {
        let mut fz = SquirrelFuzzer::new(Dialect::MariaDb, 7);
        run_campaign(&mut fz, Dialect::MariaDb, Budget::units(30_000));
        let aff = corpus_affinities(&fz.corpus()).len();
        assert!(aff < 60, "SQUIRREL found {aff} affinities — too many");
    }
}
