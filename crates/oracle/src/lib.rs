#![forbid(unsafe_code)]

//! `lego-oracle` — correctness oracles for the simulated DBMS.
//!
//! LEGO (the source paper) only observes *crashes*; most real DBMS bugs are
//! silent wrong results. This crate adds the SQLancer-style logic-bug
//! oracles on top of the existing pipeline:
//!
//! * **TLP** (ternary logic partitioning): a `SELECT … WHERE p` is
//!   partitioned into `p`, `NOT p`, `p IS NULL`; the multiset union of the
//!   three partitions must equal the unpartitioned result.
//! * **NoREC** (non-optimizing reference construction): the optimized
//!   predicate query's cardinality must match the count of rows on which
//!   the predicate — re-evaluated as a plain projection over the unfiltered
//!   scan — is true.
//! * **Differential**: dialect-neutral statement subsequences are replayed
//!   across the four dialect profiles; on the shared-semantics core, any
//!   result-set divergence between profiles is a bug.
//!
//! The campaign driver (`lego::campaign`) runs [`OracleSuite::check_case`]
//! after each corpus-accepted case and routes the resulting [`LogicBug`]s
//! through the same dedup/reduce/report pipeline as crash bugs. Everything
//! here is deterministic: oracle replays run on dedicated DBMS instances
//! with no coverage feedback into the campaign, so enabling oracles never
//! perturbs the campaign's coverage or corpus trajectory.

pub mod differential;
pub mod metamorphic;
pub mod recovery;
pub mod reduce;

use lego_dbms::Dbms;
use lego_sqlast::ast::{SelectVariant, Statement};
use lego_sqlast::skeleton::rebind;
use lego_sqlast::{Dialect, Expr, TestCase};
use serde::Serialize;
use std::path::Path;

pub use recovery::{DurabilityBug, RecoveryOracle};

/// Which oracle flagged a wrong result.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum OracleKind {
    Tlp,
    Norec,
    Differential,
    /// WAL crash-recovery oracle (durability, not wrong results).
    Recovery,
    /// Analyzer-vs-engine conformance oracle (`--sema` campaigns): the
    /// static analyzer and the engine disagreed on a statement's validity.
    Sema,
}

impl OracleKind {
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Tlp => "TLP",
            OracleKind::Norec => "NoREC",
            OracleKind::Differential => "differential",
            OracleKind::Recovery => "recovery",
            OracleKind::Sema => "sema",
        }
    }
}

/// A deduplicable wrong-result finding — the logic-bug analogue of
/// `lego_dbms::CrashReport`.
#[derive(Clone, Debug, Serialize)]
pub struct LogicBug {
    pub oracle: OracleKind,
    /// Dialect of the campaign that found the bug.
    pub dialect: Dialect,
    /// Index of the offending SELECT within the triggering test case.
    pub statement: usize,
    /// The offending SELECT, as SQL.
    pub query: String,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl LogicBug {
    /// Stable identifier used as a human-facing bug label.
    pub fn identifier(&self) -> String {
        match self.oracle {
            OracleKind::Recovery => "recovery durability loss".to_string(),
            OracleKind::Sema => "sema conformance divergence".to_string(),
            _ => format!("{} wrong result", self.oracle.name()),
        }
    }

    /// Dedup key, analogous to `CrashReport::stack_hash`: FNV-1a over the
    /// oracle kind, the dialect, and the offending query's *skeleton* (the
    /// query with literals canonicalized). Literal values do not change
    /// which engine defect a divergence exposes, and the reducer's literal
    /// simplification must not change a bug's identity.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |s: &str| {
            for b in s.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(self.oracle.name());
        mix("\u{1}");
        mix(self.dialect.name());
        mix("\u{1}");
        mix(&skeleton_sql(&self.query));
        h
    }
}

/// Canonicalize every literal in a SELECT's SQL text (parse → rebind →
/// re-print), matching the reducer's literal-simplification targets so that
/// reduced and unreduced reproducers of one defect fingerprint identically.
/// Unparseable input (never produced by the oracles themselves) hashes as-is.
fn skeleton_sql(query_sql: &str) -> String {
    match lego_sqlparser::parse_statement(query_sql) {
        Ok(mut stmt) => {
            rebind(
                &mut stmt,
                |_t| {},
                |_c| {},
                |l| match l {
                    Expr::Integer(_) | Expr::Float(_) => *l = Expr::Integer(1),
                    Expr::Str(_) => *l = Expr::Str("x".into()),
                    _ => {}
                },
            );
            stmt.to_string()
        }
        Err(_) => query_sql.to_string(),
    }
}

/// Which oracles to run. All off (`disabled`) makes every check a no-op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleConfig {
    pub tlp: bool,
    pub norec: bool,
    pub differential: bool,
    /// WAL crash-recovery oracle. Opt-in (`--oracles=recovery`): it is not
    /// part of [`OracleConfig::all`] because it needs a WAL directory and
    /// checks durability rather than result correctness.
    pub recovery: bool,
}

impl OracleConfig {
    pub fn disabled() -> Self {
        Self::default()
    }

    /// TLP + NoREC + differential (the logic oracles; recovery stays
    /// opt-in).
    pub fn all() -> Self {
        Self { tlp: true, norec: true, differential: true, recovery: false }
    }

    /// The two metamorphic oracles only.
    pub fn metamorphic() -> Self {
        Self { tlp: true, norec: true, differential: false, recovery: false }
    }

    /// The recovery oracle only.
    pub fn recovery_only() -> Self {
        Self { tlp: false, norec: false, differential: false, recovery: true }
    }

    pub fn enabled(&self) -> bool {
        self.tlp || self.norec || self.differential || self.recovery
    }
}

/// What one `check_case` run produced.
#[derive(Clone, Debug, Default)]
pub struct OracleOutcome {
    /// Wrong-result findings (not yet deduplicated).
    pub bugs: Vec<LogicBug>,
    /// Oracle comparisons actually performed (eligible queries only).
    pub checks: usize,
    /// Statement-execution units spent on replays and rewritten queries —
    /// charged to the campaign budget like crash-triage executions.
    pub execs: usize,
}

/// Reusable oracle harness: one replay DBMS per dialect, reset between
/// cases. Campaign workers own one suite each, so parallel campaigns stay
/// scheduler-independent.
pub struct OracleSuite {
    cfg: OracleConfig,
    dialect: Dialect,
    /// Replay instance for the metamorphic oracles (campaign dialect).
    base: Dbms,
    /// One instance per dialect for the differential oracle.
    cross: Vec<Dbms>,
    /// WAL crash-recovery harness, when `cfg.recovery` (and the WAL
    /// directory was creatable).
    recovery: Option<RecoveryOracle>,
}

impl OracleSuite {
    pub fn new(dialect: Dialect, cfg: OracleConfig) -> Self {
        Self::with_wal(dialect, cfg, None, 0)
    }

    /// Like [`OracleSuite::new`], with an explicit WAL directory and worker
    /// index for the recovery oracle. Each worker writes its own
    /// `worker{NN}.wal` file, so parallel campaigns never share a path.
    /// With `wal_dir == None` a per-process directory under the system
    /// temp dir is used (the WAL path never influences findings).
    pub fn with_wal(
        dialect: Dialect,
        cfg: OracleConfig,
        wal_dir: Option<&Path>,
        worker: usize,
    ) -> Self {
        let recovery = if cfg.recovery {
            let default_dir;
            let dir = match wal_dir {
                Some(d) => d,
                None => {
                    default_dir =
                        std::env::temp_dir().join(format!("lego-wal-{}", std::process::id()));
                    &default_dir
                }
            };
            RecoveryOracle::new(dialect, dir, worker).ok()
        } else {
            None
        };
        Self {
            cfg,
            dialect,
            base: Dbms::new(dialect),
            cross: Dialect::ALL.iter().map(|&d| Dbms::new(d)).collect(),
            recovery,
        }
    }

    pub fn config(&self) -> OracleConfig {
        self.cfg
    }

    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Path of the recovery oracle's WAL file, if it is active.
    pub fn wal_path(&self) -> Option<&Path> {
        self.recovery.as_ref().map(RecoveryOracle::wal_path)
    }

    /// Run every configured oracle over one (non-crashing) test case.
    /// Deterministic: depends only on the case, the dialect, and the config.
    pub fn check_case(&mut self, case: &TestCase) -> OracleOutcome {
        let mut out = self.check_case_logic(case);
        let rec = self.check_case_recovery(case);
        out.bugs.extend(rec.bugs);
        out.checks += rec.checks;
        out.execs += rec.execs;
        out
    }

    /// The logic oracles only (TLP/NoREC/differential) — split out so the
    /// campaign can profile them under `Stage::Oracle` while recovery is
    /// timed as `Stage::Recovery`.
    pub fn check_case_logic(&mut self, case: &TestCase) -> OracleOutcome {
        let mut out = OracleOutcome::default();
        if self.cfg.tlp || self.cfg.norec {
            metamorphic::check(&mut self.base, self.dialect, self.cfg, case, &mut out);
        }
        if self.cfg.differential {
            differential::check(&mut self.cross, self.dialect, case, &mut out);
        }
        out
    }

    /// The recovery oracle only.
    pub fn check_case_recovery(&mut self, case: &TestCase) -> OracleOutcome {
        let mut out = OracleOutcome::default();
        if let Some(rec) = self.recovery.as_mut() {
            rec.check(case, &mut out);
        }
        out
    }

    /// Does this case still trigger a logic bug with the given fingerprint?
    /// The reducer's "still fails the oracle" predicate.
    pub fn bug_persists(&mut self, case: &TestCase, fingerprint: u64) -> bool {
        self.check_case(case).bugs.iter().any(|b| b.fingerprint() == fingerprint)
    }
}

/// Is this statement an eligible plain SELECT (the only statement shape the
/// metamorphic oracles rewrite)?
pub(crate) fn plain_select(stmt: &Statement) -> Option<&lego_sqlast::ast::Query> {
    match stmt {
        Statement::Select(s) if matches!(s.variant, SelectVariant::Plain) => Some(&s.query),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bug(query: &str) -> LogicBug {
        LogicBug {
            oracle: OracleKind::Tlp,
            dialect: Dialect::Postgres,
            statement: 3,
            query: query.into(),
            detail: "x".into(),
        }
    }

    #[test]
    fn fingerprint_ignores_literal_values_and_statement_position() {
        let a = bug("SELECT * FROM t WHERE (a < 5);");
        let mut b = bug("SELECT * FROM t WHERE (a < 99);");
        b.statement = 0;
        b.detail = "different".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_query_shape_oracle_and_dialect() {
        let a = bug("SELECT * FROM t WHERE (a < 5);");
        let shape = bug("SELECT * FROM t WHERE (a = 5);");
        assert_ne!(a.fingerprint(), shape.fingerprint());
        let mut oracle = bug("SELECT * FROM t WHERE (a < 5);");
        oracle.oracle = OracleKind::Norec;
        assert_ne!(a.fingerprint(), oracle.fingerprint());
        let mut dialect = bug("SELECT * FROM t WHERE (a < 5);");
        dialect.dialect = Dialect::MySql;
        assert_ne!(a.fingerprint(), dialect.fingerprint());
    }

    #[test]
    fn config_flags() {
        assert!(!OracleConfig::disabled().enabled());
        assert!(OracleConfig::all().enabled());
        assert!(OracleConfig::metamorphic().enabled());
        assert!(!OracleConfig::metamorphic().differential);
    }

    #[test]
    fn logic_bugs_serialize() {
        let json = serde_json::to_string(&bug("SELECT 1;")).unwrap_or_default();
        // Vendored serde: unit-variant enums and plain structs derive.
        assert!(json.contains("Tlp"), "{json}");
    }
}
