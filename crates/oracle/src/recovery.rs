//! The recovery oracle: crash-point injection + WAL replay verification.
//!
//! For each checked case, the oracle picks a deterministic pseudo-random
//! **crash point** `k` (a statement index derived from the case's SQL text,
//! never from shared RNG state — so serial and N-worker campaigns stay
//! byte-identical), executes the `k`-statement prefix on a WAL-attached
//! engine, simulates a crash, and verifies recovery twice:
//!
//! 1. **Clean-boundary crash.** The post-crash disk image is the WAL as of
//!    the last sync (the open-transaction tail was never written). Recovery
//!    must yield exactly the records the engine acknowledged as synced, the
//!    log must not read as torn, and replaying the recovered records on a
//!    fresh engine must reproduce the live engine's *committed* state
//!    fingerprint.
//! 2. **Torn-tail crash.** The file is then truncated at a deterministic
//!    byte offset strictly inside the last written record — a crash mid
//!    `write(2)`. Recovery must detect the torn tail and yield the longest
//!    valid prefix (every written record but the last).
//!
//! ## Soundness
//!
//! Both sides of every comparison are functions of the same statement
//! prefix executed from a fresh engine, so a correct engine can never
//! diverge:
//!
//! * The synced records are a contiguous prefix of the executed statements
//!   (syncs happen only at commit boundaries), so the replay trace is a
//!   prefix of the live trace and cannot newly trip the pattern-based crash
//!   oracle — the live run already cleared every prefix.
//! * The committed fingerprint covers the catalog only (not session state),
//!   and is taken from the transaction snapshot while a transaction is
//!   open — exactly the state the synced prefix produces.
//! * Cases whose prefix crashes or trips a budget are skipped: their disk
//!   image is not attributable to a clean crash model.
//!
//! Any divergence is reported as a [`DurabilityBug`] and converted to a
//! [`LogicBug`] whose `query` is a canonical *class* string, so the
//! fingerprint dedups all instances of one failure mode (e.g. every case
//! that loses its last synced record) into a single finding, and ddmin
//! reduction via [`crate::OracleSuite::bug_persists`] works unchanged.

use crate::{LogicBug, OracleKind, OracleOutcome};
use lego_dbms::recovery::{self, RecoveredLog};
use lego_dbms::{Dbms, Outcome};
use lego_sqlast::{Dialect, TestCase};
use std::io;
use std::path::{Path, PathBuf};

/// Recovered log differs from the records the engine acknowledged as
/// durable (lost or reordered committed writes), or the clean-boundary
/// image reads as torn.
pub const CLASS_REPLAY_DIVERGENCE: &str = "recovery: replay divergence";
/// Truncation strictly inside the last record is not recovered as the
/// longest valid prefix.
pub const CLASS_TORN_RECOVERY: &str = "recovery: torn tail mishandled";
/// Records match but replaying them does not reproduce the committed state.
pub const CLASS_STATE_DIVERGENCE: &str = "recovery: state divergence";

/// A durability finding, before it enters the logic-bug triage pipeline.
#[derive(Clone, Debug)]
pub struct DurabilityBug {
    /// Failure-mode class (one of the `CLASS_*` constants) — the dedup key.
    pub class: &'static str,
    /// Statement index of the injected crash point.
    pub crash_point: usize,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl DurabilityBug {
    /// Enter the existing triage pipeline: the class string becomes the
    /// `LogicBug` query, which `skeleton_sql` hashes as-is (it is not SQL),
    /// so the fingerprint is `f(oracle, dialect, class)`.
    pub fn into_logic_bug(self, dialect: Dialect) -> LogicBug {
        LogicBug {
            oracle: OracleKind::Recovery,
            dialect,
            statement: self.crash_point,
            query: self.class.to_string(),
            detail: self.detail,
        }
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Reusable recovery-oracle harness: one WAL-attached live engine and one
/// replay engine, reset between cases. Each campaign worker owns one, with
/// its own WAL file, so parallel campaigns never contend on a path.
pub struct RecoveryOracle {
    dialect: Dialect,
    wal_path: PathBuf,
    /// Executes the crash-point prefix with the WAL attached.
    live: Dbms,
    /// Replays recovered records for the state comparison.
    replay: Dbms,
}

impl RecoveryOracle {
    /// `wal_dir` is created if missing; the WAL file is
    /// `wal_dir/worker{NN}.wal`, truncated per checked case.
    pub fn new(dialect: Dialect, wal_dir: &Path, worker: usize) -> io::Result<Self> {
        std::fs::create_dir_all(wal_dir)?;
        Ok(Self {
            dialect,
            wal_path: wal_dir.join(format!("worker{worker:02}.wal")),
            live: Dbms::new(dialect),
            replay: Dbms::new(dialect),
        })
    }

    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Crash point for a case: a statement index in `1..=len`, derived only
    /// from the case text.
    pub fn crash_point(case_sql: &str, len: usize) -> usize {
        1 + (fnv64(case_sql.as_bytes()) % len as u64) as usize
    }

    /// Run the recovery check on one case, accumulating into `out`. Findings
    /// are appended as [`LogicBug`]s with [`OracleKind::Recovery`].
    pub fn check(&mut self, case: &TestCase, out: &mut OracleOutcome) {
        if case.statements.is_empty() {
            return;
        }
        let case_sql = case.to_sql();
        let k = Self::crash_point(&case_sql, case.statements.len());
        let prefix = TestCase::new(case.statements[..k].to_vec());

        self.live.reset();
        if self.live.wal_attach(&self.wal_path).is_err() {
            // Environment failure (unwritable dir), not an engine bug.
            return;
        }
        let report = self.live.execute_case(&prefix);
        out.execs += 1;
        if !matches!(report.outcome, Outcome::Ok) {
            // A crashed or budget-killed prefix has no clean crash model.
            self.live.wal_detach();
            return;
        }
        out.checks += 1;

        let (expected, written, last_span, wal_io_error) = {
            let wal = self.live.wal().expect("wal attached above");
            (
                wal.synced_records().to_vec(),
                wal.written_records().to_vec(),
                wal.last_written_span(),
                wal.io_error().map(str::to_string),
            )
        };
        let live_fp = self.live.durable_fingerprint();
        // Simulate the crash: the pending (open-transaction) tail was never
        // written, so the file on disk is already the post-crash image.
        self.live.wal_crash();
        self.live.wal_detach();
        if wal_io_error.is_some() {
            // A real I/O failure (disk full) is an environment problem; a
            // divergence caused by it would be a false accusation.
            return;
        }

        if let Some(bug) = self.check_clean_boundary(&expected, live_fp, k, out) {
            out.bugs.push(bug.into_logic_bug(self.dialect));
            return;
        }
        if let Some(bug) = self.check_torn_tail(&written, last_span, &case_sql, k) {
            out.bugs.push(bug.into_logic_bug(self.dialect));
        }
    }

    /// Clean-boundary crash: recovered records must equal the synced list
    /// and replay must reproduce the committed fingerprint.
    fn check_clean_boundary(
        &mut self,
        expected: &[String],
        live_fp: u64,
        k: usize,
        out: &mut OracleOutcome,
    ) -> Option<DurabilityBug> {
        let log = match recovery::read_wal(&self.wal_path) {
            Ok(log) => log,
            Err(_) => return None,
        };
        if log.torn || log.records != expected {
            return Some(DurabilityBug {
                class: CLASS_REPLAY_DIVERGENCE,
                crash_point: k,
                detail: divergence_detail(&log, expected),
            });
        }
        self.replay.reset();
        match recovery::replay_into(&mut self.replay, &log.records) {
            Ok(_) => out.execs += 1,
            Err(e) => {
                return Some(DurabilityBug {
                    class: CLASS_REPLAY_DIVERGENCE,
                    crash_point: k,
                    detail: e,
                })
            }
        }
        let replay_fp = self.replay.durable_fingerprint();
        if replay_fp != live_fp {
            return Some(DurabilityBug {
                class: CLASS_STATE_DIVERGENCE,
                crash_point: k,
                detail: format!(
                    "replaying {} recovered records gives state fingerprint \
                     {replay_fp:016x}, live committed state is {live_fp:016x}",
                    log.records.len(),
                ),
            });
        }
        None
    }

    /// Torn-tail crash: truncate strictly inside the last written record;
    /// recovery must flag the tear and keep every earlier record.
    fn check_torn_tail(
        &mut self,
        written: &[String],
        last_span: Option<(u64, u64)>,
        case_sql: &str,
        k: usize,
    ) -> Option<DurabilityBug> {
        let (start, len) = last_span?;
        debug_assert!(len >= 2, "a record is at least a header");
        // A cut anywhere in [start+1, start+len-1] leaves a non-empty,
        // incomplete tail. Derived from the case text, like the crash point.
        let cut = start + 1 + fnv64(format!("torn\u{1}{case_sql}").as_bytes()) % (len - 1);
        let file = match std::fs::OpenOptions::new().write(true).open(&self.wal_path) {
            Ok(f) => f,
            Err(_) => return None,
        };
        if file.set_len(cut).is_err() {
            return None;
        }
        let log = match recovery::read_wal(&self.wal_path) {
            Ok(log) => log,
            Err(_) => return None,
        };
        let want = &written[..written.len() - 1];
        if !log.torn || log.records != want {
            return Some(DurabilityBug {
                class: CLASS_TORN_RECOVERY,
                crash_point: k,
                detail: format!(
                    "after truncating mid-record at byte {cut}, recovery \
                     returned {} records (torn={}), want the {}-record valid \
                     prefix with torn=true",
                    log.records.len(),
                    log.torn,
                    want.len(),
                ),
            });
        }
        None
    }
}

fn divergence_detail(log: &RecoveredLog, expected: &[String]) -> String {
    let mismatch = log
        .records
        .iter()
        .zip(expected)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| log.records.len().min(expected.len()));
    format!(
        "recovered {} of {} synced records (torn={}), first mismatch at \
         record {mismatch}",
        log.records.len(),
        expected.len(),
        log.torn,
    )
}
