//! Generalized reproducer reduction.
//!
//! The same two-phase shrink the crash triage pipeline uses — statement-level
//! delta debugging, then literal canonicalization — parameterized over an
//! arbitrary "still fails" predicate so it serves both bug classes:
//!
//! * crashes: "still produces the same stack hash" (`lego::reduce`),
//! * logic bugs: "still trips an oracle with the same fingerprint"
//!   ([`reduce_logic_bug`]).

use crate::{LogicBug, OracleSuite};
use lego_sqlast::expr::Expr;
use lego_sqlast::skeleton::rebind;
use lego_sqlast::TestCase;

/// Shrink a failing test case while `still_fails` holds. Returns the reduced
/// case and the number of candidate evaluations spent (the campaign charges
/// these to its statement budget like crash-triage executions).
///
/// The caller guarantees `still_fails(case)` is true on entry; the predicate
/// must be deterministic for the reduction (and the campaign replaying it)
/// to be reproducible.
pub fn reduce_with(
    case: &TestCase,
    mut still_fails: impl FnMut(&TestCase) -> bool,
) -> (TestCase, usize) {
    let mut evals = 0usize;
    let mut current = case.clone();

    // Phase 1: statement-level ddmin — try dropping halves, then quarters,
    // … then single statements, iterating to a fixed point.
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 {
        let mut progress = false;
        let mut start = 0;
        while start < current.len() && current.len() > 1 {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.statements.drain(start..end);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
                progress = true;
                // Retry the same offset: the next chunk shifted into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progress {
            break;
        }
        if !progress {
            chunk /= 2;
        }
    }

    // Phase 2: literal simplification — canonicalize literals one statement
    // at a time, keeping changes that preserve the failure.
    for i in 0..current.len() {
        let mut candidate = current.clone();
        let mut changed = false;
        rebind(
            &mut candidate.statements[i],
            |_t| {},
            |_c| {},
            |l| {
                let simple = match l {
                    Expr::Integer(v) if *v != 0 && *v != 1 => Some(Expr::Integer(1)),
                    Expr::Float(_) => Some(Expr::Integer(1)),
                    Expr::Str(s) if !s.is_empty() && s != "x" => Some(Expr::Str("x".into())),
                    _ => None,
                };
                if let Some(sv) = simple {
                    *l = sv;
                    changed = true;
                }
            },
        );
        if changed {
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
            }
        }
    }

    (current, evals)
}

/// Shrink a logic-bug reproducer: a candidate survives iff the oracle suite
/// still reports a bug with the same fingerprint (fingerprints canonicalize
/// literals, so phase 2 cannot change a bug's identity).
pub fn reduce_logic_bug(
    case: &TestCase,
    suite: &mut OracleSuite,
    bug: &LogicBug,
) -> (TestCase, usize) {
    let want = bug.fingerprint();
    reduce_with(case, |candidate| suite.bug_persists(candidate, want))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_with_drops_irrelevant_statements() {
        let case = lego_sqlparser::parse_script(
            "CREATE TABLE a (x INT);\n\
             CREATE TABLE b (y INT);\n\
             INSERT INTO a VALUES (123456);\n\
             INSERT INTO b VALUES (2);\n\
             SELECT * FROM b;",
        )
        .unwrap();
        // Synthetic predicate: "fails" while the case still mentions table b.
        let (reduced, evals) = reduce_with(&case, |c| c.to_sql().contains('b'));
        assert!(evals > 0);
        assert!(reduced.len() < case.len(), "{}", reduced.to_sql());
        assert!(reduced.to_sql().contains('b'));
        assert!(!reduced.to_sql().contains("123456"), "{}", reduced.to_sql());
    }

    #[test]
    fn reduce_with_is_identity_when_nothing_can_be_dropped() {
        let case = lego_sqlparser::parse_script("SELECT 1;").unwrap();
        let (reduced, _) = reduce_with(&case, |_| true);
        assert_eq!(reduced.len(), 1);
    }
}
