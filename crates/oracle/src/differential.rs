//! Cross-dialect differential oracle.
//!
//! The four dialect profiles intentionally differ in surface area (windows,
//! triggers, foreign-key enforcement, …), but on a shared-semantics core —
//! plain `CREATE TABLE` / `INSERT` / `UPDATE` / `DELETE` / window-free
//! `SELECT` — they must agree. This oracle projects a case onto that
//! neutral core, replays it on one fresh instance per dialect, and flags a
//! `SELECT` whose result-set fingerprint diverges between profiles.
//!
//! Soundness guard: a divergence is only reported while every dialect has
//! agreed on the accept/reject status of *every preceding neutral
//! statement*. The first status disagreement ends the comparison for the
//! rest of the case (the database states may legitimately differ from that
//! point on); it is recorded as expected dialect divergence, not a bug.

use crate::{plain_select, LogicBug, OracleKind, OracleOutcome};
use lego_dbms::Dbms;
use lego_sqlast::ast::{Query, SelectItem, SetExpr, Statement};
use lego_sqlast::{Dialect, Expr, TestCase};

pub(crate) fn check(
    cross: &mut [Dbms],
    dialect: Dialect,
    case: &TestCase,
    out: &mut OracleOutcome,
) {
    let neutral: Vec<&Statement> =
        case.statements.iter().filter(|s| neutral_statement(s)).collect();
    if !neutral.iter().any(|s| plain_select(s).is_some()) {
        return;
    }
    for db in cross.iter_mut() {
        db.reset();
    }
    for (idx, stmt) in neutral.iter().enumerate() {
        // For SELECTs capture the result fingerprint first (queries do not
        // mutate state), then advance every dialect through the statement
        // and compare accept/reject statuses.
        let fps: Option<Vec<Result<(u64, usize), ()>>> = plain_select(stmt).map(|q| {
            cross
                .iter_mut()
                .map(|db| {
                    out.execs += 1;
                    db.run_query(q).map(|rs| (rs.fingerprint(), rs.rows.len())).map_err(|_| ())
                })
                .collect()
        });
        let mut statuses = Vec::with_capacity(cross.len());
        for db in cross.iter_mut() {
            let rep = db.execute_case(&TestCase::new(vec![(*stmt).clone()]));
            out.execs += rep.statements_executed.max(1);
            statuses.push(rep.crash().is_none() && rep.errors.is_empty());
        }
        if let Some(fps) = fps {
            if fps.iter().all(|r| r.is_ok()) {
                out.checks += 1;
                let first = fps[0];
                if fps.iter().any(|f| *f != first) {
                    let counts: Vec<String> = Dialect::ALL
                        .iter()
                        .zip(&fps)
                        .map(|(d, f)| match f {
                            Ok((fp, n)) => format!("{}: {} rows (fp {:016x})", d.name(), n, fp),
                            Err(()) => format!("{}: error", d.name()),
                        })
                        .collect();
                    out.bugs.push(LogicBug {
                        oracle: OracleKind::Differential,
                        dialect,
                        statement: idx,
                        query: q_sql(stmt),
                        detail: format!(
                            "dialects disagree on a neutral-core query: {}",
                            counts.join("; ")
                        ),
                    });
                }
            }
        }
        // Expected divergence: one dialect rejected a statement the others
        // accepted (or vice versa). States may differ from here on.
        if statuses.iter().any(|&s| s != statuses[0]) {
            return;
        }
    }
}

fn q_sql(stmt: &Statement) -> String {
    plain_select(stmt).map(|q| q.to_string()).unwrap_or_else(|| stmt.to_string())
}

/// Statements whose semantics the four profiles share. Everything else
/// (DDL beyond plain tables, triggers, rules, transactions, session state,
/// privilege changes, dialect-specific INSERT modifiers, window functions)
/// is projected away before replay.
fn neutral_statement(stmt: &Statement) -> bool {
    match stmt {
        Statement::CreateTable(_) | Statement::Update(_) | Statement::Delete(_) => true,
        Statement::Insert(i) => !i.ignore && !i.replace,
        Statement::Select(_) => match plain_select(stmt) {
            Some(q) => !query_has_window(q),
            None => false,
        },
        _ => false,
    }
}

fn query_has_window(q: &Query) -> bool {
    match &q.body {
        SetExpr::Select(sel) => sel.projection.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr_has_window(expr),
            _ => false,
        }),
        // Set operations / VALUES are not produced with windows by the
        // generators; treat them as neutral.
        _ => false,
    }
}

fn expr_has_window(e: &Expr) -> bool {
    match e {
        Expr::Window { .. } => true,
        Expr::Unary(_, inner) => expr_has_window(inner),
        Expr::Binary(l, _, r) => expr_has_window(l) || expr_has_window(r),
        Expr::Cast { expr, .. } => expr_has_window(expr),
        Expr::Case { operand, whens, else_ } => {
            operand.as_deref().is_some_and(expr_has_window)
                || whens.iter().any(|(w, t)| expr_has_window(w) || expr_has_window(t))
                || else_.as_deref().is_some_and(expr_has_window)
        }
        Expr::Func(f) => f.args.iter().any(expr_has_window),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleConfig, OracleSuite};
    use lego_sqlparser::parse_script;

    fn diff_only() -> OracleConfig {
        OracleConfig { tlp: false, norec: false, differential: true, recovery: false }
    }

    fn case(sql: &str) -> TestCase {
        parse_script(sql).expect("test SQL parses")
    }

    #[test]
    fn neutral_core_agrees_across_dialects() {
        let mut s = OracleSuite::new(Dialect::Postgres, diff_only());
        let out = s.check_case(&case(
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y'), (NULL, 'z');
             UPDATE t SET b = 'w' WHERE a = 2;
             DELETE FROM t WHERE a IS NULL;
             SELECT * FROM t WHERE a < 10;
             SELECT b FROM t;",
        ));
        assert!(out.bugs.is_empty(), "{:?}", out.bugs);
        assert_eq!(out.checks, 2);
    }

    #[test]
    fn non_neutral_statements_are_projected_away() {
        let mut s = OracleSuite::new(Dialect::Postgres, diff_only());
        // The trigger would fire on MySQL-family but Comdb2 has no triggers;
        // projecting it away keeps the replay comparable.
        let out = s.check_case(&case(
            "CREATE TABLE t (a INT);
             CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW INSERT INTO t VALUES (2);
             INSERT INTO t VALUES (1);
             SELECT * FROM t;",
        ));
        assert!(out.bugs.is_empty(), "{:?}", out.bugs);
        assert_eq!(out.checks, 1);
    }

    #[test]
    fn case_without_selects_is_skipped() {
        let mut s = OracleSuite::new(Dialect::Postgres, diff_only());
        let out = s.check_case(&case(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1);",
        ));
        assert_eq!(out.checks, 0);
        assert_eq!(out.execs, 0, "no SELECT in the neutral core: no replay at all");
    }
}
