//! Metamorphic oracles: TLP and NoREC.
//!
//! Both replay the case's statements one at a time on a dedicated DBMS
//! instance and, *before* each eligible plain `SELECT … WHERE p` executes,
//! run the oracle's rewritten companions against the current database state:
//!
//! * **TLP**: the multiset union of `WHERE p` / `WHERE NOT p` /
//!   `WHERE p IS NULL` must equal the unpartitioned result.
//! * **NoREC**: `SELECT … WHERE p` must return exactly as many rows as the
//!   predicate evaluates to TRUE on the unfiltered scan
//!   (`SELECT p AS norec FROM …`).
//!
//! Eligibility (no aggregates/windows/GROUP BY/DISTINCT/LIMIT…) is decided
//! by `lego_sqlast::rewrite`; queries that error are skipped rather than
//! flagged — execution errors are the crash oracle's domain.

use crate::{plain_select, LogicBug, OracleConfig, OracleKind, OracleOutcome};
use lego_dbms::{Dbms, ResultSet};
use lego_sqlast::ast::Query;
use lego_sqlast::rewrite::{norec_rewrite, tlp_partition};
use lego_sqlast::{Dialect, TestCase};

pub(crate) fn check(
    db: &mut Dbms,
    dialect: Dialect,
    cfg: OracleConfig,
    case: &TestCase,
    out: &mut OracleOutcome,
) {
    db.reset();
    for (idx, stmt) in case.statements.iter().enumerate() {
        if let Some(q) = plain_select(stmt) {
            if cfg.tlp {
                if let Some(bug) = check_tlp(db, dialect, idx, q, out) {
                    out.bugs.push(bug);
                }
            }
            if cfg.norec {
                if let Some(bug) = check_norec(db, dialect, idx, q, out) {
                    out.bugs.push(bug);
                }
            }
        }
        // Advance the database state through this statement. A single
        // statement has a single-kind type trace, so the sequence-pattern
        // crash oracle cannot fire on cases the campaign already ran clean —
        // but stop replaying if the instance dies anyway.
        let rep = db.execute_case(&TestCase::new(vec![stmt.clone()]));
        out.execs += rep.statements_executed.max(1);
        if rep.crash().is_some() {
            break;
        }
    }
}

fn check_tlp(
    db: &mut Dbms,
    dialect: Dialect,
    idx: usize,
    q: &Query,
    out: &mut OracleOutcome,
) -> Option<LogicBug> {
    let part = tlp_partition(q)?;
    out.execs += 1;
    let base = db.run_query(&part.unpartitioned).ok()?;
    let mut union = ResultSet { columns: base.columns.clone(), rows: Vec::new() };
    for pq in &part.partitions {
        out.execs += 1;
        let rs = db.run_query(pq).ok()?;
        union.rows.extend(rs.rows);
    }
    out.checks += 1;
    if base.fingerprint() == union.fingerprint() {
        return None;
    }
    Some(LogicBug {
        oracle: OracleKind::Tlp,
        dialect,
        statement: idx,
        query: q.to_string(),
        detail: format!(
            "unpartitioned query returned {} rows but the TLP partitions \
             (p / NOT p / p IS NULL) union to {} rows",
            base.rows.len(),
            union.rows.len()
        ),
    })
}

fn check_norec(
    db: &mut Dbms,
    dialect: Dialect,
    idx: usize,
    q: &Query,
    out: &mut OracleOutcome,
) -> Option<LogicBug> {
    let pair = norec_rewrite(q)?;
    out.execs += 2;
    let optimized = db.run_query(&pair.optimized).ok()?;
    let scan = db.run_query(&pair.scan).ok()?;
    out.checks += 1;
    let expected = scan.truthy_rows();
    if optimized.rows.len() == expected {
        return None;
    }
    Some(LogicBug {
        oracle: OracleKind::Norec,
        dialect,
        statement: idx,
        query: q.to_string(),
        detail: format!(
            "filtered query returned {} rows but the predicate is TRUE on \
             {} of {} scanned rows",
            optimized.rows.len(),
            expected,
            scan.rows.len()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleSuite;
    use lego_sqlparser::parse_script;

    fn suite(cfg: OracleConfig) -> OracleSuite {
        OracleSuite::new(Dialect::Postgres, cfg)
    }

    fn case(sql: &str) -> TestCase {
        parse_script(sql).expect("test SQL parses")
    }

    #[test]
    fn clean_engine_passes_tlp_and_norec() {
        let mut s = suite(OracleConfig::metamorphic());
        let out = s.check_case(&case(
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, NULL), (NULL, 'y');
             SELECT * FROM t WHERE a < 2;
             SELECT a FROM t WHERE b = 'x';",
        ));
        assert!(out.bugs.is_empty(), "{:?}", out.bugs);
        // Two eligible SELECTs × two oracles.
        assert_eq!(out.checks, 4);
        assert!(out.execs > 4);
    }

    #[test]
    fn ineligible_selects_are_skipped_not_flagged() {
        let mut s = suite(OracleConfig::metamorphic());
        let out = s.check_case(&case(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1), (2);
             SELECT count(*) FROM t WHERE a > 0;
             SELECT * FROM t;
             SELECT * FROM t WHERE a > 0 LIMIT 1;",
        ));
        assert!(out.bugs.is_empty(), "{:?}", out.bugs);
        assert_eq!(out.checks, 0, "aggregate/where-less/limit queries are ineligible");
    }

    #[test]
    fn erroring_query_is_skipped() {
        let mut s = suite(OracleConfig::metamorphic());
        let out = s.check_case(&case("SELECT * FROM missing WHERE a = 1;"));
        assert!(out.bugs.is_empty());
        assert_eq!(out.checks, 0);
    }

    #[test]
    fn null_predicate_rows_are_partitioned_correctly() {
        // Rows where the predicate is NULL appear in no filtered result but
        // must appear in the `p IS NULL` partition — classic TLP territory.
        let mut s = suite(OracleConfig::metamorphic());
        let out = s.check_case(&case(
            "CREATE TABLE t (a INT);
             INSERT INTO t VALUES (1), (NULL), (3), (NULL);
             SELECT * FROM t WHERE a > 1;",
        ));
        assert!(out.bugs.is_empty(), "{:?}", out.bugs);
        assert_eq!(out.checks, 2);
    }

    // Fault-injection detection tests live in `tests/fault_detection.rs`:
    // the fault flag is process-global, so they need their own test binary.
}
