//! Oracle detection of an injected wrong-result fault.
//!
//! These tests flip the process-global `lego_dbms::faults` flag, so they
//! live in their own test binary and serialize on a lock: the default test
//! runner is multithreaded, and the fault must not leak into unrelated
//! tests.

use lego_dbms::faults::FaultGuard;
use lego_oracle::{OracleConfig, OracleKind, OracleSuite};
use lego_sqlast::{Dialect, TestCase};
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn case(sql: &str) -> TestCase {
    lego_sqlparser::parse_script(sql).expect("test SQL parses")
}

const BUGGY_CASE: &str = "CREATE TABLE t (a INT);
     INSERT INTO t VALUES (1), (2), (3), (4);
     SELECT * FROM t WHERE a > 1;";

#[test]
fn norec_catches_the_injected_filter_fault() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let _guard = FaultGuard::enable_where_drops_last_row();
    let mut s = OracleSuite::new(
        Dialect::Postgres,
        OracleConfig { tlp: false, norec: true, differential: false, recovery: false },
    );
    let out = s.check_case(&case(BUGGY_CASE));
    // The faulty WHERE drops the last qualifying row; the NoREC scan form
    // has no WHERE clause, so its TRUE-count stays correct.
    assert_eq!(out.bugs.len(), 1, "{:?}", out.bugs);
    let bug = &out.bugs[0];
    assert_eq!(bug.oracle, OracleKind::Norec);
    assert_eq!(bug.statement, 2);
    assert!(bug.query.contains("FROM t"), "{}", bug.query);
    assert!(bug.detail.contains("2 rows"), "{}", bug.detail);
}

#[test]
fn tlp_catches_the_injected_filter_fault() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let _guard = FaultGuard::enable_where_drops_last_row();
    let mut s = OracleSuite::new(
        Dialect::Postgres,
        OracleConfig { tlp: true, norec: false, differential: false, recovery: false },
    );
    // Include NULLs so all three partitions are non-trivial; each partition
    // query loses its last row while the unpartitioned scan stays intact.
    let out = s.check_case(&case(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (1), (NULL), (3), (4);
         SELECT * FROM t WHERE a > 1;",
    ));
    assert_eq!(out.bugs.len(), 1, "{:?}", out.bugs);
    assert_eq!(out.bugs[0].oracle, OracleKind::Tlp);
}

#[test]
fn fingerprint_is_stable_across_literal_variants_of_the_fault() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let _guard = FaultGuard::enable_where_drops_last_row();
    let mut s = OracleSuite::new(Dialect::Postgres, OracleConfig::metamorphic());
    let a = s.check_case(&case(BUGGY_CASE));
    let b = s.check_case(&case(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (10), (20), (30), (40);
         SELECT * FROM t WHERE a > 15;",
    ));
    assert!(!a.bugs.is_empty() && !b.bugs.is_empty());
    let fa: Vec<u64> = a.bugs.iter().map(|x| x.fingerprint()).collect();
    let fb: Vec<u64> = b.bugs.iter().map(|x| x.fingerprint()).collect();
    assert_eq!(fa, fb, "same defect shape must dedup across literal values");
}

#[test]
fn reduction_shrinks_a_logic_bug_reproducer() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let _guard = FaultGuard::enable_where_drops_last_row();
    let noisy = case(
        "CREATE TABLE pad (z TEXT);
         INSERT INTO pad VALUES ('noise');
         CREATE TABLE t (a INT);
         SELECT * FROM pad;
         INSERT INTO t VALUES (100), (200), (300);
         SELECT * FROM t WHERE a > 150;",
    );
    let cfg = OracleConfig::metamorphic();
    let mut s = OracleSuite::new(Dialect::Postgres, cfg);
    let out = s.check_case(&noisy);
    let bug = out.bugs.first().cloned().expect("fault must be detected");
    let (reduced, evals) = lego_oracle::reduce::reduce_logic_bug(&noisy, &mut s, &bug);
    assert!(evals > 0);
    assert!(reduced.len() <= 3, "want <= 3 statements, got: {}", reduced.to_sql());
    assert!(!reduced.to_sql().contains("pad"), "{}", reduced.to_sql());
    // Literals canonicalized where the failure allows it.
    assert!(!reduced.to_sql().contains("300"), "{}", reduced.to_sql());
    // The reduced case still trips the oracle with the same identity.
    assert!(s.bug_persists(&reduced, bug.fingerprint()));
}

#[test]
fn fault_guard_restores_clean_behavior() {
    let _lock = FAULT_LOCK.lock().unwrap();
    {
        let _guard = FaultGuard::enable_where_drops_last_row();
    }
    let mut s = OracleSuite::new(Dialect::Postgres, OracleConfig::all());
    let out = s.check_case(&case(BUGGY_CASE));
    assert!(out.bugs.is_empty(), "fault leaked past its guard: {:?}", out.bugs);
}
