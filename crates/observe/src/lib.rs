//! # lego-observe — structured telemetry for LEGO fuzzing campaigns
//!
//! A lightweight event bus with pluggable sinks, an aggregating metrics
//! registry, a per-stage wall-clock profiler and a live terminal heartbeat.
//!
//! Design rules, in priority order:
//!
//! 1. **Zero-cost when disabled.** [`Telemetry::disabled`] is an `Option`
//!    that is `None`; every instrument method is one branch and the event
//!    constructor closure is never called.
//! 2. **Determinism is sacred.** Events carry logical time only, telemetry
//!    never touches the RNG streams or case ordering, and all timing lands
//!    in the [`profile::StageProfile`] which `deterministic_json` strips.
//! 3. **Workers stay independent.** Each parallel worker gets a
//!    [`Telemetry::worker_child`] that buffers its events locally; the
//!    parent merges the buffers in worker-index order at join, so the JSONL
//!    stream is identical run-to-run at a fixed seed and worker count.

pub mod event;
pub mod heartbeat;
pub mod http;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod timeseries;
pub mod trace;

pub use event::{Event, MutOp};
pub use heartbeat::{Heartbeat, LiveCounters};
pub use http::MonitorServer;
pub use metrics::MetricsRegistry;
pub use profile::{OperatorGain, Stage, StageAccum, StageEntry, StageProfile};
pub use sink::{BroadcastSink, EventSink, JsonlSink, MemorySink, NoopSink};
pub use timeseries::TimeSeriesRecorder;
pub use trace::TraceCollector;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Campaign identity stamped into bug artifacts.
#[derive(Clone, Debug, Default)]
struct Meta {
    seed: u64,
}

struct Inner {
    sinks: Vec<Arc<dyn EventSink>>,
    /// Real-time sinks (SSE broadcast). Unlike `sinks`, these are shared
    /// with worker children and receive events as they happen — a lossy
    /// *live view* for human observers, never part of the deterministic
    /// record (that is `sinks` + the ordered merge replay).
    live_sinks: Vec<Arc<dyn EventSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    /// Registry for direct wall-clock observations (exec-latency histogram,
    /// queue gauges). Shared with worker children — safe because these
    /// metrics are never derived from replayed events, so the merge cannot
    /// double count them.
    wall_metrics: Option<Arc<MetricsRegistry>>,
    stages: StageAccum,
    live: Arc<LiveCounters>,
    heartbeat: Option<Arc<Heartbeat>>,
    /// Chrome-trace span collector, shared with worker children (each child
    /// records onto its own track via `worker`).
    trace: Option<Arc<TraceCollector>>,
    /// Track id for trace spans: 0 for the parent/serial driver, worker
    /// index + offset handled by the collector for children.
    worker: usize,
    bug_dir: Option<PathBuf>,
    meta: Meta,
    /// Edge delta of the most recent interesting case, stashed by the
    /// campaign driver after the coverage union and consumed by
    /// [`Telemetry::record_gain`] for operator attribution.
    pending_edges: AtomicU64,
    /// Set on worker children: the buffer the parent drains at join.
    buffer: Option<Arc<MemorySink>>,
}

/// The cheap, clonable telemetry handle threaded through campaign, engine
/// and DBMS layers. `Telemetry::disabled()` is the default everywhere; all
/// instrumentation methods early-return on it.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle: every instrument call is a single `None` check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Enabled with only the stage profiler — no sinks, no metrics, no
    /// heartbeat. Used by benches that want `stage_profile()` without the
    /// event-log overhead.
    pub fn profile_only() -> Self {
        TelemetryBuilder::new().build()
    }

    pub fn builder() -> TelemetryBuilder {
        TelemetryBuilder::new()
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. The closure runs only when telemetry is enabled, so
    /// callers can build `String`s inside it without cost on the fast path.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let ev = f();
            // Live counters and heartbeat are driven off the event stream so
            // the campaign hot loop has exactly one instrumentation call.
            match &ev {
                Event::ExecEnd { worker, ok, err, .. } => {
                    inner.live.record_exec(*worker, *ok, *err);
                    if let Some(hb) = &inner.heartbeat {
                        hb.tick(&inner.live);
                    }
                }
                Event::BugFound { .. } => inner.live.record_bug(),
                Event::LogicBugFound { .. } => inner.live.record_logic_bug(),
                Event::CaseAborted { .. } => inner.live.record_abort(),
                Event::RuleCoverageGain { edges, .. } => inner.live.add_rule_edges(*edges),
                _ => {}
            }
            inner.emit_now(&ev);
        }
    }

    /// Charge the wall time of `f` to `stage`. When disabled this is a bare
    /// call to `f` — no clock is read. When a trace collector or a metrics
    /// registry is attached, the same measurement also feeds the Chrome
    /// trace track for this worker and the `lego_exec_latency_us` histogram.
    #[inline]
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        match &self.inner {
            None => f(),
            Some(inner) => {
                let t0 = Instant::now();
                let out = f();
                let nanos = t0.elapsed().as_nanos() as u64;
                inner.stages.charge(stage, nanos);
                if let Some(tr) = &inner.trace {
                    tr.record(inner.worker, stage, t0, nanos);
                }
                if stage == Stage::Execution {
                    if let Some(m) = &inner.wall_metrics {
                        m.observe_histogram("lego_exec_latency_us", nanos / 1_000);
                    }
                }
                out
            }
        }
    }

    /// Stash the edge delta of the case that just gained coverage; consumed
    /// by the next [`record_gain`](Self::record_gain).
    pub fn set_pending_edges(&self, edges: u64) {
        if let Some(inner) = &self.inner {
            inner.pending_edges.store(edges, Ordering::Relaxed);
        }
    }

    /// Attribute the pending coverage gain to `op` and emit
    /// [`Event::CoverageGain`].
    pub fn record_gain(&self, op: MutOp) {
        if let Some(inner) = &self.inner {
            let edges = inner.pending_edges.swap(0, Ordering::Relaxed);
            inner.stages.record_gain(op, edges);
            let ev = Event::CoverageGain { op, edges };
            inner.emit_now(&ev);
        }
    }

    /// Publish the scheduler backlog (pending + synthesis queues) as a live
    /// gauge. Racy last-writer-wins across workers — a live view only.
    pub fn set_queue_depth(&self, depth: u64) {
        if let Some(inner) = &self.inner {
            inner.live.set_queued(depth);
            if let Some(m) = &inner.wall_metrics {
                m.set_gauge("lego_queue_depth", depth as f64);
            }
        }
    }

    /// Live progress from the campaign hot loop on an interesting case: the
    /// branch gauge is raised monotonically (parallel workers publish their
    /// local shard's edge count as a lower bound) and the corpus gauge is
    /// bumped by one retained seed.
    pub fn live_progress(&self, branches_lower_bound: u64) {
        if let Some(inner) = &self.inner {
            inner.live.raise_branches(branches_lower_bound);
            inner.live.bump_corpus();
        }
    }

    /// Update the live branch/corpus gauges (heartbeat + metrics).
    pub fn set_live_gauges(&self, branches: u64, corpus: u64) {
        if let Some(inner) = &self.inner {
            inner.live.set_branches(branches);
            inner.live.set_corpus(corpus);
            if let Some(m) = &inner.metrics {
                m.set_gauge("lego_branches", branches as f64);
                m.set_gauge("lego_corpus_size", corpus as f64);
            }
        }
    }

    /// Snapshot the stage profile, if enabled.
    pub fn stage_profile(&self) -> Option<StageProfile> {
        self.inner.as_ref().map(|i| i.stages.report())
    }

    /// The shared live counters, if enabled (for tests and status displays).
    pub fn live(&self) -> Option<&LiveCounters> {
        self.inner.as_ref().map(|i| &*i.live)
    }

    /// Clone of the shared live-counter handle, if enabled. The time-series
    /// recorder samples it from its own thread.
    pub fn live_arc(&self) -> Option<Arc<LiveCounters>> {
        self.inner.as_ref().map(|i| i.live.clone())
    }

    /// Metrics registry attached to this handle, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.inner.as_ref().and_then(|i| i.metrics.as_ref())
    }

    /// Chrome-trace span collector attached to this handle, if any.
    pub fn trace_collector(&self) -> Option<&Arc<TraceCollector>> {
        self.inner.as_ref().and_then(|i| i.trace.as_ref())
    }

    /// Flush all sinks and print a final heartbeat line.
    pub fn finish(&self) {
        if let Some(inner) = &self.inner {
            if let Some(hb) = &inner.heartbeat {
                hb.finish(&inner.live);
            }
            for s in &inner.sinks {
                s.flush();
            }
        }
    }

    /// Derive the telemetry handle for one parallel worker. The child shares
    /// the parent's live counters and heartbeat (live introspection must see
    /// all workers) but buffers its events in a private [`MemorySink`] so the
    /// parent can merge the streams deterministically at join. The child has
    /// its own stage accumulator and no metrics registry (aggregation
    /// happens once, at merge — no double counting).
    pub fn worker_child(&self, worker: usize) -> Telemetry {
        match &self.inner {
            None => Telemetry::disabled(),
            Some(inner) => {
                let buffer = Arc::new(MemorySink::new());
                Telemetry {
                    inner: Some(Arc::new(Inner {
                        sinks: vec![buffer.clone()],
                        live_sinks: inner.live_sinks.clone(),
                        metrics: None,
                        wall_metrics: inner.wall_metrics.clone(),
                        stages: StageAccum::default(),
                        live: inner.live.clone(),
                        heartbeat: inner.heartbeat.clone(),
                        trace: inner.trace.clone(),
                        worker,
                        bug_dir: None,
                        meta: inner.meta.clone(),
                        pending_edges: AtomicU64::new(0),
                        buffer: Some(buffer),
                    })),
                }
            }
        }
    }

    /// Merge a worker child back into this (parent) handle: replay its
    /// buffered events into the parent's sinks and metrics, and absorb its
    /// stage/operator accumulators. Call in worker-index order for a
    /// deterministic merged stream. Live counters are NOT replayed — the
    /// child updated the shared ones in real time.
    pub fn merge_worker(&self, child: &Telemetry) {
        let (Some(inner), Some(child_inner)) = (&self.inner, &child.inner) else {
            return;
        };
        if let Some(buffer) = &child_inner.buffer {
            for ev in buffer.drain() {
                inner.forward(&ev);
            }
        }
        inner.stages.absorb(&child_inner.stages);
    }

    /// Write a replayable bug artifact under `<bug_dir>/<dialect>/<hash>.sql`
    /// and return its path. No-op unless `bug_artifacts` was configured.
    /// `fuzzer`/`dialect` are per-call because one telemetry handle can
    /// serve many campaign cells (experiment grids); the seed comes from
    /// [`TelemetryBuilder::seed`] and is the base seed in grid runs
    /// (per-cell seeds derive deterministically from it).
    pub fn dump_bug_artifact(
        &self,
        fuzzer: &str,
        dialect: &str,
        identifier: &str,
        stack_hash: u64,
        reduced_sql: &str,
    ) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        let dir = inner.bug_dir.as_ref()?;
        let dialect = if dialect.is_empty() { "unknown" } else { dialect };
        let subdir = dir.join(dialect);
        std::fs::create_dir_all(&subdir).ok()?;
        let path = subdir.join(format!("{stack_hash:016x}.sql"));
        let mut body = String::with_capacity(reduced_sql.len() + 160);
        body.push_str("-- lego bug artifact\n");
        body.push_str(&format!("-- identifier: {identifier}\n"));
        body.push_str(&format!("-- dialect: {dialect}\n"));
        body.push_str(&format!("-- fuzzer: {fuzzer}\n"));
        body.push_str(&format!("-- seed: {:#x}\n", inner.meta.seed));
        body.push_str(&format!("-- stack_hash: {stack_hash:#018x}\n"));
        body.push_str(reduced_sql);
        if !reduced_sql.ends_with('\n') {
            body.push('\n');
        }
        std::fs::write(&path, body).ok()?;
        Some(path)
    }

    /// Write a replayable logic-bug artifact under
    /// `<bug_dir>/<dialect>/logic-<fingerprint>.sql` and return its path.
    /// The `logic-` prefix keeps wrong-result findings from colliding with
    /// crash artifacts (both key on a 64-bit hash). No-op unless
    /// `bug_artifacts` was configured.
    #[allow(clippy::too_many_arguments)]
    pub fn dump_logic_bug_artifact(
        &self,
        fuzzer: &str,
        dialect: &str,
        oracle: &str,
        fingerprint: u64,
        detail: &str,
        reduced_sql: &str,
    ) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        let dir = inner.bug_dir.as_ref()?;
        let dialect = if dialect.is_empty() { "unknown" } else { dialect };
        let subdir = dir.join(dialect);
        std::fs::create_dir_all(&subdir).ok()?;
        let path = subdir.join(format!("logic-{fingerprint:016x}.sql"));
        let mut body = String::with_capacity(reduced_sql.len() + 200);
        body.push_str("-- lego logic-bug artifact\n");
        body.push_str(&format!("-- oracle: {oracle}\n"));
        body.push_str(&format!("-- dialect: {dialect}\n"));
        body.push_str(&format!("-- fuzzer: {fuzzer}\n"));
        body.push_str(&format!("-- seed: {:#x}\n", inner.meta.seed));
        body.push_str(&format!("-- fingerprint: {fingerprint:#018x}\n"));
        for line in detail.lines() {
            body.push_str(&format!("-- {line}\n"));
        }
        body.push_str(reduced_sql);
        if !reduced_sql.ends_with('\n') {
            body.push('\n');
        }
        std::fs::write(&path, body).ok()?;
        Some(path)
    }
}

impl Inner {
    /// Route one event to sinks and metrics (no live/heartbeat side
    /// effects — used both for fresh emits and for the worker merge replay).
    /// Live sinks are deliberately excluded: they got the event in real
    /// time via [`emit_now`](Self::emit_now), so replaying the merge here
    /// would deliver it twice.
    fn forward(&self, ev: &Event) {
        for s in &self.sinks {
            s.emit(ev);
        }
        if let Some(m) = &self.metrics {
            m.observe_event(ev);
        }
    }

    /// Route a *freshly produced* event: real-time delivery to live sinks
    /// (SSE) plus the deterministic `forward` path.
    fn emit_now(&self, ev: &Event) {
        for s in &self.live_sinks {
            s.emit(ev);
        }
        self.forward(ev);
    }
}

/// Builder for an enabled [`Telemetry`] handle.
#[derive(Default)]
pub struct TelemetryBuilder {
    sinks: Vec<Arc<dyn EventSink>>,
    live_sinks: Vec<Arc<dyn EventSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<TraceCollector>>,
    heartbeat_workers: Option<usize>,
    bug_dir: Option<PathBuf>,
    meta: Meta,
}

impl TelemetryBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Log every event as one JSON object per line at `path`. Errors opening
    /// the file are returned so callers can report bad `--telemetry` paths.
    pub fn jsonl(mut self, path: &Path) -> std::io::Result<Self> {
        self.sinks.push(Arc::new(JsonlSink::create(path)?));
        Ok(self)
    }

    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attach a real-time sink (e.g. [`BroadcastSink`] for `/events` SSE).
    /// Shared with worker children and fed as events happen — a lossy live
    /// view outside the deterministic merge-replay path.
    pub fn live_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.live_sinks.push(sink);
        self
    }

    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Record per-stage Chrome-trace spans into `collector` (exported via
    /// [`TraceCollector::write_chrome_trace`] at end of campaign).
    pub fn trace(mut self, collector: Arc<TraceCollector>) -> Self {
        self.trace = Some(collector);
        self
    }

    /// Print a ~1 Hz status line to stderr while the campaign runs.
    pub fn heartbeat(mut self, workers: usize) -> Self {
        self.heartbeat_workers = Some(workers.max(1));
        self
    }

    /// Dump replayable artifacts for deduplicated bugs under `dir`.
    pub fn bug_artifacts(mut self, dir: PathBuf) -> Self {
        self.bug_dir = Some(dir);
        self
    }

    /// Stamp the campaign's base RNG seed into bug artifacts.
    pub fn seed(mut self, seed: u64) -> Self {
        self.meta = Meta { seed };
        self
    }

    pub fn build(self) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sinks: self.sinks,
                live_sinks: self.live_sinks,
                wall_metrics: self.metrics.clone(),
                metrics: self.metrics,
                stages: StageAccum::default(),
                live: Arc::new(LiveCounters::new()),
                heartbeat: self.heartbeat_workers.map(|w| Arc::new(Heartbeat::new(w))),
                trace: self.trace,
                worker: 0,
                bug_dir: self.bug_dir,
                meta: self.meta,
                pending_edges: AtomicU64::new(0),
                buffer: None,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_runs_the_closure() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.emit(|| panic!("closure must not run when disabled"));
        let v = tel.time(Stage::Execution, || 41 + 1);
        assert_eq!(v, 42);
        assert!(tel.stage_profile().is_none());
    }

    #[test]
    fn emit_routes_to_sinks_and_metrics_and_live() {
        let mem = Arc::new(MemorySink::new());
        let metrics = Arc::new(MetricsRegistry::new());
        let tel = Telemetry::builder().sink(mem.clone()).metrics(metrics.clone()).build();
        tel.emit(|| Event::ExecEnd {
            worker: 0,
            exec: 0,
            statements: 3,
            ok: 2,
            err: 1,
            new_coverage: true,
        });
        assert_eq!(mem.len(), 1);
        assert_eq!(metrics.counter("lego_execs_total"), 1);
        assert_eq!(tel.live().unwrap().execs(), 1);
    }

    #[test]
    fn record_gain_consumes_pending_edges() {
        let mem = Arc::new(MemorySink::new());
        let tel = Telemetry::builder().sink(mem.clone()).build();
        tel.set_pending_edges(9);
        tel.record_gain(MutOp::Insertion);
        tel.record_gain(MutOp::Insertion); // no pending edges left
        let evs = mem.drain();
        assert_eq!(
            evs,
            vec![
                Event::CoverageGain { op: MutOp::Insertion, edges: 9 },
                Event::CoverageGain { op: MutOp::Insertion, edges: 0 },
            ]
        );
        let prof = tel.stage_profile().unwrap();
        let ins = prof.operator_gains.iter().find(|g| g.op == "insertion").unwrap();
        assert_eq!((ins.cases_with_new_coverage, ins.edges_gained), (2, 9));
    }

    #[test]
    fn worker_children_buffer_and_merge_in_order() {
        let mem = Arc::new(MemorySink::new());
        let metrics = Arc::new(MetricsRegistry::new());
        let parent = Telemetry::builder().sink(mem.clone()).metrics(metrics.clone()).build();
        let c0 = parent.worker_child(0);
        let c1 = parent.worker_child(1);
        // Interleaved in wall time, merged in worker order.
        c1.emit(|| Event::WorkerSync { worker: 1, execs: 5 });
        c0.emit(|| Event::WorkerSync { worker: 0, execs: 5 });
        c0.emit(|| Event::ExecEnd {
            worker: 0,
            exec: 4,
            statements: 1,
            ok: 1,
            err: 0,
            new_coverage: false,
        });
        assert!(mem.is_empty(), "children must not write parent sinks directly");
        // Child exec already visible live (shared counters).
        assert_eq!(parent.live().unwrap().execs(), 1);
        parent.merge_worker(&c0);
        parent.merge_worker(&c1);
        let evs = mem.drain();
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0], Event::WorkerSync { worker: 0, .. }));
        assert!(matches!(evs[2], Event::WorkerSync { worker: 1, .. }));
        // Metrics aggregated exactly once, at merge.
        assert_eq!(metrics.counter("lego_execs_total"), 1);
        assert_eq!(metrics.counter("lego_worker_syncs_total"), 2);
    }

    #[test]
    fn bug_artifact_is_written_with_header() {
        let dir = std::env::temp_dir().join("lego_observe_bug_test");
        let _ = std::fs::remove_dir_all(&dir);
        let tel = Telemetry::builder().bug_artifacts(dir.clone()).seed(0x1e60).build();
        let path = tel
            .dump_bug_artifact(
                "lego",
                "sqlite",
                "assert: btree",
                0xdead_beef,
                "CREATE TABLE t(a);\nSELECT a FROM t;",
            )
            .expect("artifact path");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(path.starts_with(dir.join("sqlite")));
        assert!(text.starts_with("-- lego bug artifact\n"));
        assert!(text.contains("-- identifier: assert: btree"));
        assert!(text.contains("-- seed: 0x1e60"));
        assert!(text.ends_with("SELECT a FROM t;\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_only_times_stages() {
        let tel = Telemetry::profile_only();
        assert!(tel.enabled());
        tel.time(Stage::Generation, || std::hint::black_box(1 + 1));
        let prof = tel.stage_profile().unwrap();
        let gen = prof.stages.iter().find(|e| e.stage == "generation").unwrap();
        assert_eq!(gen.calls, 1);
    }
}
