//! Per-stage wall-clock profiling with scoped timers.
//!
//! The campaign driver and the engine both charge elapsed time to a
//! [`Stage`] through [`crate::Telemetry::time`]; the accumulators are plain
//! atomics, so worker threads charge concurrently without locks and the
//! parallel join sums per-worker accumulators in worker order. When
//! telemetry is disabled the timer call is a single branch around the
//! closure — no `Instant::now` is taken.

use crate::event::MutOp;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// The campaign pipeline stages whose wall time is profiled.
///
/// `Mutation` is charged from *inside* the engine while the driver is
/// charging `Generation` (scheduling + queue management + mutation +
/// instantiation), so `Mutation` is a nested subset of `Generation`;
/// the remaining stages are disjoint top-level slices of the loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// `FuzzEngine::next_case` — scheduling, mutation and instantiation.
    Generation,
    /// Engine-internal mutant construction (subset of `Generation`).
    Mutation,
    /// `Dbms::execute_case`.
    Execution,
    /// Merging per-case coverage into the global/shard map (+ worker sync).
    CoverageUnion,
    /// Crash dedup and delta-debugging reduction of new bugs.
    Dedup,
    /// `FuzzEngine::feedback` — affinity analysis and synthesis.
    Feedback,
    /// Logic-bug oracle checks (TLP / NoREC / differential replays) plus
    /// logic-bug reduction.
    Oracle,
    /// Recovery-oracle checks: WAL-attached prefix execution, crash
    /// simulation, log scan and replay.
    Recovery,
    /// Campaign snapshot serialization + checkpoint file I/O.
    Checkpoint,
    /// Static sequence analysis (`lego_sqlsema`) under `--sema`: binder
    /// verdicts plus the analyzer-vs-engine conformance comparison.
    Sema,
}

pub const STAGE_COUNT: usize = 10;

impl Stage {
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Generation,
        Stage::Mutation,
        Stage::Execution,
        Stage::CoverageUnion,
        Stage::Dedup,
        Stage::Feedback,
        Stage::Oracle,
        Stage::Recovery,
        Stage::Checkpoint,
        Stage::Sema,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Generation => "generation",
            Stage::Mutation => "mutation",
            Stage::Execution => "execution",
            Stage::CoverageUnion => "coverage_union",
            Stage::Dedup => "dedup",
            Stage::Feedback => "feedback",
            Stage::Oracle => "oracle",
            Stage::Recovery => "recovery",
            Stage::Checkpoint => "checkpoint",
            Stage::Sema => "sema",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Stage::Generation => 0,
            Stage::Mutation => 1,
            Stage::Execution => 2,
            Stage::CoverageUnion => 3,
            Stage::Dedup => 4,
            Stage::Feedback => 5,
            Stage::Oracle => 6,
            Stage::Recovery => 7,
            Stage::Checkpoint => 8,
            Stage::Sema => 9,
        }
    }

    /// Whether this stage is a disjoint top-level slice of the campaign
    /// loop (share percentages are computed over these only).
    fn top_level(self) -> bool {
        self != Stage::Mutation
    }
}

/// Lock-free per-stage accumulators (nanoseconds + call counts) plus the
/// per-operator coverage-gain attribution counters.
#[derive(Default)]
pub struct StageAccum {
    ns: [AtomicU64; STAGE_COUNT],
    calls: [AtomicU64; STAGE_COUNT],
    gain_cases: [AtomicU64; MutOp::ALL.len()],
    gain_edges: [AtomicU64; MutOp::ALL.len()],
}

impl StageAccum {
    pub fn charge(&self, stage: Stage, nanos: u64) {
        let i = stage.index();
        self.ns[i].fetch_add(nanos, Ordering::Relaxed);
        self.calls[i].fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_gain(&self, op: MutOp, edges: u64) {
        let i = op.index();
        self.gain_cases[i].fetch_add(1, Ordering::Relaxed);
        self.gain_edges[i].fetch_add(edges, Ordering::Relaxed);
    }

    /// Fold another accumulator into this one (parallel join).
    pub fn absorb(&self, other: &StageAccum) {
        for i in 0..STAGE_COUNT {
            self.ns[i].fetch_add(other.ns[i].load(Ordering::Relaxed), Ordering::Relaxed);
            self.calls[i].fetch_add(other.calls[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for i in 0..MutOp::ALL.len() {
            self.gain_cases[i]
                .fetch_add(other.gain_cases[i].load(Ordering::Relaxed), Ordering::Relaxed);
            self.gain_edges[i]
                .fetch_add(other.gain_edges[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Snapshot into the serializable report.
    pub fn report(&self) -> StageProfile {
        let top_total_ns: u64 = Stage::ALL
            .iter()
            .filter(|s| s.top_level())
            .map(|s| self.ns[s.index()].load(Ordering::Relaxed))
            .sum();
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let ns = self.ns[s.index()].load(Ordering::Relaxed);
                StageEntry {
                    stage: s.name().to_string(),
                    calls: self.calls[s.index()].load(Ordering::Relaxed),
                    total_ms: ns as f64 / 1e6,
                    share_pct: if top_total_ns == 0 {
                        0.0
                    } else {
                        ns as f64 * 100.0 / top_total_ns as f64
                    },
                }
            })
            .collect();
        let operator_gains = MutOp::ALL
            .iter()
            .map(|&op| OperatorGain {
                op: op.name().to_string(),
                cases_with_new_coverage: self.gain_cases[op.index()].load(Ordering::Relaxed),
                edges_gained: self.gain_edges[op.index()].load(Ordering::Relaxed),
            })
            .collect();
        StageProfile { stages, operator_gains }
    }
}

/// One profiled stage in the report.
#[derive(Clone, Debug, Serialize)]
pub struct StageEntry {
    pub stage: String,
    pub calls: u64,
    pub total_ms: f64,
    /// Share of the summed top-level stage time. `mutation` is a nested
    /// subset of `generation`, so shares exclude it from the denominator.
    pub share_pct: f64,
}

/// Per-operator attribution of coverage gains: which operator's cases
/// produced new edges, and how many.
#[derive(Clone, Debug, Serialize)]
pub struct OperatorGain {
    pub op: String,
    pub cases_with_new_coverage: u64,
    pub edges_gained: u64,
}

/// The wall-clock breakdown of one campaign, attached to `CampaignStats` as
/// the optional `stage_profile` section. Timing-bearing, so it is stripped
/// from `CampaignStats::deterministic_json`.
#[derive(Clone, Debug, Serialize)]
pub struct StageProfile {
    pub stages: Vec<StageEntry>,
    pub operator_gains: Vec<OperatorGain>,
}

impl StageProfile {
    /// The top-level stage with the largest share — "where did the time go".
    pub fn hottest_stage(&self) -> Option<&StageEntry> {
        self.stages
            .iter()
            .filter(|e| e.stage != "mutation")
            .max_by(|a, b| a.total_ms.total_cmp(&b.total_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_computed_over_top_level_stages() {
        let acc = StageAccum::default();
        acc.charge(Stage::Generation, 3_000_000);
        acc.charge(Stage::Mutation, 2_000_000); // nested in generation
        acc.charge(Stage::Execution, 7_000_000);
        let p = acc.report();
        let gen = p.stages.iter().find(|e| e.stage == "generation").unwrap();
        let exec = p.stages.iter().find(|e| e.stage == "execution").unwrap();
        assert!((gen.share_pct - 30.0).abs() < 1e-9, "{}", gen.share_pct);
        assert!((exec.share_pct - 70.0).abs() < 1e-9);
        assert_eq!(p.hottest_stage().unwrap().stage, "execution");
    }

    #[test]
    fn absorb_sums_worker_accumulators() {
        let a = StageAccum::default();
        let b = StageAccum::default();
        a.charge(Stage::Execution, 10);
        b.charge(Stage::Execution, 32);
        b.record_gain(MutOp::Deletion, 5);
        a.absorb(&b);
        let p = a.report();
        let exec = p.stages.iter().find(|e| e.stage == "execution").unwrap();
        assert_eq!(exec.calls, 2);
        let del = p.operator_gains.iter().find(|g| g.op == "deletion").unwrap();
        assert_eq!((del.cases_with_new_coverage, del.edges_gained), (1, 5));
    }
}
