//! Live campaign introspection: lock-free counters shared by all workers
//! plus a rate-limited (~1 Hz) terminal heartbeat line.
//!
//! The counters are *live* views for humans watching a run — they are never
//! read back into campaign results, so they can be racy-relaxed atomics
//! without threatening determinism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Upper bound on workers tracked individually by the heartbeat. Campaigns
/// with more workers still count correctly in aggregate; only the per-worker
/// lag display saturates.
pub const MAX_TRACKED_WORKERS: usize = 64;

/// Shared live counters. One instance serves the whole campaign (all worker
/// threads bump the same atomics).
pub struct LiveCounters {
    execs: AtomicU64,
    worker_execs: [AtomicU64; MAX_TRACKED_WORKERS],
    branches: AtomicU64,
    corpus: AtomicU64,
    queued: AtomicU64,
    stmts_ok: AtomicU64,
    stmts_err: AtomicU64,
    bugs: AtomicU64,
    logic_bugs: AtomicU64,
    cases_aborted: AtomicU64,
    rule_edges: AtomicU64,
}

impl Default for LiveCounters {
    fn default() -> Self {
        Self {
            execs: AtomicU64::new(0),
            worker_execs: std::array::from_fn(|_| AtomicU64::new(0)),
            branches: AtomicU64::new(0),
            corpus: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            stmts_ok: AtomicU64::new(0),
            stmts_err: AtomicU64::new(0),
            bugs: AtomicU64::new(0),
            logic_bugs: AtomicU64::new(0),
            cases_aborted: AtomicU64::new(0),
            rule_edges: AtomicU64::new(0),
        }
    }
}

impl LiveCounters {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_exec(&self, worker: usize, ok: u64, err: u64) {
        self.execs.fetch_add(1, Ordering::Relaxed);
        if worker < MAX_TRACKED_WORKERS {
            self.worker_execs[worker].fetch_add(1, Ordering::Relaxed);
        }
        self.stmts_ok.fetch_add(ok, Ordering::Relaxed);
        self.stmts_err.fetch_add(err, Ordering::Relaxed);
    }

    pub fn set_branches(&self, v: u64) {
        self.branches.store(v, Ordering::Relaxed);
    }

    /// Monotone branch update: parallel workers publish their local shard's
    /// edge count as a lower bound on the global total.
    pub fn raise_branches(&self, v: u64) {
        self.branches.fetch_max(v, Ordering::Relaxed);
    }

    pub fn set_corpus(&self, v: u64) {
        self.corpus.store(v, Ordering::Relaxed);
    }

    /// One more retained seed (parallel workers increment the shared total).
    pub fn bump_corpus(&self) {
        self.corpus.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bug(&self) {
        self.bugs.fetch_add(1, Ordering::Relaxed);
    }

    /// An oracle-flagged wrong-result (logic) bug was deduplicated.
    pub fn record_logic_bug(&self) {
        self.logic_bugs.fetch_add(1, Ordering::Relaxed);
    }

    /// A per-case execution budget tripped and the case was killed.
    pub fn record_abort(&self) {
        self.cases_aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// New grammar-rule edges covered (`--rule-cov` campaigns; workers add
    /// their per-case deltas to the shared total).
    pub fn add_rule_edges(&self, v: u64) {
        self.rule_edges.fetch_add(v, Ordering::Relaxed);
    }

    /// Scheduler backlog gauge: pending + synthesis queue entries.
    pub fn set_queued(&self, v: u64) {
        self.queued.store(v, Ordering::Relaxed);
    }

    pub fn execs(&self) -> u64 {
        self.execs.load(Ordering::Relaxed)
    }

    pub fn branches(&self) -> u64 {
        self.branches.load(Ordering::Relaxed)
    }

    pub fn corpus(&self) -> u64 {
        self.corpus.load(Ordering::Relaxed)
    }

    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    pub fn bugs(&self) -> u64 {
        self.bugs.load(Ordering::Relaxed)
    }

    pub fn logic_bugs(&self) -> u64 {
        self.logic_bugs.load(Ordering::Relaxed)
    }

    pub fn cases_aborted(&self) -> u64 {
        self.cases_aborted.load(Ordering::Relaxed)
    }

    pub fn rule_edges(&self) -> u64 {
        self.rule_edges.load(Ordering::Relaxed)
    }

    pub fn stmts_ok(&self) -> u64 {
        self.stmts_ok.load(Ordering::Relaxed)
    }

    pub fn stmts_err(&self) -> u64 {
        self.stmts_err.load(Ordering::Relaxed)
    }

    /// Binder validity ratio in percent (accepted / attempted statements).
    pub fn validity_pct(&self) -> f64 {
        let ok = self.stmts_ok.load(Ordering::Relaxed);
        let err = self.stmts_err.load(Ordering::Relaxed);
        let total = ok + err;
        if total == 0 {
            100.0
        } else {
            ok as f64 * 100.0 / total as f64
        }
    }

    /// Per-worker exec counts for the first `workers` tracked slots.
    pub fn worker_execs(&self, workers: usize) -> Vec<u64> {
        (0..workers.min(MAX_TRACKED_WORKERS))
            .map(|w| self.worker_execs[w].load(Ordering::Relaxed))
            .collect()
    }

    /// Max-behind-leader lag across the first `workers` slots (the sync
    /// imbalance signal for parallel campaigns).
    pub fn worker_lag(&self, workers: usize) -> u64 {
        let counts = self.worker_execs(workers);
        match (counts.iter().max(), counts.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }
}

/// Rate-limited stderr heartbeat. `tick` is called from the campaign hot
/// loop; it is a single atomic compare-exchange except roughly once per
/// second, when the winning thread formats and prints one status line.
pub struct Heartbeat {
    start: Instant,
    /// Milliseconds since `start` at which the last line was printed.
    last_ms: AtomicU64,
    interval_ms: u64,
    workers: usize,
}

impl Heartbeat {
    pub fn new(workers: usize) -> Self {
        Self::with_interval(workers, 1000)
    }

    pub fn with_interval(workers: usize, interval_ms: u64) -> Self {
        Self { start: Instant::now(), last_ms: AtomicU64::new(0), interval_ms, workers }
    }

    /// Maybe print a heartbeat line. Cheap when it is not yet time.
    pub fn tick(&self, live: &LiveCounters) {
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < self.interval_ms {
            return;
        }
        // One thread wins the right to print this interval.
        if self
            .last_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        eprintln!("{}", self.format_line(live, now_ms));
    }

    /// Print one final line regardless of the rate limit (end of campaign).
    pub fn finish(&self, live: &LiveCounters) {
        let now_ms = self.start.elapsed().as_millis() as u64;
        eprintln!("{}", self.format_line(live, now_ms));
    }

    fn format_line(&self, live: &LiveCounters, now_ms: u64) -> String {
        let secs = (now_ms as f64 / 1000.0).max(1e-3);
        let execs = live.execs();
        let mut line = format!(
            "[lego {:>6.1}s] execs {:>8} ({:>7.1}/s) | branches {:>6} | corpus {:>5} | validity {:>5.1}% | bugs {} | logic {} | aborted {}",
            now_ms as f64 / 1000.0,
            execs,
            execs as f64 / secs,
            live.branches(),
            live.corpus.load(Ordering::Relaxed),
            live.validity_pct(),
            live.bugs(),
            live.logic_bugs(),
            live.cases_aborted(),
        );
        if self.workers > 1 {
            line.push_str(&format!(
                " | workers {} lag {}",
                self.workers,
                live.worker_lag(self.workers)
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_counters_track_validity_and_lag() {
        let live = LiveCounters::new();
        live.record_exec(0, 9, 1);
        live.record_exec(1, 5, 5);
        live.record_exec(0, 6, 4);
        assert_eq!(live.execs(), 3);
        assert!((live.validity_pct() - (20.0 * 100.0 / 30.0)).abs() < 1e-9);
        assert_eq!(live.worker_execs(2), vec![2, 1]);
        assert_eq!(live.worker_lag(2), 1);
    }

    #[test]
    fn untracked_worker_still_counts_in_aggregate() {
        let live = LiveCounters::new();
        live.record_exec(MAX_TRACKED_WORKERS + 3, 1, 0);
        assert_eq!(live.execs(), 1);
        assert_eq!(live.worker_lag(2), 0);
    }

    #[test]
    fn heartbeat_line_mentions_key_fields() {
        let live = LiveCounters::new();
        live.record_exec(0, 3, 1);
        live.set_branches(17);
        live.set_corpus(4);
        live.record_logic_bug();
        live.record_abort();
        live.record_abort();
        let hb = Heartbeat::with_interval(2, 1000);
        let line = hb.format_line(&live, 2000);
        assert!(line.contains("execs"), "{line}");
        assert!(line.contains("branches     17"), "{line}");
        assert!(line.contains("validity"), "{line}");
        assert!(line.contains("logic 1"), "{line}");
        assert!(line.contains("aborted 2"), "{line}");
        assert!(line.contains("lag"), "{line}");
    }

    #[test]
    fn tick_rate_limits() {
        let live = LiveCounters::new();
        // Huge interval: tick must not print (we can't capture stderr easily,
        // but we can check the CAS state stays untouched).
        let hb = Heartbeat::with_interval(1, u64::MAX);
        hb.tick(&live);
        assert_eq!(hb.last_ms.load(Ordering::Relaxed), 0);
    }
}
