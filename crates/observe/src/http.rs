//! Embedded monitoring HTTP server.
//!
//! A dependency-light blocking server on `std::net::TcpListener` — one
//! background accept thread (non-blocking accept + stop-flag polling), one
//! detached thread per connection, no async runtime. It is a *read-only
//! observer*: every handler reads racy-relaxed live counters, the metrics
//! registry, or the broadcast sink; none of them can touch campaign state,
//! so serving cannot perturb determinism. A panic in any server thread is
//! confined to that thread — the campaign never joins it on the hot path.
//!
//! Endpoints:
//!
//! | Path       | Content                                                |
//! |------------|--------------------------------------------------------|
//! | `/metrics` | Prometheus text exposition (the metrics registry)      |
//! | `/status`  | JSON snapshot: live counters, stage profile, config    |
//! | `/events`  | Server-sent-events tail of the live event stream       |
//! | `/healthz` | `ok` (liveness probe)                                  |

use crate::sink::BroadcastSink;
use crate::Telemetry;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Static campaign facts echoed in `/status` under `"config"`.
#[derive(Clone, Debug, Default)]
pub struct MonitorConfig {
    pub run_name: String,
    pub workers: usize,
    pub seed: u64,
    /// Free-form extra key/value pairs (dialect, budget, oracles, ...).
    pub extra: Vec<(String, String)>,
}

impl MonitorConfig {
    fn json(&self) -> String {
        let mut out = String::from("{\"run\":");
        serde::write_json_string(&self.run_name, &mut out);
        out.push_str(&format!(",\"workers\":{},\"seed\":{}", self.workers, self.seed));
        for (k, v) in &self.extra {
            out.push(',');
            serde::write_json_string(k, &mut out);
            out.push(':');
            serde::write_json_string(v, &mut out);
        }
        out.push('}');
        out
    }
}

struct ServerShared {
    telemetry: Telemetry,
    broadcast: Option<Arc<BroadcastSink>>,
    config: MonitorConfig,
    started: Instant,
    stop: AtomicBool,
}

/// The running server. Keep it alive for the duration of the campaign and
/// call [`shutdown`](Self::shutdown) (or drop it) afterwards.
pub struct MonitorServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl MonitorServer {
    /// Bind `addr` (e.g. `127.0.0.1:9100`, or port 0 for an OS-assigned
    /// port — read it back via [`local_addr`](Self::local_addr)) and start
    /// serving in a background thread.
    pub fn bind(
        addr: &str,
        telemetry: Telemetry,
        broadcast: Option<Arc<BroadcastSink>>,
        config: MonitorConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            telemetry,
            broadcast,
            config,
            started: Instant::now(),
            stop: AtomicBool::new(false),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("lego-monitor".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Self { shared, addr: local, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and wind down handler threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = shared.clone();
                // Detached: a slow or panicking handler affects only its own
                // connection, and exits on its own once the stop flag is set
                // or the client goes away.
                let _ = std::thread::Builder::new()
                    .name("lego-monitor-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Read the request head (up to 8 KiB) and return the path of a GET, or
/// `None` for anything we don't serve.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = [0u8; 8192];
    let mut len = 0;
    loop {
        let n = stream.read(&mut buf[len..]).ok()?;
        if n == 0 {
            return None;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..len]).ok()?;
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string: /status?pretty → /status.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nAccess-Control-Allow-Origin: *\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream, shared: Arc<ServerShared>) {
    let Some(path) = read_request_path(&mut stream) else {
        write_response(&mut stream, "400 Bad Request", "text/plain", "bad request\n");
        return;
    };
    match path.as_str() {
        "/healthz" => write_response(&mut stream, "200 OK", "text/plain", "ok\n"),
        "/metrics" => {
            let body = shared
                .telemetry
                .metrics()
                .map(|m| m.prometheus_text())
                .unwrap_or_else(|| "# metrics registry not attached\n".to_string());
            write_response(&mut stream, "200 OK", "text/plain; version=0.0.4", &body);
        }
        "/status" => {
            let body = status_json(&shared);
            write_response(&mut stream, "200 OK", "application/json", &body);
        }
        "/events" => serve_events(stream, &shared),
        _ => write_response(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Build the `/status` snapshot. Shape (stable, asserted by tests):
/// `{"config":{...},"uptime_s":..,"live":{...},"worker_execs":[..],
///   "stage_profile":{...}|null}`.
fn status_json(shared: &ServerShared) -> String {
    let mut out = String::from("{\"config\":");
    out.push_str(&shared.config.json());
    out.push_str(&format!(",\"uptime_s\":{:.3}", shared.started.elapsed().as_secs_f64()));
    out.push_str(",\"live\":{");
    match shared.telemetry.live() {
        Some(live) => {
            out.push_str(&format!(
                "\"execs\":{},\"branches\":{},\"corpus\":{},\"queued\":{},\
                 \"stmts_ok\":{},\"stmts_err\":{},\"validity_pct\":{:.2},\
                 \"bugs\":{},\"logic_bugs\":{},\"cases_aborted\":{}",
                live.execs(),
                live.branches(),
                live.corpus(),
                live.queued(),
                live.stmts_ok(),
                live.stmts_err(),
                live.validity_pct(),
                live.bugs(),
                live.logic_bugs(),
                live.cases_aborted(),
            ));
        }
        None => out.push_str("\"execs\":0"),
    }
    out.push_str("},\"worker_execs\":[");
    if let Some(live) = shared.telemetry.live() {
        let counts = live.worker_execs(shared.config.workers.max(1));
        for (i, c) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
    }
    out.push_str("],\"stage_profile\":");
    match shared.telemetry.stage_profile() {
        Some(profile) => profile.serialize_json(&mut out),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Frame one payload as a server-sent event. Multi-line payloads become
/// multiple `data:` lines of the same event, per the SSE spec.
pub fn sse_frame(payload: &str) -> String {
    let mut out = String::with_capacity(payload.len() + 16);
    for line in payload.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

fn serve_events(mut stream: TcpStream, shared: &ServerShared) {
    let Some(broadcast) = &shared.broadcast else {
        write_response(&mut stream, "404 Not Found", "text/plain", "no event stream\n");
        return;
    };
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\nAccess-Control-Allow-Origin: *\r\n\
                Connection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let rx = broadcast.subscribe();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match rx.recv_timeout(Duration::from_millis(500)) {
            Ok(ev) => {
                if stream.write_all(sse_frame(&ev.to_json()).as_bytes()).is_err()
                    || stream.flush().is_err()
                {
                    return; // client went away; subscriber is pruned on next emit
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Keepalive comment: detects dead clients between events.
                if stream.write_all(b": keepalive\n\n").is_err() || stream.flush().is_err() {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::MetricsRegistry;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn test_server(broadcast: Option<Arc<BroadcastSink>>) -> (MonitorServer, Telemetry) {
        let metrics = Arc::new(MetricsRegistry::new());
        let mut builder = Telemetry::builder().metrics(metrics);
        if let Some(b) = &broadcast {
            builder = builder.live_sink(b.clone());
        }
        let tel = builder.build();
        let config = MonitorConfig {
            run_name: "unit".into(),
            workers: 2,
            seed: 7,
            extra: vec![("dialect".into(), "sqlite".into())],
        };
        let server = MonitorServer::bind("127.0.0.1:0", tel.clone(), broadcast, config).unwrap();
        (server, tel)
    }

    #[test]
    fn serves_healthz_metrics_status_and_404() {
        let (mut server, tel) = test_server(None);
        let addr = server.local_addr();
        tel.emit(|| Event::ExecEnd {
            worker: 0,
            exec: 0,
            statements: 4,
            ok: 3,
            err: 1,
            new_coverage: false,
        });

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"));

        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("lego_execs_total 1"), "{metrics}");
        assert!(metrics.contains("# TYPE lego_execs_total counter"), "{metrics}");

        let status = get(addr, "/status?pretty");
        assert!(status.contains("application/json"), "{status}");
        assert!(status.contains("\"run\":\"unit\""), "{status}");
        assert!(status.contains("\"dialect\":\"sqlite\""), "{status}");
        assert!(status.contains("\"execs\":1"), "{status}");
        assert!(status.contains("\"stage_profile\":"), "{status}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }

    #[test]
    fn sse_framing_follows_the_spec() {
        assert_eq!(sse_frame("{\"a\":1}"), "data: {\"a\":1}\n\n");
        // Multi-line payloads become multiple data: lines of ONE event.
        assert_eq!(sse_frame("line1\nline2"), "data: line1\ndata: line2\n\n");
        assert_eq!(sse_frame(""), "data: \n\n");
    }

    #[test]
    fn events_endpoint_streams_broadcast_events() {
        let broadcast = Arc::new(BroadcastSink::new());
        let (mut server, tel) = test_server(Some(broadcast));
        let addr = server.local_addr();

        tel.emit(|| Event::ExecStart { worker: 0, exec: 0 });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut got = String::new();
        let mut buf = [0u8; 4096];
        // Read until the replayed event arrives framed as SSE.
        while !got.contains("\n\n") || !got.contains("data: ") {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "stream closed early: {got}");
            got.push_str(std::str::from_utf8(&buf[..n]).unwrap());
        }
        assert!(got.contains("text/event-stream"), "{got}");
        assert!(got.contains("data: {\"type\":\"ExecStart\""), "{got}");
        drop(stream);
        server.shutdown();
    }
}
