//! The typed event taxonomy of a fuzzing campaign.
//!
//! Events are deliberately *wall-clock free*: they carry only logical time
//! (execution indexes, statement counts, edge totals), so an event stream is
//! a deterministic function of the engine seed and worker count and two runs
//! at the same seed produce byte-identical JSONL. Timing lives in the
//! [stage profiler](crate::profile) and the metrics registry instead.

/// Which mutation/generation operator produced a test case. The campaign
/// attributes coverage gains to the operator of the case that earned them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutOp {
    /// Built-in or reloaded seed corpus entry.
    Seed,
    /// Algorithm 1 substitution (type at position i replaced).
    Substitution,
    /// Algorithm 1 insertion (new statement spliced after position i).
    Insertion,
    /// Algorithm 1 deletion (statement at position i removed).
    Deletion,
    /// Conventional within-statement (syntax-preserving) mutation.
    Conventional,
    /// Algorithm 3 synthesized-and-instantiated sequence.
    Synthesis,
}

impl MutOp {
    pub const ALL: [MutOp; 6] = [
        MutOp::Seed,
        MutOp::Substitution,
        MutOp::Insertion,
        MutOp::Deletion,
        MutOp::Conventional,
        MutOp::Synthesis,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MutOp::Seed => "seed",
            MutOp::Substitution => "substitution",
            MutOp::Insertion => "insertion",
            MutOp::Deletion => "deletion",
            MutOp::Conventional => "conventional",
            MutOp::Synthesis => "synthesis",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            MutOp::Seed => 0,
            MutOp::Substitution => 1,
            MutOp::Insertion => 2,
            MutOp::Deletion => 3,
            MutOp::Conventional => 4,
            MutOp::Synthesis => 5,
        }
    }
}

/// One telemetry event. Emitted from the campaign driver (`ExecStart`,
/// `ExecEnd`, `CoverageGain`, `BugFound`, `WorkerSync`) and from inside the
/// LEGO engine (`MutationApplied`, `AffinityDiscovered`, `SynthesisStep`).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A test case is about to execute.
    ExecStart { worker: usize, exec: u64 },
    /// A test case finished. `ok`/`err` are the binder's accept/reject
    /// statement counts (the validity signal).
    ExecEnd { worker: usize, exec: u64, statements: u64, ok: u64, err: u64, new_coverage: bool },
    /// The engine produced a mutant with the given operator.
    MutationApplied { op: MutOp },
    /// Algorithm 2 discovered a new type-affinity `t1 -> t2`.
    AffinityDiscovered { t1: String, t2: String },
    /// Algorithm 3 ran for one new affinity.
    SynthesisStep { t1: String, t2: String, sequences: u64, instantiated: u64 },
    /// A case covered new branches; attributed to its producing operator.
    CoverageGain { op: MutOp, edges: u64 },
    /// A case traversed grammar-rule edges never seen before (`--rule-cov`
    /// campaigns only). `edges` is the number of newly covered rule→rule
    /// edges, minimum 1 (hit-count bucket novelty with no new index).
    RuleCoverageGain { worker: usize, exec: u64, edges: u64 },
    /// A deduplicated bug was recorded.
    BugFound { worker: usize, exec: u64, identifier: String, stack_hash: u64 },
    /// A correctness oracle (TLP / NoREC / differential) flagged a
    /// deduplicated wrong-result bug.
    LogicBugFound { worker: usize, exec: u64, oracle: String, fingerprint: u64 },
    /// The recovery oracle flagged a deduplicated durability bug (WAL
    /// replay divergence after a simulated crash).
    DurabilityBugFound { worker: usize, exec: u64, fingerprint: u64 },
    /// A per-case execution budget tripped and the case was killed (the
    /// deterministic analogue of an AFL timeout kill).
    CaseAborted { worker: usize, exec: u64, reason: String },
    /// A worker thread died mid-campaign (engine panic outside the per-case
    /// isolation boundary); the supervisor merged the surviving shards.
    WorkerDied { worker: usize, error: String },
    /// A worker flushed its local coverage shard into the shared map.
    WorkerSync { worker: usize, execs: u64 },
    /// A campaign checkpoint was persisted to disk.
    CheckpointWritten { worker: usize, seq: u64, units: u64, path: String },
    /// The static analyzer classified a case (`--sema` campaigns only).
    /// `rejects` counts provably-failing statements; `skipped` is true when
    /// the campaign skipped engine execution because of them.
    SemaVerdict { worker: usize, exec: u64, statements: u64, rejects: u64, skipped: bool },
    /// The conformance oracle flagged a deduplicated analyzer-vs-engine
    /// disagreement (analyzer-accept but engine-error, or the reverse).
    SemaDivergenceFound { worker: usize, exec: u64, fingerprint: u64 },
}

impl Event {
    /// Stable discriminant name (the JSONL `type` field).
    pub fn type_name(&self) -> &'static str {
        match self {
            Event::ExecStart { .. } => "ExecStart",
            Event::ExecEnd { .. } => "ExecEnd",
            Event::MutationApplied { .. } => "MutationApplied",
            Event::AffinityDiscovered { .. } => "AffinityDiscovered",
            Event::SynthesisStep { .. } => "SynthesisStep",
            Event::CoverageGain { .. } => "CoverageGain",
            Event::RuleCoverageGain { .. } => "RuleCoverageGain",
            Event::BugFound { .. } => "BugFound",
            Event::LogicBugFound { .. } => "LogicBugFound",
            Event::DurabilityBugFound { .. } => "DurabilityBugFound",
            Event::CaseAborted { .. } => "CaseAborted",
            Event::WorkerDied { .. } => "WorkerDied",
            Event::WorkerSync { .. } => "WorkerSync",
            Event::CheckpointWritten { .. } => "CheckpointWritten",
            Event::SemaVerdict { .. } => "SemaVerdict",
            Event::SemaDivergenceFound { .. } => "SemaDivergenceFound",
        }
    }

    /// One JSON object (no trailing newline). Hand-rolled because the
    /// vendored serde derive does not handle struct enum variants; field
    /// order is fixed so the output is stable.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"type\":\"");
        s.push_str(self.type_name());
        s.push('"');
        match self {
            Event::ExecStart { worker, exec } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
            }
            Event::ExecEnd { worker, exec, statements, ok, err, new_coverage } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
                push_num(&mut s, "statements", *statements);
                push_num(&mut s, "ok", *ok);
                push_num(&mut s, "err", *err);
                s.push_str(",\"new_coverage\":");
                s.push_str(if *new_coverage { "true" } else { "false" });
            }
            Event::MutationApplied { op } => push_str(&mut s, "op", op.name()),
            Event::AffinityDiscovered { t1, t2 } => {
                push_str(&mut s, "t1", t1);
                push_str(&mut s, "t2", t2);
            }
            Event::SynthesisStep { t1, t2, sequences, instantiated } => {
                push_str(&mut s, "t1", t1);
                push_str(&mut s, "t2", t2);
                push_num(&mut s, "sequences", *sequences);
                push_num(&mut s, "instantiated", *instantiated);
            }
            Event::CoverageGain { op, edges } => {
                push_str(&mut s, "op", op.name());
                push_num(&mut s, "edges", *edges);
            }
            Event::RuleCoverageGain { worker, exec, edges } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
                push_num(&mut s, "edges", *edges);
            }
            Event::BugFound { worker, exec, identifier, stack_hash } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
                push_str(&mut s, "identifier", identifier);
                push_num(&mut s, "stack_hash", *stack_hash);
            }
            Event::LogicBugFound { worker, exec, oracle, fingerprint } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
                push_str(&mut s, "oracle", oracle);
                push_num(&mut s, "fingerprint", *fingerprint);
            }
            Event::DurabilityBugFound { worker, exec, fingerprint } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
                push_num(&mut s, "fingerprint", *fingerprint);
            }
            Event::CaseAborted { worker, exec, reason } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
                push_str(&mut s, "reason", reason);
            }
            Event::WorkerDied { worker, error } => {
                push_num(&mut s, "worker", *worker as u64);
                push_str(&mut s, "error", error);
            }
            Event::WorkerSync { worker, execs } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "execs", *execs);
            }
            Event::CheckpointWritten { worker, seq, units, path } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "seq", *seq);
                push_num(&mut s, "units", *units);
                push_str(&mut s, "path", path);
            }
            Event::SemaVerdict { worker, exec, statements, rejects, skipped } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
                push_num(&mut s, "statements", *statements);
                push_num(&mut s, "rejects", *rejects);
                s.push_str(",\"skipped\":");
                s.push_str(if *skipped { "true" } else { "false" });
            }
            Event::SemaDivergenceFound { worker, exec, fingerprint } => {
                push_num(&mut s, "worker", *worker as u64);
                push_num(&mut s, "exec", *exec);
                push_num(&mut s, "fingerprint", *fingerprint);
            }
        }
        s.push('}');
        s
    }
}

fn push_num(s: &mut String, key: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

fn push_str(s: &mut String, key: &str, v: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    serde::write_json_string(v, s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_to_single_line_json() {
        let ev =
            Event::ExecEnd { worker: 1, exec: 7, statements: 5, ok: 4, err: 1, new_coverage: true };
        let json = ev.to_json();
        assert_eq!(
            json,
            "{\"type\":\"ExecEnd\",\"worker\":1,\"exec\":7,\"statements\":5,\"ok\":4,\"err\":1,\"new_coverage\":true}"
        );
        assert!(!json.contains('\n'));
    }

    #[test]
    fn string_fields_are_escaped() {
        let ev = Event::AffinityDiscovered { t1: "CREATE \"T\"".into(), t2: "SELECT".into() };
        assert!(ev.to_json().contains("\\\"T\\\""));
    }

    #[test]
    fn every_op_has_a_distinct_index_and_name() {
        let mut names: Vec<&str> = MutOp::ALL.iter().map(|o| o.name()).collect();
        let mut idx: Vec<usize> = MutOp::ALL.iter().map(|o| o.index()).collect();
        names.sort_unstable();
        names.dedup();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(names.len(), MutOp::ALL.len());
        assert_eq!(idx, (0..MutOp::ALL.len()).collect::<Vec<_>>());
    }
}
