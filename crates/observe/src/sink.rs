//! Pluggable event sinks.
//!
//! A sink receives every emitted [`Event`] behind a shared reference, so
//! implementations synchronize internally (one `Mutex` per sink; the hot
//! path never takes a lock when telemetry is disabled — see
//! [`crate::Telemetry`]). Sink locks are poison-tolerant: a panic inside
//! one observer thread must never take the campaign's telemetry down.

use crate::event::Event;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Mutex, MutexGuard};

/// Where events go. `emit` must be cheap and must never panic the campaign:
/// I/O errors are swallowed after the first failure.
pub trait EventSink: Send + Sync {
    fn emit(&self, ev: &Event);
    /// Flush any buffered output (end of campaign).
    fn flush(&self) {}
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The disabled sink: does nothing. A campaign built with only `NoopSink`
/// behaves exactly like one with telemetry off; the campaign hot path
/// short-circuits before even constructing events (zero-cost guarantee).
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline]
    fn emit(&self, _ev: &Event) {}
}

/// Default size cap for [`JsonlSink`] rotation: 256 MiB per generation.
pub const DEFAULT_JSONL_CAP_BYTES: u64 = 256 * 1024 * 1024;

struct JsonlState {
    out: Option<BufWriter<File>>,
    /// Bytes written to the current generation.
    written: u64,
}

/// Append-only JSONL event log: one `Event::to_json` object per line, with
/// size-capped single-generation rotation so week-long campaigns do not
/// grow an unbounded log. When the active file would exceed the cap it is
/// renamed `events.jsonl` → `events.1.jsonl` (overwriting any previous
/// rotation) and a fresh file is started.
pub struct JsonlSink {
    path: PathBuf,
    cap: u64,
    state: Mutex<JsonlState>,
}

impl JsonlSink {
    /// Create (truncate) the log file with the default rotation cap.
    /// Parent directories are created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::create_with_cap(path, DEFAULT_JSONL_CAP_BYTES)
    }

    /// Create (truncate) the log file, rotating once it would exceed
    /// `cap_bytes`. A cap of 0 disables rotation.
    pub fn create_with_cap(path: &Path, cap_bytes: u64) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            cap: cap_bytes,
            state: Mutex::new(JsonlState { out: Some(BufWriter::new(file)), written: 0 }),
        })
    }

    /// The path the rotated-out generation is moved to:
    /// `events.jsonl` → `events.1.jsonl`.
    pub fn rotated_path(path: &Path) -> PathBuf {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("events");
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) => path.with_file_name(format!("{stem}.1.{ext}")),
            None => path.with_file_name(format!("{stem}.1")),
        }
    }

    fn rotate(&self, state: &mut JsonlState) {
        if let Some(w) = state.out.as_mut() {
            let _ = w.flush();
        }
        state.out = None; // close before rename
        let rotated = Self::rotated_path(&self.path);
        if std::fs::rename(&self.path, &rotated).is_err() {
            // Rename failed (e.g. cross-device edge case): keep appending to
            // the oversized file rather than losing events.
            match std::fs::OpenOptions::new().append(true).open(&self.path) {
                Ok(f) => state.out = Some(BufWriter::new(f)),
                Err(_) => return,
            }
            return;
        }
        // On disk trouble the log is simply dropped; fuzzing continues.
        if let Ok(f) = File::create(&self.path) {
            state.out = Some(BufWriter::new(f));
            state.written = 0;
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, ev: &Event) {
        let mut state = relock(&self.state);
        if state.out.is_none() {
            return;
        }
        let mut line = ev.to_json();
        line.push('\n');
        if self.cap > 0 && state.written + line.len() as u64 > self.cap && state.written > 0 {
            self.rotate(&mut state);
        }
        if let Some(w) = state.out.as_mut() {
            if w.write_all(line.as_bytes()).is_err() {
                // Disk trouble must not kill a long campaign: drop the writer
                // and keep fuzzing without the event log.
                state.out = None;
            } else {
                state.written += line.len() as u64;
            }
        }
    }

    fn flush(&self) {
        let mut state = relock(&self.state);
        if let Some(w) = state.out.as_mut() {
            let _ = w.flush();
        }
    }
}

/// In-memory sink: buffers events for later inspection (tests) or for the
/// deterministic per-worker merge of the parallel campaign path.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Take all buffered events, leaving the sink empty.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut relock(&self.events))
    }

    /// Copy of the buffered events.
    pub fn snapshot(&self) -> Vec<Event> {
        relock(&self.events).clone()
    }

    pub fn len(&self) -> usize {
        relock(&self.events).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, ev: &Event) {
        relock(&self.events).push(ev.clone());
    }
}

/// Replay backlog kept for late subscribers: the last N events.
const BROADCAST_REPLAY: usize = 256;

/// Per-subscriber channel depth. Slow consumers lose events (lossy live
/// view) rather than back-pressuring the campaign.
const BROADCAST_DEPTH: usize = 1024;

struct BroadcastState {
    subscribers: Vec<SyncSender<Event>>,
    replay: VecDeque<Event>,
}

/// Fan-out sink feeding live subscribers (the `/events` SSE handlers).
///
/// Delivery is best-effort: a subscriber whose channel is full has that
/// event dropped, and a disconnected subscriber is pruned on the next emit.
/// The campaign thread never blocks on a slow or dead HTTP client, and the
/// sink is explicitly a *live lossy view* — the deterministic record is the
/// JSONL log / merge replay, never this stream.
#[derive(Default)]
pub struct BroadcastSink {
    state: Mutex<BroadcastState>,
}

impl Default for BroadcastState {
    fn default() -> Self {
        Self { subscribers: Vec::new(), replay: VecDeque::with_capacity(BROADCAST_REPLAY) }
    }
}

impl BroadcastSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new subscriber. The receiver is primed with the replay
    /// backlog (up to the channel depth) so a freshly attached client sees
    /// recent history immediately.
    pub fn subscribe(&self) -> Receiver<Event> {
        let (tx, rx) = std::sync::mpsc::sync_channel(BROADCAST_DEPTH);
        let mut state = relock(&self.state);
        for ev in state.replay.iter() {
            if tx.try_send(ev.clone()).is_err() {
                break;
            }
        }
        state.subscribers.push(tx);
        rx
    }

    pub fn subscriber_count(&self) -> usize {
        relock(&self.state).subscribers.len()
    }
}

impl EventSink for BroadcastSink {
    fn emit(&self, ev: &Event) {
        let mut state = relock(&self.state);
        if state.replay.len() == BROADCAST_REPLAY {
            state.replay.pop_front();
        }
        state.replay.push_back(ev.clone());
        state.subscribers.retain(|tx| match tx.try_send(ev.clone()) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => true, // drop event, keep subscriber
            Err(TrySendError::Disconnected(_)) => false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        sink.emit(&Event::ExecStart { worker: 0, exec: 0 });
        sink.emit(&Event::WorkerSync { worker: 0, execs: 1 });
        assert_eq!(sink.len(), 2);
        let evs = sink.drain();
        assert_eq!(evs.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let path = std::env::temp_dir().join("lego_observe_sink_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Event::ExecStart { worker: 0, exec: 0 });
        sink.emit(&Event::CoverageGain { op: crate::MutOp::Synthesis, edges: 3 });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with("{\"type\":\"") && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_rotates_at_cap() {
        let dir = std::env::temp_dir().join("lego_observe_rotate_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        // Cap sized for two ~42-byte lines: the third event rotates.
        let sink = JsonlSink::create_with_cap(&path, 100).unwrap();
        for i in 0..4 {
            sink.emit(&Event::ExecStart { worker: 0, exec: i });
        }
        sink.flush();
        let rotated = JsonlSink::rotated_path(&path);
        assert_eq!(rotated.file_name().unwrap().to_str().unwrap(), "events.1.jsonl");
        assert!(rotated.exists(), "rotation did not happen");
        let live = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(&rotated).unwrap();
        // One rotation: the first two events moved aside, the rest are live.
        assert_eq!(live.lines().count() + old.lines().count(), 4);
        assert!(old.contains("\"exec\":0") && old.contains("\"exec\":1"), "{old}");
        assert!(live.contains("\"exec\":2") && live.contains("\"exec\":3"), "{live}");
        assert!(live.lines().chain(old.lines()).all(|l| l.starts_with("{\"type\":\"ExecStart\"")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broadcast_sink_replays_and_prunes() {
        let sink = BroadcastSink::new();
        sink.emit(&Event::ExecStart { worker: 0, exec: 0 });
        // Late subscriber still sees the backlog.
        let rx = sink.subscribe();
        assert_eq!(sink.subscriber_count(), 1);
        sink.emit(&Event::WorkerSync { worker: 0, execs: 1 });
        let got: Vec<Event> = rx.try_iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].type_name(), "ExecStart");
        assert_eq!(got[1].type_name(), "WorkerSync");
        // Dropped receiver is pruned on the next emit.
        drop(rx);
        sink.emit(&Event::ExecStart { worker: 0, exec: 1 });
        assert_eq!(sink.subscriber_count(), 0);
    }
}
