//! Pluggable event sinks.
//!
//! A sink receives every emitted [`Event`] behind a shared reference, so
//! implementations synchronize internally (one `Mutex` per sink; the hot
//! path never takes a lock when telemetry is disabled — see
//! [`crate::Telemetry`]).

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Where events go. `emit` must be cheap and must never panic the campaign:
/// I/O errors are swallowed after the first failure.
pub trait EventSink: Send + Sync {
    fn emit(&self, ev: &Event);
    /// Flush any buffered output (end of campaign).
    fn flush(&self) {}
}

/// The disabled sink: does nothing. A campaign built with only `NoopSink`
/// behaves exactly like one with telemetry off; the campaign hot path
/// short-circuits before even constructing events (zero-cost guarantee).
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline]
    fn emit(&self, _ev: &Event) {}
}

/// Append-only JSONL event log: one `Event::to_json` object per line.
pub struct JsonlSink {
    out: Mutex<Option<BufWriter<File>>>,
}

impl JsonlSink {
    /// Create (truncate) the log file. Parent directories are created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self { out: Mutex::new(Some(BufWriter::new(file))) })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, ev: &Event) {
        let mut guard = self.out.lock().expect("jsonl sink poisoned");
        if let Some(w) = guard.as_mut() {
            let mut line = ev.to_json();
            line.push('\n');
            if w.write_all(line.as_bytes()).is_err() {
                // Disk trouble must not kill a long campaign: drop the writer
                // and keep fuzzing without the event log.
                *guard = None;
            }
        }
    }

    fn flush(&self) {
        let mut guard = self.out.lock().expect("jsonl sink poisoned");
        if let Some(w) = guard.as_mut() {
            let _ = w.flush();
        }
    }
}

/// In-memory sink: buffers events for later inspection (tests) or for the
/// deterministic per-worker merge of the parallel campaign path.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Take all buffered events, leaving the sink empty.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().expect("memory sink poisoned"))
    }

    /// Copy of the buffered events.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, ev: &Event) {
        self.events.lock().expect("memory sink poisoned").push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        sink.emit(&Event::ExecStart { worker: 0, exec: 0 });
        sink.emit(&Event::WorkerSync { worker: 0, execs: 1 });
        assert_eq!(sink.len(), 2);
        let evs = sink.drain();
        assert_eq!(evs.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let path = std::env::temp_dir().join("lego_observe_sink_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Event::ExecStart { worker: 0, exec: 0 });
        sink.emit(&Event::CoverageGain { op: crate::MutOp::Synthesis, edges: 3 });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with("{\"type\":\"") && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }
}
