//! Aggregating metrics registry: counters, gauges, and histograms with
//! Prometheus-text and JSON export.
//!
//! Metric keys embed their labels Prometheus-style
//! (`lego_coverage_gains_total{op="insertion"}`), and every map is a
//! `BTreeMap`, so exports are deterministically ordered.

use crate::event::Event;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Fixed bucket upper bounds for the statements-per-case histogram.
const STMT_BUCKETS: [u64; 6] = [1, 2, 4, 8, 16, 32];

#[derive(Clone, Debug, Default)]
struct Histogram {
    /// Cumulative counts per bucket in [`STMT_BUCKETS`] order, plus +Inf.
    buckets: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; STMT_BUCKETS.len() + 1];
        }
        for (i, &le) in STMT_BUCKETS.iter().enumerate() {
            if v <= le {
                self.buckets[i] += 1;
            }
        }
        *self.buckets.last_mut().expect("+Inf bucket") += 1;
        self.sum += v;
        self.count += 1;
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe metrics store. One registry typically serves a whole process
/// (all grid cells of an experiment binary feed the same registry).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registry>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self, name: &str, by: u64) {
        let mut r = self.inner.lock().expect("metrics poisoned");
        *r.counters.entry(name.to_string()).or_insert(0) += by;
    }

    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut r = self.inner.lock().expect("metrics poisoned");
        r.gauges.insert(name.to_string(), v);
    }

    pub fn observe_histogram(&self, name: &str, v: u64) {
        let mut r = self.inner.lock().expect("metrics poisoned");
        r.histograms.entry(name.to_string()).or_default().observe(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().expect("metrics poisoned").counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().expect("metrics poisoned").gauges.get(name).copied()
    }

    /// Fold one event into the standard campaign metrics.
    pub fn observe_event(&self, ev: &Event) {
        self.inc(&format!("lego_events_total{{type=\"{}\"}}", ev.type_name()), 1);
        match ev {
            Event::ExecEnd { statements, ok, err, new_coverage, .. } => {
                self.inc("lego_execs_total", 1);
                self.inc("lego_statements_total", *statements);
                self.inc("lego_statements_ok_total", *ok);
                self.inc("lego_statements_err_total", *err);
                if *new_coverage {
                    self.inc("lego_interesting_cases_total", 1);
                }
                self.observe_histogram("lego_statements_per_case", *statements);
            }
            Event::MutationApplied { op } => {
                self.inc(&format!("lego_mutations_total{{op=\"{}\"}}", op.name()), 1);
            }
            Event::AffinityDiscovered { .. } => self.inc("lego_affinities_total", 1),
            Event::SynthesisStep { sequences, instantiated, .. } => {
                self.inc("lego_synthesized_sequences_total", *sequences);
                self.inc("lego_instantiated_cases_total", *instantiated);
            }
            Event::CoverageGain { op, edges } => {
                self.inc(&format!("lego_coverage_gains_total{{op=\"{}\"}}", op.name()), 1);
                self.inc(
                    &format!("lego_coverage_gain_edges_total{{op=\"{}\"}}", op.name()),
                    *edges,
                );
            }
            Event::BugFound { .. } => self.inc("lego_bugs_total", 1),
            Event::LogicBugFound { .. } => self.inc("lego_logic_bugs_total", 1),
            Event::CaseAborted { reason, .. } => {
                self.inc(&format!("lego_aborted_cases_total{{reason=\"{reason}\"}}"), 1);
            }
            Event::WorkerDied { .. } => self.inc("lego_worker_deaths_total", 1),
            Event::WorkerSync { .. } => self.inc("lego_worker_syncs_total", 1),
            Event::CheckpointWritten { .. } => self.inc("lego_checkpoints_written_total", 1),
            Event::ExecStart { .. } => {}
        }
    }

    /// Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let r = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        for (k, v) in &r.counters {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &r.gauges {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, h) in &r.histograms {
            for (i, &le) in STMT_BUCKETS.iter().enumerate() {
                out.push_str(&format!(
                    "{k}_bucket{{le=\"{le}\"}} {}\n",
                    h.buckets.get(i).copied().unwrap_or(0)
                ));
            }
            out.push_str(&format!(
                "{k}_bucket{{le=\"+Inf\"}} {}\n",
                h.buckets.last().copied().unwrap_or(0)
            ));
            out.push_str(&format!("{k}_sum {}\n", h.sum));
            out.push_str(&format!("{k}_count {}\n", h.count));
        }
        out
    }

    /// JSON export: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn json(&self) -> String {
        let r = self.inner.lock().expect("metrics poisoned");
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in r.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(k, &mut out);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in r.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(k, &mut out);
            out.push(':');
            serde::Serialize::serialize_json(v, &mut out);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in r.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(k, &mut out);
            out.push_str(&format!(":{{\"sum\":{},\"count\":{},\"buckets\":[", h.sum, h.count));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MutOp;

    #[test]
    fn exec_end_updates_counters_and_histogram() {
        let m = MetricsRegistry::new();
        m.observe_event(&Event::ExecEnd {
            worker: 0,
            exec: 0,
            statements: 5,
            ok: 4,
            err: 1,
            new_coverage: true,
        });
        assert_eq!(m.counter("lego_execs_total"), 1);
        assert_eq!(m.counter("lego_statements_ok_total"), 4);
        assert_eq!(m.counter("lego_statements_err_total"), 1);
        assert_eq!(m.counter("lego_interesting_cases_total"), 1);
        let prom = m.prometheus_text();
        assert!(prom.contains("lego_statements_per_case_bucket{le=\"8\"} 1"));
        assert!(prom.contains("lego_statements_per_case_sum 5"));
    }

    #[test]
    fn labeled_counters_and_json_export() {
        let m = MetricsRegistry::new();
        m.observe_event(&Event::CoverageGain { op: MutOp::Insertion, edges: 7 });
        m.set_gauge("lego_branches", 42.0);
        assert_eq!(m.counter("lego_coverage_gains_total{op=\"insertion\"}"), 1);
        let json = m.json();
        assert!(json.contains("\"lego_coverage_gain_edges_total{op=\\\"insertion\\\"}\":7"));
        assert!(json.contains("\"lego_branches\":42.0"));
    }

    #[test]
    fn exports_are_deterministically_ordered() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for m in [&a, &b] {
            m.inc("z_total", 1);
            m.inc("a_total", 2);
            m.set_gauge("m_gauge", 1.5);
        }
        assert_eq!(a.prometheus_text(), b.prometheus_text());
        assert_eq!(a.json(), b.json());
        assert!(
            a.prometheus_text().find("a_total").unwrap()
                < a.prometheus_text().find("z_total").unwrap()
        );
    }
}
