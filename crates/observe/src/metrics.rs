//! Aggregating metrics registry: counters, gauges, and histograms with
//! Prometheus-text and JSON export.
//!
//! Metric keys embed their labels Prometheus-style
//! (`lego_coverage_gains_total{op="insertion"}`) with label values escaped
//! per the exposition format, and every map is a `BTreeMap`, so exports are
//! deterministically ordered. The text export carries `# HELP` / `# TYPE`
//! metadata for every known metric family (pinned by a golden test).

use crate::event::Event;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Bucket upper bounds for the statements-per-case histogram.
const STMT_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32];

/// Bucket upper bounds for the per-case execution-latency histogram, in
/// microseconds (roughly exponential, 10 µs … 100 ms).
const LATENCY_BUCKETS: &[u64] = &[10, 25, 50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000];

/// Bucket bounds for a histogram family. Unknown families get the generic
/// power-of-two ladder.
fn bucket_bounds(name: &str) -> &'static [u64] {
    match base_name(name) {
        "lego_exec_latency_us" => LATENCY_BUCKETS,
        "lego_case_stmts" => STMT_BUCKETS,
        _ => &[1, 2, 4, 8, 16, 32, 64, 128, 256],
    }
}

/// `# HELP` / `# TYPE` metadata for the standard campaign metric families,
/// keyed by base name (labels stripped).
fn metric_meta(base: &str) -> Option<(&'static str, &'static str)> {
    Some(match base {
        "lego_events_total" => ("counter", "Telemetry events routed to the registry, by type."),
        "lego_execs_total" => ("counter", "Test cases executed."),
        "lego_statements_total" => ("counter", "SQL statements executed."),
        "lego_statements_ok_total" => ("counter", "Statements the binder/executor accepted."),
        "lego_statements_err_total" => ("counter", "Statements rejected with a semantic error."),
        "lego_interesting_cases_total" => ("counter", "Cases that covered new branches."),
        "lego_mutations_total" => ("counter", "Mutants produced, by operator."),
        "lego_affinities_total" => ("counter", "Type-affinities discovered (Algorithm 2)."),
        "lego_synthesized_sequences_total" => ("counter", "Sequences synthesized (Algorithm 3)."),
        "lego_instantiated_cases_total" => ("counter", "Synthesized sequences instantiated."),
        "lego_coverage_gains_total" => ("counter", "Coverage-gaining cases, by operator."),
        "lego_coverage_gain_edges_total" => ("counter", "New edges gained, by operator."),
        "lego_rule_edges_total" => {
            ("counter", "New grammar-rule edges covered (--rule-cov campaigns).")
        }
        "lego_sema_rejects_total" => {
            ("counter", "Statements proven invalid by the static analyzer (--sema campaigns).")
        }
        "lego_sema_skipped_cases_total" => {
            ("counter", "Cases whose engine execution was skipped as statically invalid.")
        }
        "lego_sema_divergences_total" => {
            ("counter", "Deduplicated analyzer-vs-engine conformance divergences.")
        }
        "lego_bugs_total" => ("counter", "Deduplicated crash bugs."),
        "lego_logic_bugs_total" => ("counter", "Deduplicated oracle-flagged wrong-result bugs."),
        "lego_durability_bugs_total" => {
            ("counter", "Deduplicated recovery-oracle durability bugs.")
        }
        "lego_aborted_cases_total" => ("counter", "Cases killed by a per-case budget, by reason."),
        "lego_worker_deaths_total" => ("counter", "Worker threads that died mid-campaign."),
        "lego_worker_syncs_total" => ("counter", "Worker coverage-shard syncs."),
        "lego_checkpoints_written_total" => ("counter", "Campaign checkpoints persisted."),
        "lego_branches" => ("gauge", "Branches (edges) covered."),
        "lego_corpus_size" => ("gauge", "Seeds retained in the corpus."),
        "lego_queue_depth" => ("gauge", "Pending + synthesis scheduler backlog."),
        "lego_case_stmts" => ("histogram", "Statements per executed case."),
        "lego_exec_latency_us" => ("histogram", "Per-case execution wall time, microseconds."),
        _ => return None,
    })
}

/// The metric family name with any `{label="…"}` suffix stripped.
fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Escape a label value per the Prometheus text exposition format
/// (backslash, double quote, and newline).
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Build a single-label metric key, escaping the label value.
pub fn labeled(name: &str, label: &str, value: &str) -> String {
    format!("{name}{{{label}=\"{}\"}}", escape_label(value))
}

#[derive(Clone, Debug)]
struct Histogram {
    /// Upper bounds, fixed per family at first observation.
    bounds: &'static [u64],
    /// Cumulative counts per bucket in `bounds` order, plus +Inf.
    buckets: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Self { bounds, buckets: vec![0; bounds.len() + 1], sum: 0, count: 0 }
    }

    fn observe(&mut self, v: u64) {
        for (i, &le) in self.bounds.iter().enumerate() {
            if v <= le {
                self.buckets[i] += 1;
            }
        }
        *self.buckets.last_mut().expect("+Inf bucket") += 1;
        self.sum += v;
        self.count += 1;
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe metrics store. One registry typically serves a whole process
/// (all grid cells of an experiment binary feed the same registry).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registry>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        // Poison-tolerant: a panicking reader must never take the campaign's
        // metrics down with it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn inc(&self, name: &str, by: u64) {
        let mut r = self.lock();
        *r.counters.entry(name.to_string()).or_insert(0) += by;
    }

    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut r = self.lock();
        r.gauges.insert(name.to_string(), v);
    }

    pub fn observe_histogram(&self, name: &str, v: u64) {
        let mut r = self.lock();
        let bounds = bucket_bounds(name);
        r.histograms.entry(name.to_string()).or_insert_with(|| Histogram::new(bounds)).observe(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// `(sum, count)` of a histogram family, if it has observations.
    pub fn histogram_stats(&self, name: &str) -> Option<(u64, u64)> {
        self.lock().histograms.get(name).map(|h| (h.sum, h.count))
    }

    /// Fold one event into the standard campaign metrics.
    pub fn observe_event(&self, ev: &Event) {
        self.inc(&labeled("lego_events_total", "type", ev.type_name()), 1);
        match ev {
            Event::ExecEnd { statements, ok, err, new_coverage, .. } => {
                self.inc("lego_execs_total", 1);
                self.inc("lego_statements_total", *statements);
                self.inc("lego_statements_ok_total", *ok);
                self.inc("lego_statements_err_total", *err);
                if *new_coverage {
                    self.inc("lego_interesting_cases_total", 1);
                }
                self.observe_histogram("lego_case_stmts", *statements);
            }
            Event::MutationApplied { op } => {
                self.inc(&labeled("lego_mutations_total", "op", op.name()), 1);
            }
            Event::AffinityDiscovered { .. } => self.inc("lego_affinities_total", 1),
            Event::SynthesisStep { sequences, instantiated, .. } => {
                self.inc("lego_synthesized_sequences_total", *sequences);
                self.inc("lego_instantiated_cases_total", *instantiated);
            }
            Event::CoverageGain { op, edges } => {
                self.inc(&labeled("lego_coverage_gains_total", "op", op.name()), 1);
                self.inc(&labeled("lego_coverage_gain_edges_total", "op", op.name()), *edges);
            }
            Event::RuleCoverageGain { edges, .. } => self.inc("lego_rule_edges_total", *edges),
            Event::BugFound { .. } => self.inc("lego_bugs_total", 1),
            Event::LogicBugFound { .. } => self.inc("lego_logic_bugs_total", 1),
            Event::DurabilityBugFound { .. } => self.inc("lego_durability_bugs_total", 1),
            Event::CaseAborted { reason, .. } => {
                self.inc(&labeled("lego_aborted_cases_total", "reason", reason), 1);
            }
            Event::WorkerDied { .. } => self.inc("lego_worker_deaths_total", 1),
            Event::WorkerSync { .. } => self.inc("lego_worker_syncs_total", 1),
            Event::CheckpointWritten { .. } => self.inc("lego_checkpoints_written_total", 1),
            Event::SemaVerdict { rejects, skipped, .. } => {
                self.inc("lego_sema_rejects_total", *rejects);
                if *skipped {
                    self.inc("lego_sema_skipped_cases_total", 1);
                }
            }
            Event::SemaDivergenceFound { .. } => self.inc("lego_sema_divergences_total", 1),
            Event::ExecStart { .. } => {}
        }
    }

    /// Prometheus text exposition format, with `# HELP` / `# TYPE` metadata
    /// emitted once per metric family.
    pub fn prometheus_text(&self) -> String {
        let r = self.lock();
        let mut out = String::new();
        let mut last_base = String::new();
        let mut meta = |out: &mut String, key: &str, kind: &str| {
            let base = base_name(key);
            if base != last_base {
                last_base = base.to_string();
                if let Some((ty, help)) = metric_meta(base) {
                    out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} {ty}\n"));
                } else {
                    out.push_str(&format!("# TYPE {base} {kind}\n"));
                }
            }
        };
        for (k, v) in &r.counters {
            meta(&mut out, k, "counter");
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &r.gauges {
            meta(&mut out, k, "gauge");
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, h) in &r.histograms {
            meta(&mut out, k, "histogram");
            for (i, &le) in h.bounds.iter().enumerate() {
                out.push_str(&format!("{k}_bucket{{le=\"{le}\"}} {}\n", h.buckets[i]));
            }
            out.push_str(&format!(
                "{k}_bucket{{le=\"+Inf\"}} {}\n",
                h.buckets.last().copied().unwrap_or(0)
            ));
            out.push_str(&format!("{k}_sum {}\n", h.sum));
            out.push_str(&format!("{k}_count {}\n", h.count));
        }
        out
    }

    /// JSON export: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    /// Histograms carry their bucket bounds so consumers need no side table.
    pub fn json(&self) -> String {
        let r = self.lock();
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in r.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(k, &mut out);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in r.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(k, &mut out);
            out.push(':');
            serde::Serialize::serialize_json(v, &mut out);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in r.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(k, &mut out);
            out.push_str(&format!(":{{\"sum\":{},\"count\":{},\"le\":[", h.sum, h.count));
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("],\"buckets\":[");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MutOp;

    #[test]
    fn exec_end_updates_counters_and_histogram() {
        let m = MetricsRegistry::new();
        m.observe_event(&Event::ExecEnd {
            worker: 0,
            exec: 0,
            statements: 5,
            ok: 4,
            err: 1,
            new_coverage: true,
        });
        assert_eq!(m.counter("lego_execs_total"), 1);
        assert_eq!(m.counter("lego_statements_ok_total"), 4);
        assert_eq!(m.counter("lego_statements_err_total"), 1);
        assert_eq!(m.counter("lego_interesting_cases_total"), 1);
        let prom = m.prometheus_text();
        assert!(prom.contains("lego_case_stmts_bucket{le=\"8\"} 1"));
        assert!(prom.contains("lego_case_stmts_sum 5"));
    }

    #[test]
    fn labeled_counters_and_json_export() {
        let m = MetricsRegistry::new();
        m.observe_event(&Event::CoverageGain { op: MutOp::Insertion, edges: 7 });
        m.set_gauge("lego_branches", 42.0);
        assert_eq!(m.counter("lego_coverage_gains_total{op=\"insertion\"}"), 1);
        let json = m.json();
        assert!(json.contains("\"lego_coverage_gain_edges_total{op=\\\"insertion\\\"}\":7"));
        assert!(json.contains("\"lego_branches\":42.0"));
    }

    #[test]
    fn exports_are_deterministically_ordered() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for m in [&a, &b] {
            m.inc("z_total", 1);
            m.inc("a_total", 2);
            m.set_gauge("m_gauge", 1.5);
        }
        assert_eq!(a.prometheus_text(), b.prometheus_text());
        assert_eq!(a.json(), b.json());
        assert!(
            a.prometheus_text().find("a_total").unwrap()
                < a.prometheus_text().find("z_total").unwrap()
        );
    }

    #[test]
    fn exec_latency_histogram_uses_microsecond_buckets() {
        let m = MetricsRegistry::new();
        m.observe_histogram("lego_exec_latency_us", 40);
        m.observe_histogram("lego_exec_latency_us", 90_000);
        m.observe_histogram("lego_exec_latency_us", 2_000_000);
        let prom = m.prometheus_text();
        assert!(prom.contains("lego_exec_latency_us_bucket{le=\"50\"} 1"), "{prom}");
        assert!(prom.contains("lego_exec_latency_us_bucket{le=\"100000\"} 2"), "{prom}");
        assert!(prom.contains("lego_exec_latency_us_bucket{le=\"+Inf\"} 3"), "{prom}");
        assert!(prom.contains("lego_exec_latency_us_count 3"));
        assert_eq!(m.histogram_stats("lego_exec_latency_us"), Some((2_090_040, 3)));
        // JSON export carries the bounds alongside the cumulative buckets.
        assert!(m.json().contains("\"le\":[10,25,50,100,250,500,1000,5000,25000,100000]"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(labeled("m_total", "op", "we\"ird"), "m_total{op=\"we\\\"ird\"}");
        let m = MetricsRegistry::new();
        m.observe_event(&Event::CaseAborted {
            worker: 0,
            exec: 0,
            reason: "stmt\"quota".to_string(),
        });
        assert!(m
            .prometheus_text()
            .contains("lego_aborted_cases_total{reason=\"stmt\\\"quota\"} 1"));
    }

    #[test]
    fn help_and_type_lines_precede_families() {
        let m = MetricsRegistry::new();
        m.inc("lego_execs_total", 3);
        m.set_gauge("lego_branches", 10.0);
        m.observe_histogram("lego_case_stmts", 4);
        let prom = m.prometheus_text();
        let lines: Vec<&str> = prom.lines().collect();
        for family in ["lego_execs_total", "lego_branches", "lego_case_stmts"] {
            let help = lines
                .iter()
                .position(|l| l.starts_with(&format!("# HELP {family} ")))
                .expect(family);
            let ty = lines
                .iter()
                .position(|l| l.starts_with(&format!("# TYPE {family} ")))
                .expect(family);
            let sample = lines
                .iter()
                .position(|l| {
                    l.starts_with(&format!("{family} "))
                        || l.starts_with(&format!("{family}_bucket"))
                })
                .expect(family);
            assert!(help < ty, "{family}: HELP after TYPE");
            assert!(ty < sample, "{family}: sample before metadata");
        }
        assert!(prom.contains("# TYPE lego_case_stmts histogram"));
    }
}
