//! AFL-plot-data-style time-series recorder.
//!
//! A background thread samples the shared [`LiveCounters`] at a fixed
//! cadence and appends one CSV row per sample to `plot_data.csv` (flushed
//! per row, so the file is tail-able during the run). [`finish`] takes one
//! final sample, then writes a JSON variant (`plot_data.json`) consumed by
//! `scripts/render_experiments.py`.
//!
//! The recorder is a pure *reader* of racy-relaxed live counters: it never
//! touches campaign state, RNG streams, or case ordering, so enabling it
//! cannot perturb results. Rows are monotone in time (monotonic clock) and
//! in `branches` (the gauge is only raised during a run).

use crate::heartbeat::LiveCounters;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Column order for both the CSV header and the JSON `rows` arrays.
pub const COLUMNS: [&str; 11] = [
    "t_s",
    "execs",
    "execs_per_sec",
    "branches",
    "corpus",
    "queued",
    "validity_pct",
    "bugs",
    "logic_bugs",
    "aborted",
    "rule_edges",
];

#[derive(Clone, Copy, Debug)]
struct Row {
    t_s: f64,
    execs: u64,
    execs_per_sec: f64,
    branches: u64,
    corpus: u64,
    queued: u64,
    validity_pct: f64,
    bugs: u64,
    logic_bugs: u64,
    aborted: u64,
    rule_edges: u64,
}

impl Row {
    fn csv(&self) -> String {
        format!(
            "{:.3},{},{:.1},{},{},{},{:.2},{},{},{},{}\n",
            self.t_s,
            self.execs,
            self.execs_per_sec,
            self.branches,
            self.corpus,
            self.queued,
            self.validity_pct,
            self.bugs,
            self.logic_bugs,
            self.aborted,
            self.rule_edges
        )
    }

    fn json(&self) -> String {
        format!(
            "[{:.3},{},{:.1},{},{},{},{:.2},{},{},{},{}]",
            self.t_s,
            self.execs,
            self.execs_per_sec,
            self.branches,
            self.corpus,
            self.queued,
            self.validity_pct,
            self.bugs,
            self.logic_bugs,
            self.aborted,
            self.rule_edges
        )
    }
}

struct RecorderState {
    out: Option<BufWriter<File>>,
    rows: Vec<Row>,
    /// `(t_s, execs)` of the previous sample, for the execs/s delta.
    last: (f64, u64),
}

struct Shared {
    live: Arc<LiveCounters>,
    start: Instant,
    state: Mutex<RecorderState>,
    stop: AtomicBool,
}

impl Shared {
    fn sample(&self) {
        let t_s = self.start.elapsed().as_secs_f64();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let execs = self.live.execs();
        let (t_prev, execs_prev) = state.last;
        let dt = t_s - t_prev;
        let execs_per_sec = if dt > 1e-6 { (execs - execs_prev) as f64 / dt } else { 0.0 };
        let row = Row {
            t_s,
            execs,
            execs_per_sec,
            branches: self.live.branches(),
            corpus: self.live.corpus(),
            queued: self.live.queued(),
            validity_pct: self.live.validity_pct(),
            bugs: self.live.bugs(),
            logic_bugs: self.live.logic_bugs(),
            aborted: self.live.cases_aborted(),
            rule_edges: self.live.rule_edges(),
        };
        state.last = (t_s, execs);
        if let Some(w) = state.out.as_mut() {
            // Write + flush per row so the CSV is live-tailable; on disk
            // trouble drop the writer and keep sampling into memory.
            if w.write_all(row.csv().as_bytes()).and_then(|_| w.flush()).is_err() {
                state.out = None;
            }
        }
        state.rows.push(row);
    }
}

/// Background plot-data recorder. Construct with [`start`](Self::start),
/// stop with [`finish`](Self::finish) (also called on drop).
pub struct TimeSeriesRecorder {
    shared: Arc<Shared>,
    csv_path: PathBuf,
    thread: Option<JoinHandle<()>>,
}

impl TimeSeriesRecorder {
    /// Start sampling `live` every `interval_ms` into `csv_path` (created,
    /// parents included; header + an immediate t≈0 row are written up
    /// front, so even sub-interval campaigns produce a non-trivial file).
    pub fn start(
        csv_path: &Path,
        interval_ms: u64,
        live: Arc<LiveCounters>,
    ) -> std::io::Result<Self> {
        if let Some(parent) = csv_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut out = BufWriter::new(File::create(csv_path)?);
        out.write_all(format!("{}\n", COLUMNS.join(",")).as_bytes())?;
        let shared = Arc::new(Shared {
            live,
            start: Instant::now(),
            state: Mutex::new(RecorderState { out: Some(out), rows: Vec::new(), last: (0.0, 0) }),
            stop: AtomicBool::new(false),
        });
        shared.sample(); // t≈0 baseline row
        let interval = Duration::from_millis(interval_ms.max(10));
        let bg = shared.clone();
        let thread = std::thread::Builder::new().name("lego-plot".into()).spawn(move || {
            // Poll the stop flag at a finer grain than the sample
            // interval so finish() never waits a full cadence.
            let tick = interval.min(Duration::from_millis(50));
            let mut since_sample = Duration::ZERO;
            while !bg.stop.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                since_sample += tick;
                if since_sample >= interval {
                    since_sample = Duration::ZERO;
                    bg.sample();
                }
            }
        })?;
        Ok(Self { shared, csv_path: csv_path.to_path_buf(), thread: Some(thread) })
    }

    /// Path of the JSON variant written by [`finish`]: `plot_data.csv` →
    /// `plot_data.json`.
    pub fn json_path(&self) -> PathBuf {
        self.csv_path.with_extension("json")
    }

    /// Rows sampled so far (including the t≈0 baseline).
    pub fn row_count(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).rows.len()
    }

    /// Stop the sampler, take a final row, and write the JSON variant.
    pub fn finish(&mut self) {
        let Some(thread) = self.thread.take() else {
            return; // already finished
        };
        self.shared.stop.store(true, Ordering::Relaxed);
        let _ = thread.join();
        self.shared.sample(); // closing row
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut json = String::from("{\"columns\":[");
        for (i, c) in COLUMNS.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("\"{c}\""));
        }
        json.push_str("],\"rows\":[");
        for (i, row) in state.rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&row.json());
        }
        json.push_str("]}");
        let _ = std::fs::write(self.json_path(), json);
    }
}

impl Drop for TimeSeriesRecorder {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_monotone_rows_and_json_variant() {
        let dir = std::env::temp_dir().join("lego_observe_plot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let live = Arc::new(LiveCounters::new());
        let csv = dir.join("plot_data.csv");
        let mut rec = TimeSeriesRecorder::start(&csv, 20, live.clone()).unwrap();
        live.record_exec(0, 3, 1);
        live.raise_branches(10);
        std::thread::sleep(Duration::from_millis(80));
        live.record_exec(0, 2, 0);
        live.raise_branches(25);
        rec.finish();
        assert!(rec.row_count() >= 2, "want baseline + closing row");

        let text = std::fs::read_to_string(&csv).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), COLUMNS.join(","));
        let rows: Vec<Vec<f64>> =
            lines.map(|l| l.split(',').map(|v| v.parse().unwrap()).collect()).collect();
        assert!(rows.len() >= 2);
        for pair in rows.windows(2) {
            assert!(pair[1][0] >= pair[0][0], "time not monotone: {pair:?}");
            assert!(pair[1][3] >= pair[0][3], "branches not monotone: {pair:?}");
        }
        let last = rows.last().unwrap();
        assert_eq!(last[1] as u64, 2, "execs column");
        assert_eq!(last[3] as u64, 25, "branches column");

        let json = std::fs::read_to_string(rec.json_path()).unwrap();
        assert!(json.starts_with("{\"columns\":[\"t_s\""));
        assert!(json.contains("\"rows\":[["));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_is_idempotent() {
        let dir = std::env::temp_dir().join("lego_observe_plot_idem_test");
        let _ = std::fs::remove_dir_all(&dir);
        let live = Arc::new(LiveCounters::new());
        let mut rec = TimeSeriesRecorder::start(&dir.join("plot_data.csv"), 1000, live).unwrap();
        rec.finish();
        let rows = rec.row_count();
        rec.finish(); // drop() will call it a third time
        assert_eq!(rec.row_count(), rows);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
