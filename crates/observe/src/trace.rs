//! Chrome-trace-event span export (Perfetto-loadable).
//!
//! [`TraceCollector`] records one complete (`ph:"X"`) event per profiled
//! stage call, on a per-worker track (`tid` = worker index; the serial
//! driver is worker 0). [`Telemetry::time`](crate::Telemetry::time) feeds it
//! the same measurement it charges to the stage accumulators, so the trace
//! is a faithful expansion of the aggregate stage profile. `Mutation` spans
//! nest inside their enclosing `Generation` span on the same track, which
//! trace viewers render as nested slices.
//!
//! The collector is bounded: past [`DEFAULT_SPAN_CAP`] spans it counts
//! drops instead of growing without limit, so `--trace` on a long campaign
//! degrades to a truncated trace rather than an OOM.

use crate::profile::Stage;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum retained spans (~48 bytes each → ~96 MiB of JSON at the cap).
pub const DEFAULT_SPAN_CAP: usize = 2_000_000;

#[derive(Clone, Copy)]
struct Span {
    worker: u32,
    stage: Stage,
    /// Microseconds since the collector's epoch.
    ts_us: u64,
    dur_us: u64,
}

/// Thread-safe bounded span store. One collector serves the whole campaign;
/// worker children share it through their telemetry handles.
pub struct TraceCollector {
    epoch: Instant,
    cap: usize,
    spans: Mutex<Vec<Span>>,
    dropped: AtomicU64,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::with_cap(DEFAULT_SPAN_CAP)
    }
}

impl TraceCollector {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_cap(cap: usize) -> Self {
        Self {
            epoch: Instant::now(),
            cap,
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record one stage span. `start` must come from the same monotonic
    /// clock domain as the collector's construction time (it is: both are
    /// `Instant`s from this process).
    pub fn record(&self, worker: usize, stage: Stage, start: Instant, nanos: u64) {
        let ts_us = start.checked_duration_since(self.epoch).unwrap_or_default().as_micros() as u64;
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() >= self.cap {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(Span { worker: worker as u32, stage, ts_us, dur_us: nanos / 1_000 });
    }

    pub fn span_count(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Spans discarded after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Serialize to Chrome trace-event JSON (the format `chrome://tracing`
    /// and Perfetto load directly): a `traceEvents` array of `ph:"M"`
    /// thread-name metadata plus `ph:"X"` complete events.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let mut workers: Vec<u32> = spans.iter().map(|s| s.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        let mut out = String::with_capacity(64 + spans.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&ev);
        };
        push(
            &mut out,
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"lego campaign\"}}"
                .to_string(),
        );
        for w in &workers {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{w},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"worker {w}\"}}}}"
                ),
            );
        }
        for s in spans.iter() {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\",\"cat\":\"stage\"}}",
                    s.worker,
                    s.ts_us,
                    s.dur_us,
                    s.stage.name()
                ),
            );
        }
        out.push_str("]}");
        out
    }

    /// Write the trace to `path`, creating parent directories. Returns the
    /// number of spans written.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<usize> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let json = self.chrome_trace_json();
        let mut f = std::fs::File::create(path)?;
        f.write_all(json.as_bytes())?;
        Ok(self.span_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_on_worker_tracks() {
        let tr = TraceCollector::new();
        let t0 = Instant::now();
        tr.record(0, Stage::Execution, t0, 5_000);
        tr.record(2, Stage::Feedback, t0, 1_500_000);
        assert_eq!(tr.span_count(), 2);
        let json = tr.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"execution\""), "{json}");
        assert!(json.contains("\"tid\":2"), "{json}");
        assert!(json.contains("\"dur\":1500"), "{json}");
        assert!(json.contains("\"args\":{\"name\":\"worker 2\"}"), "{json}");
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn cap_counts_drops_instead_of_growing() {
        let tr = TraceCollector::with_cap(2);
        let t0 = Instant::now();
        for _ in 0..5 {
            tr.record(0, Stage::Execution, t0, 1_000);
        }
        assert_eq!(tr.span_count(), 2);
        assert_eq!(tr.dropped(), 3);
    }

    #[test]
    fn writes_trace_file() {
        let dir = std::env::temp_dir().join("lego_observe_trace_test");
        let _ = std::fs::remove_dir_all(&dir);
        let tr = TraceCollector::new();
        tr.record(1, Stage::Oracle, Instant::now(), 42_000);
        let path = dir.join("trace.json");
        let n = tr.write_chrome_trace(&path).unwrap();
        assert_eq!(n, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"cat\":\"stage\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
