//! Test-only fault injection for the analyzer itself.
//!
//! The conformance oracle (analyzer-says-valid but engine-rejects, or the
//! reverse) can only be integration-tested against an analyzer that is
//! actually wrong. This module provides a process-global switch that plants
//! a deliberate over-acceptance bug: with the fault enabled, the binder
//! accepts `COMMIT` even when it has proven no transaction is open — the
//! engine then rejects the statement at runtime and the campaign must
//! surface exactly one deduped `SemaDivergence` finding.
//!
//! Same contract as `lego_dbms::faults`: off by default, flipped only from
//! tests (keep fault-enabled tests in their own test binary — the flag is
//! global to the process), one relaxed atomic load per guarded site when
//! disabled.

use std::sync::atomic::{AtomicBool, Ordering};

static OVERACCEPT_COMMIT: AtomicBool = AtomicBool::new(false);

/// Enable or disable the planted analyzer bug: wrongly accept `COMMIT`
/// outside a transaction (test-only).
pub fn set_overaccept_commit(enabled: bool) {
    OVERACCEPT_COMMIT.store(enabled, Ordering::Relaxed);
}

/// Is the planted over-acceptance bug enabled?
pub(crate) fn overaccept_commit() -> bool {
    OVERACCEPT_COMMIT.load(Ordering::Relaxed)
}

/// RAII guard that enables the fault for a scope and always disables it on
/// drop, so a panicking test cannot leak the fault into later tests.
pub struct FaultGuard(());

impl FaultGuard {
    pub fn enable_overaccept_commit() -> Self {
        set_overaccept_commit(true);
        FaultGuard(())
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        set_overaccept_commit(false);
    }
}
