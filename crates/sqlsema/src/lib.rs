#![forbid(unsafe_code)]

//! Static semantic analysis for `sqlast` statement sequences.
//!
//! LEGO's campaigns spend real execution budget discovering that a test case
//! was never going to run: a `SELECT` from a table the sequence dropped two
//! statements ago, a `COMMIT` with no transaction open, a dialect that does
//! not even parse the statement kind. This crate answers those questions
//! *before* execution:
//!
//! * [`Sema::check_sequence`] walks a sequence through the tri-state
//!   [`binder::Binder`] and classifies every statement as
//!   [`Verdict::Accept`] (provably succeeds), [`Verdict::Reject`] (provably
//!   errors), or [`Verdict::Unknown`]. A sequence with any `Reject` is
//!   *statically invalid* — the campaign can skip executing it.
//! * [`deps::DepGraph`] gives the def-use dependency structure mutation
//!   needs to splice and reorder without manufacturing dangling references.
//! * The verdicts double as one half of a conformance oracle: the analyzer
//!   and the engine are two implementations of the same semantics, and a
//!   disagreement on a cleanly-executed case (`Accept` yet the engine
//!   errored, `Reject` yet it succeeded) is a bug in one of them.
//!
//! Soundness is directional and deliberate: `Accept`/`Reject` are only
//! claimed when provable against the abstract state, so `Unknown` absorbs
//! everything triggers, rules, privileges, or fogged catalogs make
//! uncertain. The crate's tests pin the claim against the real engine.

pub mod binder;
pub mod deps;
pub mod faults;
pub mod types;

pub use binder::{Binder, Presence, Tri};
pub use deps::{plausible_sequence, DepGraph, Sym, SymNs};

use lego_dbms::Profile;
use lego_sqlast::{Dialect, Statement};

/// The analyzer's classification of a single statement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Provably succeeds: every engine path from every state consistent
    /// with the analysis ends in `Ok`.
    Accept,
    /// Not provable either way.
    Unknown,
    /// Provably errors: every such path ends in a semantic error.
    Reject,
}

/// Verdict plus a static reason (only for rejects).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StmtVerdict {
    pub verdict: Verdict,
    pub reason: Option<&'static str>,
}

/// Per-statement verdicts for one sequence.
#[derive(Clone, Debug, Default)]
pub struct SeqReport {
    pub verdicts: Vec<StmtVerdict>,
}

impl SeqReport {
    /// Does the sequence contain a provably-failing statement?
    pub fn statically_invalid(&self) -> bool {
        self.first_reject().is_some()
    }

    /// Index and reason of the first `Reject`, if any.
    pub fn first_reject(&self) -> Option<(usize, &'static str)> {
        self.verdicts.iter().enumerate().find_map(|(i, v)| {
            (v.verdict == Verdict::Reject).then(|| (i, v.reason.unwrap_or("rejected")))
        })
    }

    /// Number of `Reject` verdicts.
    pub fn rejects(&self) -> usize {
        self.verdicts.iter().filter(|v| v.verdict == Verdict::Reject).count()
    }

    /// Number of `Accept` verdicts.
    pub fn accepts(&self) -> usize {
        self.verdicts.iter().filter(|v| v.verdict == Verdict::Accept).count()
    }
}

/// The analyzer entry point: one per dialect, reusable across sequences.
#[derive(Clone, Debug)]
pub struct Sema {
    prof: Profile,
}

impl Sema {
    pub fn new(dialect: Dialect) -> Sema {
        Sema { prof: Profile::for_dialect(dialect) }
    }

    pub fn profile(&self) -> &Profile {
        &self.prof
    }

    /// A fresh binder positioned at the start of a sequence (the per-case
    /// engine state: pristine catalog, admin user, no transaction).
    pub fn binder(&self) -> Binder {
        Binder::new(self.prof)
    }

    /// Classify every statement of `stmts`, threading the abstract state
    /// through the whole sequence.
    pub fn check_sequence(&self, stmts: &[Statement]) -> SeqReport {
        let mut b = self.binder();
        SeqReport { verdicts: stmts.iter().map(|s| b.step(s)).collect() }
    }
}
