//! Expression- and query-level static checks.
//!
//! The binder only claims [`Verdict::Accept`](crate::Verdict::Accept) or
//! [`Verdict::Reject`](crate::Verdict::Reject) when the engine outcome is
//! provable, so everything in this module errs on the side of "don't know":
//! `expr_infallible` is an under-approximation of "evaluation cannot fail",
//! `query_always_ok` an under-approximation of "this query succeeds in any
//! session state", and `single_named_from` only fires on the one FROM shape
//! whose resolution the engine performs eagerly.

use lego_sqlast::ast::{Query, SelectItem, SetExpr, TableRef};
use lego_sqlast::expr::{BinOp, DataType, Expr};

/// Static type of an expression, when it can be inferred without a schema.
///
/// Literal-only inference: anything touching a column, function, subquery,
/// or window returns `None` (the engine's runtime coercion rules are the
/// source of truth there, and the analyzer must not guess).
pub fn infer_type(e: &Expr) -> Option<DataType> {
    match e {
        Expr::Null => None, // NULL adopts the context's type
        Expr::Bool(_) => Some(DataType::Bool),
        Expr::Integer(_) => Some(DataType::BigInt),
        Expr::Float(_) => Some(DataType::Double),
        Expr::Str(_) => Some(DataType::Text),
        Expr::Cast { ty, .. } => Some(*ty),
        Expr::Unary(_, inner) => infer_type(inner),
        Expr::Binary(l, op, r) => match op {
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => Some(DataType::Bool),
            BinOp::Concat => Some(DataType::Text),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                match (infer_type(l)?, infer_type(r)?) {
                    (DataType::Double | DataType::Float, _)
                    | (_, DataType::Double | DataType::Float) => Some(DataType::Double),
                    _ => Some(DataType::BigInt),
                }
            }
        },
        Expr::Like { .. } | Expr::IsNull { .. } | Expr::Between { .. } | Expr::InList { .. } => {
            Some(DataType::Bool)
        }
        _ => None,
    }
}

/// Can evaluating `e` be statically proven not to produce a semantic error
/// in *any* row context? Only plain literals qualify: they need no column
/// resolution, no function dispatch, and no arithmetic that could divide by
/// zero or overflow-check.
pub fn expr_infallible(e: &Expr) -> bool {
    e.is_literal()
}

/// If the query's FROM clause is exactly one plain named relation (no join,
/// no subquery, no set operation), return that name. This is the one shape
/// where the engine resolves the relation eagerly, so a definitely-absent
/// name is a provable error.
pub fn single_named_from(q: &Query) -> Option<&str> {
    match &q.body {
        SetExpr::Select(s) => match s.from.as_slice() {
            [TableRef::Named { name, .. }] => Some(name.as_str()),
            _ => None,
        },
        _ => None,
    }
}

/// Does this query provably succeed regardless of catalog and session state?
/// True only for `SELECT <literals...>` with no FROM and no other clauses —
/// nothing to resolve, nothing to evaluate per-row, nothing to sort. Pinned
/// against the real engine by `literal_select_is_always_ok` in the crate
/// tests; if the engine ever disagrees, tighten this, not the binder.
pub fn query_always_ok(q: &Query) -> bool {
    if !q.order_by.is_empty() || q.limit.is_some() || q.offset.is_some() {
        return false;
    }
    match &q.body {
        SetExpr::Select(s) => {
            s.from.is_empty()
                && !s.distinct
                && s.where_.is_none()
                && s.group_by.is_empty()
                && s.having.is_none()
                && !s.projection.is_empty()
                && s.projection.iter().all(|item| match item {
                    SelectItem::Expr { expr, .. } => expr_infallible(expr),
                    SelectItem::Star | SelectItem::QualifiedStar(_) => false,
                })
        }
        _ => false,
    }
}
