//! The tri-state binder: an abstract interpreter over statement sequences.
//!
//! [`Binder::step`] mirrors `lego_dbms::exec::Session::exec_statement` one
//! statement at a time, tracking an *abstract* session state: every fact is
//! three-valued ([`Tri`] for booleans, [`Presence`] for catalog objects), and
//! every transition is the join of the engine's success and failure paths
//! when the analyzer cannot prove which one is taken.
//!
//! The contract that makes the conformance oracle sound:
//!
//! - [`Verdict::Reject`] is only produced when **every** engine path for the
//!   statement ends in a semantic error, given any concrete state consistent
//!   with the abstract one.
//! - [`Verdict::Accept`] is only produced when **every** such path succeeds.
//! - Anything else is [`Verdict::Unknown`], and the abstract state after the
//!   statement over-approximates both the success and the failure outcome.
//!
//! Soundness leans on two engine properties that are pinned by tests: error
//! paths in `exec_statement` never mutate session state (checks precede
//! mutations in every arm), and statements cut short by a budget trip leave
//! `Outcome != Ok`, which the conformance comparison excludes.

use std::collections::BTreeMap;

use lego_dbms::Profile;
use lego_sqlast::kind::StandaloneKind;
use lego_sqlast::{
    AlterTableAction, ColumnConstraint, CopyDirection, CopySource, CreateTable, CteBody,
    ObjectKind, Query, SelectVariant, Statement, StmtKind, TableConstraint,
};

use crate::types;
use crate::{StmtVerdict, Verdict};

pub(crate) fn norm(s: &str) -> String {
    s.to_ascii_lowercase()
}

/// Three-valued truth: the analyzer's answer to "does this hold right now?".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tri {
    No,
    Maybe,
    Yes,
}

/// Three-valued existence of a catalog or session object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Presence {
    Absent,
    Maybe,
    Present,
}

#[derive(Clone, Debug, PartialEq)]
struct Ent<T> {
    pres: Presence,
    info: T,
}

/// A named namespace (tables, views, cursors, …) with an "anything could be
/// in here" fog bit. A key with no entry is `Absent` in clear weather and
/// `Maybe` under fog; fogging forgets every exact entry.
#[derive(Clone, Debug)]
pub(crate) struct Ns<T: Clone> {
    known: BTreeMap<String, Ent<T>>,
    fog: bool,
}

impl<T: Clone> Default for Ns<T> {
    fn default() -> Self {
        Ns { known: BTreeMap::new(), fog: false }
    }
}

impl<T: Clone + Default + PartialEq> Ns<T> {
    fn presence(&self, key: &str) -> Presence {
        match self.known.get(key) {
            Some(e) => e.pres,
            None if self.fog => Presence::Maybe,
            None => Presence::Absent,
        }
    }

    fn info(&self, key: &str) -> Option<&T> {
        self.known.get(key).map(|e| &e.info)
    }

    fn set(&mut self, key: String, pres: Presence, info: T) {
        self.known.insert(key, Ent { pres, info });
    }

    fn set_absent(&mut self, key: String) {
        self.set(key, Presence::Absent, T::default());
    }

    fn fog(&mut self) {
        self.known.clear();
        self.fog = true;
    }

    /// Definitely empty (e.g. `DISCARD ALL` cleared it).
    fn clear_definite(&mut self) {
        self.known.clear();
        self.fog = false;
    }

    /// The key's object may have been removed: Present → Maybe.
    fn downgrade(&mut self, key: &str) {
        if let Some(e) = self.known.get_mut(key) {
            if e.pres == Presence::Present {
                e.pres = Presence::Maybe;
            }
        }
    }

    /// Every object may have been removed: Present → Maybe across the map.
    fn downgrade_all(&mut self) {
        for e in self.known.values_mut() {
            if e.pres == Presence::Present {
                e.pres = Presence::Maybe;
            }
        }
    }

    /// The object may have been created here (a create whose success is
    /// unprovable). A definitely-present entry is left alone — the engine's
    /// duplicate check would have failed the create.
    fn uncertain_create(&mut self, key: &str, info: T) {
        match self.presence(key) {
            Presence::Present => {}
            Presence::Absent => self.set(key.to_string(), Presence::Maybe, info),
            Presence::Maybe => self.set(key.to_string(), Presence::Maybe, T::default()),
        }
    }

    /// Could this namespace hold *any* object right now?
    fn maybe_nonempty(&self) -> bool {
        self.fog || self.known.values().any(|e| e.pres != Presence::Absent)
    }

    fn definitely_present(&self) -> impl Iterator<Item = (&String, &T)> {
        self.known.iter().filter(|(_, e)| e.pres == Presence::Present).map(|(k, e)| (k, &e.info))
    }
}

/// A namespace keyed by something other than a single name (generic DDL
/// objects, grants).
#[derive(Clone, Debug)]
pub(crate) struct KeyedNs<K: Ord + Clone> {
    known: BTreeMap<K, Presence>,
    fog: bool,
}

impl<K: Ord + Clone> Default for KeyedNs<K> {
    fn default() -> Self {
        KeyedNs { known: BTreeMap::new(), fog: false }
    }
}

impl<K: Ord + Clone> KeyedNs<K> {
    fn presence(&self, key: &K) -> Presence {
        match self.known.get(key) {
            Some(p) => *p,
            None if self.fog => Presence::Maybe,
            None => Presence::Absent,
        }
    }

    fn set(&mut self, key: K, pres: Presence) {
        self.known.insert(key, pres);
    }

    fn fog(&mut self) {
        self.known.clear();
        self.fog = true;
    }

    fn uncertain_create(&mut self, key: &K) {
        if self.presence(key) != Presence::Present {
            self.set(key.clone(), Presence::Maybe);
        }
    }

    fn downgrade(&mut self, key: &K) {
        if let Some(p) = self.known.get_mut(key) {
            if *p == Presence::Present {
                *p = Presence::Maybe;
            }
        }
    }
}

/// Abstract image of `lego_dbms::catalog::Catalog` — everything a
/// transaction snapshot captures and `ROLLBACK` restores. Index, trigger and
/// rule entries carry the (normalized) table they hang off, `None` when
/// unknown, so `DROP TABLE` cascades can be modelled.
#[derive(Clone, Debug, Default)]
pub(crate) struct CatalogState {
    tables: Ns<Option<Vec<String>>>, // columns (normalized), None = unknown
    views: Ns<Option<bool>>,         // materialized?, None = unknown
    indexes: Ns<Option<String>>,
    triggers: Ns<Option<String>>,
    rules: Ns<Option<String>>,
    generic: KeyedNs<(ObjectKind, String)>,
    grants: KeyedNs<(String, String)>, // (grantee, object), both normalized
}

impl CatalogState {
    fn fog(&mut self) {
        self.tables.fog();
        self.views.fog();
        self.indexes.fog();
        self.triggers.fog();
        self.rules.fog();
        self.generic.fog();
        self.grants.fog();
    }

    fn relation(&self, key: &str) -> (Presence, Presence) {
        (self.tables.presence(key), self.views.presence(key))
    }

    /// `Catalog::drop_table` cascade: indexes/triggers/rules on `t` go away.
    /// `definite` distinguishes a proven drop from a possible one. Entries
    /// whose table is unknown may or may not be on `t`, so they degrade to
    /// `Maybe` either way.
    fn cascade_drop(&mut self, t: &str, definite: bool) {
        for ns in [&mut self.indexes, &mut self.triggers, &mut self.rules] {
            for e in ns.known.values_mut() {
                if e.pres == Presence::Absent {
                    continue;
                }
                match &e.info {
                    Some(on) if on == t => {
                        if definite {
                            e.pres = Presence::Absent;
                        } else if e.pres == Presence::Present {
                            e.pres = Presence::Maybe;
                        }
                    }
                    Some(_) => {}
                    None => {
                        if e.pres == Presence::Present {
                            e.pres = Presence::Maybe;
                        }
                    }
                }
            }
        }
    }
}

/// Who the session user is. The engine compares `user == "admin"` exactly
/// (no case folding), so `Named` keeps the exact string.
#[derive(Clone, PartialEq, Eq, Debug)]
enum UserState {
    Admin,
    Named(String),
    Unknown,
}

/// The abstract interpreter. One instance walks one statement sequence.
#[derive(Clone, Debug)]
pub struct Binder {
    prof: Profile,
    cat: CatalogState,
    /// Is a transaction open? The snapshot is only tracked when provably so.
    txn: Tri,
    /// Catalog image at `BEGIN`, when the `BEGIN` was provably clean.
    /// `None` with `txn == Yes` means "open, but snapshot unknown".
    txn_snapshot: Option<Box<CatalogState>>,
    /// Exact savepoint stack (names normalized) — only meaningful when
    /// `!sp_fog`. Under fog the stack contents are unknown.
    savepoints: Vec<(String, CatalogState)>,
    sp_fog: bool,
    settings: Ns<()>,
    user: UserState,
    cursors: Ns<()>,
    prepared: Ns<()>,
    /// Prepared-transaction gids — the one namespace the engine does *not*
    /// case-fold.
    prepared_txns: Ns<()>,
    xa: Tri,
    /// Table locks (normalized name → mode; `None` = unknown mode).
    locks: Ns<Option<String>>,
}

fn acc() -> StmtVerdict {
    StmtVerdict { verdict: Verdict::Accept, reason: None }
}

fn rej(reason: &'static str) -> StmtVerdict {
    StmtVerdict { verdict: Verdict::Reject, reason: Some(reason) }
}

fn unk() -> StmtVerdict {
    StmtVerdict { verdict: Verdict::Unknown, reason: None }
}

impl Binder {
    pub fn new(prof: Profile) -> Binder {
        Binder {
            prof,
            cat: CatalogState::default(),
            txn: Tri::No,
            txn_snapshot: None,
            savepoints: Vec::new(),
            sp_fog: false,
            settings: Ns::default(),
            user: UserState::Admin,
            cursors: Ns::default(),
            prepared: Ns::default(),
            prepared_txns: Ns::default(),
            xa: Tri::No,
            locks: Ns::default(),
        }
    }

    pub fn profile(&self) -> &Profile {
        &self.prof
    }

    // -- public scope queries (dependency-aware mutation uses these) --------

    /// Tables proven to exist at this point, in sorted order.
    pub fn tables_in_scope(&self) -> Vec<String> {
        self.cat.tables.definitely_present().map(|(k, _)| k.clone()).collect()
    }

    /// Tables *and* views proven to exist at this point, in sorted order.
    pub fn relations_in_scope(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.cat.tables.definitely_present().map(|(k, _)| k.clone()).collect();
        v.extend(self.cat.views.definitely_present().map(|(k, _)| k.clone()));
        v.sort();
        v
    }

    /// The (normalized) columns of `table`, when both the table and its
    /// column list are statically known.
    pub fn table_columns(&self, table: &str) -> Option<&[String]> {
        let key = norm(table);
        if self.cat.tables.presence(&key) != Presence::Present {
            return None;
        }
        self.cat.tables.info(&key).and_then(|c| c.as_deref())
    }

    /// Is `name` provably neither a table nor a view right now?
    pub fn relation_definitely_absent(&self, name: &str) -> bool {
        self.cat.relation(&norm(name)) == (Presence::Absent, Presence::Absent)
    }

    /// Is a transaction open?
    pub fn txn_state(&self) -> Tri {
        self.txn
    }

    // -- helpers -------------------------------------------------------------

    fn stack_maybe_nonempty(&self) -> bool {
        self.sp_fog || !self.savepoints.is_empty()
    }

    /// Savepoints may or may not have been cleared — forget the exact stack.
    fn uncertain_clear_savepoints(&mut self) {
        if self.stack_maybe_nonempty() {
            self.savepoints.clear();
            self.sp_fog = true;
        }
    }

    fn clear_savepoints(&mut self) {
        self.savepoints.clear();
        self.sp_fog = false;
    }

    /// Could a trigger or rule fire (and run an arbitrary nested statement)?
    fn hooks_possible(&self) -> bool {
        (self.prof.has_triggers && self.cat.triggers.maybe_nonempty())
            || (self.prof.has_rules && self.cat.rules.maybe_nonempty())
    }

    /// Could a rule rewrite DML that targets `tkey` (normalized)?
    fn rules_possible_on(&self, tkey: &str) -> bool {
        self.prof.has_rules
            && (self.cat.rules.fog
                || self.cat.rules.known.values().any(|e| {
                    e.pres != Presence::Absent
                        && e.info.as_deref().map(|on| on == tkey).unwrap_or(true)
                }))
    }

    fn index_possible_on(&self, tkey: &str) -> bool {
        self.cat.indexes.fog
            || self.cat.indexes.known.values().any(|e| {
                e.pres != Presence::Absent && e.info.as_deref().map(|on| on == tkey).unwrap_or(true)
            })
    }

    fn index_definitely_on(&self, tkey: &str) -> bool {
        self.cat
            .indexes
            .known
            .values()
            .any(|e| e.pres == Presence::Present && e.info.as_deref() == Some(tkey))
    }

    /// Outcome of `Session::check_privilege(table, _)` for the current user.
    /// `Maybe` for a named non-admin with a grant entry: the entry proves a
    /// grant happened, not that it covers the specific privilege.
    fn priv_ok(&self, table: &str) -> Tri {
        if !self.prof.check_privileges {
            return Tri::Yes;
        }
        match &self.user {
            UserState::Admin => Tri::Yes,
            UserState::Unknown => Tri::Maybe,
            UserState::Named(u) => match self.cat.grants.presence(&(norm(u), norm(table))) {
                Presence::Absent => Tri::No,
                _ => Tri::Maybe,
            },
        }
    }

    /// Static verdict for a query (`run_query`). Reject only fires on the
    /// one eagerly-resolved FROM shape; Accept only on literal-projection
    /// queries under the admin user (both pinned against the engine by the
    /// crate tests).
    fn query_verdict(&self, q: &Query) -> Verdict {
        if let Some(name) = types::single_named_from(q) {
            if self.cat.relation(&norm(name)) == (Presence::Absent, Presence::Absent) {
                return Verdict::Reject;
            }
        }
        if types::query_always_ok(q) && self.user == UserState::Admin {
            return Verdict::Accept;
        }
        Verdict::Unknown
    }

    /// Everything is lost: a trigger/rule action may have run an arbitrary
    /// nested statement (including TCL), so no fact survives.
    fn fog_all(&mut self) {
        self.cat.fog();
        self.txn = Tri::Maybe;
        self.txn_snapshot = None;
        self.savepoints.clear();
        self.sp_fog = true;
        self.settings.fog();
        self.user = UserState::Unknown;
        self.cursors.fog();
        self.prepared.fog();
        self.prepared_txns.fog();
        self.xa = Tri::Maybe;
        self.locks.fog();
    }

    /// DML reached the engine's mutation path (verdict was not Reject):
    /// row-level effects are untracked, but hooks can rewrite the world.
    fn dml_effects(&mut self) {
        if self.hooks_possible() {
            self.fog_all();
        }
    }

    /// MySQL-family implicit commit before DDL:
    /// `if txn.is_some() { txn = None; savepoints.clear(); }` — locks stay.
    fn implicit_commit(&mut self) {
        match self.txn {
            Tri::No => {}
            Tri::Yes => {
                self.txn = Tri::No;
                self.txn_snapshot = None;
                self.clear_savepoints();
            }
            Tri::Maybe => {
                self.txn = Tri::No;
                self.txn_snapshot = None;
                self.uncertain_clear_savepoints();
            }
        }
    }

    // -- the interpreter ------------------------------------------------------

    /// Advance the abstract state over `stmt` and classify it.
    pub fn step(&mut self, stmt: &Statement) -> StmtVerdict {
        let kind = stmt.kind();
        if !self.prof.dialect.supports(kind) {
            return rej("statement kind not supported by this dialect");
        }
        if self.prof.ddl_implicit_commit && matches!(kind, StmtKind::Ddl(..)) {
            self.implicit_commit();
        }
        self.dispatch(stmt)
    }

    fn dispatch(&mut self, stmt: &Statement) -> StmtVerdict {
        match stmt {
            Statement::CreateTable(c) => self.step_create_table(c),
            Statement::CreateView(v) => {
                let key = norm(&v.name);
                let (tp, vp) = self.cat.relation(&key);
                let qv = self.query_verdict(&v.query);
                let verdict = if !self.prof.has_views {
                    rej("views are not supported")
                } else if v.materialized && !self.prof.has_matviews {
                    rej("materialized views are not supported")
                } else if qv == Verdict::Reject {
                    rej("view query references a missing relation")
                } else if tp == Presence::Present {
                    rej("a table with this name already exists")
                } else if vp == Presence::Present && !v.or_replace {
                    rej("view already exists")
                } else {
                    unk()
                };
                if verdict.verdict != Verdict::Reject {
                    // May have (re)created the view; OR REPLACE can change
                    // the materialized flag of an existing entry.
                    match vp {
                        Presence::Present => {
                            if self.cat.views.info(&key) != Some(&Some(v.materialized)) {
                                self.cat.views.set(key, Presence::Present, None);
                            }
                        }
                        Presence::Absent => {
                            self.cat.views.set(key, Presence::Maybe, Some(v.materialized));
                        }
                        Presence::Maybe => self.cat.views.set(key, Presence::Maybe, None),
                    }
                }
                verdict
            }
            Statement::CreateIndex(i) => {
                let key = norm(&i.name);
                let tkey = norm(&i.table);
                let ip = self.cat.indexes.presence(&key);
                let tp = self.cat.tables.presence(&tkey);
                let cols = self.cat.tables.info(&tkey).cloned().flatten();
                let col_missing = cols
                    .as_ref()
                    .map(|cs| i.columns.iter().any(|c| !cs.contains(&norm(c))))
                    .unwrap_or(false);
                let verdict = if ip == Presence::Present {
                    rej("index already exists")
                } else if tp == Presence::Absent {
                    rej("relation does not exist")
                } else if tp == Presence::Present && col_missing {
                    rej("indexed column does not exist")
                } else if ip == Presence::Absent
                    && tp == Presence::Present
                    && cols.is_some()
                    && !col_missing
                    && !i.unique
                {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    Verdict::Accept => self.cat.indexes.set(key, Presence::Present, Some(tkey)),
                    Verdict::Unknown => self.cat.indexes.uncertain_create(&key, Some(tkey)),
                    Verdict::Reject => {}
                }
                verdict
            }
            Statement::CreateTrigger(t) => {
                let key = norm(&t.name);
                let tkey = norm(&t.table);
                let tp = self.cat.tables.presence(&tkey);
                let trp = self.cat.triggers.presence(&key);
                let verdict = if !self.prof.has_triggers {
                    rej("triggers are not supported")
                } else if tp == Presence::Absent {
                    rej("relation does not exist")
                } else if trp == Presence::Present {
                    rej("trigger already exists")
                } else if tp == Presence::Present && trp == Presence::Absent {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    Verdict::Accept => self.cat.triggers.set(key, Presence::Present, Some(tkey)),
                    Verdict::Unknown => self.cat.triggers.uncertain_create(&key, Some(tkey)),
                    Verdict::Reject => {}
                }
                verdict
            }
            Statement::CreateRule(r) => {
                let key = norm(&r.name);
                let tkey = norm(&r.table);
                let (tp, vp) = self.cat.relation(&tkey);
                let rp = self.cat.rules.presence(&key);
                let verdict = if !self.prof.has_rules {
                    rej("rules are not supported")
                } else if tp == Presence::Absent && vp == Presence::Absent {
                    rej("relation does not exist")
                } else if rp == Presence::Present && !r.or_replace {
                    rej("rule already exists")
                } else if (tp == Presence::Present || vp == Presence::Present)
                    && (rp == Presence::Absent || r.or_replace)
                {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    Verdict::Accept => self.cat.rules.set(key, Presence::Present, Some(tkey)),
                    Verdict::Unknown => self.cat.rules.uncertain_create(&key, Some(tkey)),
                    Verdict::Reject => {}
                }
                verdict
            }
            Statement::CreateTableAs { name, query } => {
                let key = norm(name);
                let (tp, vp) = self.cat.relation(&key);
                let qv = self.query_verdict(query);
                let verdict = if qv == Verdict::Reject {
                    rej("query references a missing relation")
                } else if tp == Presence::Present || vp == Presence::Present {
                    rej("relation already exists")
                } else if qv == Verdict::Accept && tp == Presence::Absent && vp == Presence::Absent
                {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    // Column names come from the query — not tracked.
                    Verdict::Accept => self.cat.tables.set(key, Presence::Present, None),
                    Verdict::Unknown => self.cat.tables.uncertain_create(&key, None),
                    Verdict::Reject => {}
                }
                verdict
            }
            Statement::AlterTable(a) => self.step_alter_table(a),
            Statement::Drop(d) => {
                let key = norm(&d.name);
                let (pres, is_table) = match d.object {
                    ObjectKind::Table => (self.cat.tables.presence(&key), true),
                    ObjectKind::View | ObjectKind::MaterializedView => {
                        (self.cat.views.presence(&key), false)
                    }
                    ObjectKind::Index => (self.cat.indexes.presence(&key), false),
                    ObjectKind::Trigger => (self.cat.triggers.presence(&key), false),
                    ObjectKind::Rule => (self.cat.rules.presence(&key), false),
                    other => (self.cat.generic.presence(&(other, key.clone())), false),
                };
                let verdict = match pres {
                    Presence::Present => acc(),
                    Presence::Absent if d.if_exists => acc(), // no-op success
                    Presence::Absent => rej("object does not exist"),
                    Presence::Maybe => unk(),
                };
                match (verdict.verdict, pres) {
                    (Verdict::Accept, Presence::Present) => match d.object {
                        ObjectKind::Table => {
                            self.cat.tables.set_absent(key.clone());
                            self.cat.cascade_drop(&key, true);
                        }
                        ObjectKind::View | ObjectKind::MaterializedView => {
                            self.cat.views.set_absent(key)
                        }
                        ObjectKind::Index => self.cat.indexes.set_absent(key),
                        ObjectKind::Trigger => self.cat.triggers.set_absent(key),
                        ObjectKind::Rule => self.cat.rules.set_absent(key),
                        other => self.cat.generic.set((other, key), Presence::Absent),
                    },
                    (Verdict::Unknown, _) => {
                        match d.object {
                            ObjectKind::Table => {
                                self.cat.tables.downgrade(&key);
                                self.cat.cascade_drop(&key, false);
                            }
                            ObjectKind::View | ObjectKind::MaterializedView => {
                                self.cat.views.downgrade(&key)
                            }
                            ObjectKind::Index => self.cat.indexes.downgrade(&key),
                            ObjectKind::Trigger => self.cat.triggers.downgrade(&key),
                            ObjectKind::Rule => self.cat.rules.downgrade(&key),
                            other => self.cat.generic.downgrade(&(other, key)),
                        }
                        let _ = is_table;
                    }
                    _ => {}
                }
                verdict
            }
            Statement::GenericDdl(g) => {
                use lego_sqlast::DdlVerb;
                let gkey = (g.object, norm(&g.name));
                let pres = self.cat.generic.presence(&gkey);
                let verdict = match g.verb {
                    DdlVerb::Create => match pres {
                        Presence::Absent => acc(),
                        Presence::Present => rej("object already exists"),
                        Presence::Maybe => unk(),
                    },
                    DdlVerb::Alter | DdlVerb::Drop => match pres {
                        Presence::Present => acc(),
                        Presence::Absent => rej("object does not exist"),
                        Presence::Maybe => unk(),
                    },
                };
                match (g.verb, verdict.verdict) {
                    (DdlVerb::Create, Verdict::Accept) => {
                        self.cat.generic.set(gkey, Presence::Present)
                    }
                    (DdlVerb::Create, Verdict::Unknown) => self.cat.generic.uncertain_create(&gkey),
                    (DdlVerb::Drop, Verdict::Accept) => {
                        self.cat.generic.set(gkey, Presence::Absent)
                    }
                    (DdlVerb::Drop, Verdict::Unknown) => self.cat.generic.downgrade(&gkey),
                    _ => {} // Alter only bumps a version counter
                }
                verdict
            }
            Statement::Select(s) => match &s.variant {
                SelectVariant::Into(target) => {
                    let key = norm(target);
                    let (tp, vp) = self.cat.relation(&key);
                    let qv = self.query_verdict(&s.query);
                    let ctas_ok =
                        self.prof.dialect.supports(StmtKind::Other(StandaloneKind::CreateTableAs));
                    let verdict = if qv == Verdict::Reject {
                        rej("query references a missing relation")
                    } else if !ctas_ok {
                        rej("CREATE TABLE AS is not supported by this dialect")
                    } else if tp == Presence::Present || vp == Presence::Present {
                        rej("relation already exists")
                    } else if qv == Verdict::Accept
                        && tp == Presence::Absent
                        && vp == Presence::Absent
                    {
                        acc()
                    } else {
                        unk()
                    };
                    match verdict.verdict {
                        Verdict::Accept => self.cat.tables.set(key, Presence::Present, None),
                        Verdict::Unknown => self.cat.tables.uncertain_create(&key, None),
                        Verdict::Reject => {}
                    }
                    verdict
                }
                _ => match self.query_verdict(&s.query) {
                    Verdict::Accept => acc(),
                    Verdict::Reject => rej("query references a missing relation"),
                    Verdict::Unknown => unk(),
                },
            },
            Statement::Insert(i) => {
                let tkey = norm(&i.table);
                let pv = self.priv_ok(&i.table);
                let rewrite = self.rules_possible_on(&tkey);
                let (tp, vp) = self.cat.relation(&tkey);
                let verdict = if pv == Tri::No {
                    rej("permission denied")
                } else if !rewrite && vp == Presence::Present {
                    rej("cannot insert into a view")
                } else if !rewrite && tp == Presence::Absent {
                    rej("relation does not exist")
                } else {
                    unk()
                };
                if verdict.verdict != Verdict::Reject {
                    self.dml_effects();
                }
                verdict
            }
            Statement::Update(u) => {
                let tkey = norm(&u.table);
                let pv = self.priv_ok(&u.table);
                let rewrite = self.rules_possible_on(&tkey);
                let verdict = if pv == Tri::No {
                    rej("permission denied")
                } else if !rewrite && self.cat.tables.presence(&tkey) == Presence::Absent {
                    rej("relation does not exist")
                } else {
                    unk()
                };
                if verdict.verdict != Verdict::Reject {
                    self.dml_effects();
                }
                verdict
            }
            Statement::Delete(d) => {
                let tkey = norm(&d.table);
                let pv = self.priv_ok(&d.table);
                let rewrite = self.rules_possible_on(&tkey);
                let verdict = if pv == Tri::No {
                    rej("permission denied")
                } else if !rewrite && self.cat.tables.presence(&tkey) == Presence::Absent {
                    rej("relation does not exist")
                } else {
                    unk()
                };
                if verdict.verdict != Verdict::Reject {
                    self.dml_effects();
                }
                verdict
            }
            Statement::With(w) => {
                // CTE errors surface lazily and the body runs nested; no
                // statically-provable outcome either way. Query CTEs
                // materialize temp tables that are dropped afterwards (net
                // zero), but their add can fail and DML CTE effects persist.
                if self.hooks_possible() {
                    self.fog_all();
                } else {
                    for cte in &w.ctes {
                        match &cte.body {
                            CteBody::Dml(dml) => self.apply_uncertain(dml),
                            CteBody::Query(_) => {
                                // Materialized then dropped; a body statement
                                // observing it mid-flight is already covered
                                // by apply_uncertain on the body.
                            }
                        }
                    }
                    self.apply_uncertain(&w.body);
                }
                unk()
            }
            Statement::Values(_) => acc(),
            Statement::Truncate { table } => {
                let pv = self.priv_ok(table);
                let tp = self.cat.tables.presence(&norm(table));
                if pv == Tri::No {
                    rej("permission denied")
                } else if tp == Presence::Absent {
                    rej("table does not exist")
                } else if pv == Tri::Yes && tp == Presence::Present {
                    acc() // row-level effect only
                } else {
                    unk()
                }
            }
            Statement::Copy(c) => match (&c.source, c.direction) {
                (CopySource::Query(_), CopyDirection::From) => rej("cannot COPY FROM into a query"),
                (CopySource::Query(q), CopyDirection::To) => match self.query_verdict(q) {
                    Verdict::Reject => rej("query references a missing relation"),
                    Verdict::Accept => acc(),
                    Verdict::Unknown => unk(),
                },
                (CopySource::Table { name, columns }, CopyDirection::To) => {
                    let pv = self.priv_ok(name);
                    let tkey = norm(name);
                    let tp = self.cat.tables.presence(&tkey);
                    let cols = self.cat.tables.info(&tkey).cloned().flatten();
                    let col_missing = cols
                        .as_ref()
                        .map(|cs| columns.iter().any(|c| !cs.contains(&norm(c))))
                        .unwrap_or(false);
                    if pv == Tri::No {
                        rej("permission denied")
                    } else if tp == Presence::Absent {
                        rej("relation does not exist")
                    } else if tp == Presence::Present && col_missing {
                        rej("column does not exist")
                    } else if pv == Tri::Yes
                        && tp == Presence::Present
                        && (columns.is_empty() || (cols.is_some() && !col_missing))
                    {
                        acc()
                    } else {
                        unk()
                    }
                }
                (CopySource::Table { name, .. }, CopyDirection::From) => {
                    let pv = self.priv_ok(name);
                    let tp = self.cat.tables.presence(&norm(name));
                    if pv == Tri::No {
                        rej("permission denied")
                    } else if tp == Presence::Absent {
                        rej("relation does not exist")
                    } else if pv == Tri::Yes && tp == Presence::Present {
                        acc() // no stdin in the harness: zero rows transferred
                    } else {
                        unk()
                    }
                }
            },
            Statement::Grant(g) => {
                self.cat.grants.set((norm(&g.grantee), norm(&g.object)), Presence::Present);
                acc()
            }
            Statement::Revoke(g) => {
                // The engine retains within an existing privilege entry (the
                // entry itself survives, even emptied), so no state change.
                match self.cat.grants.presence(&(norm(&g.grantee), norm(&g.object))) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("no privileges to revoke"),
                    Presence::Maybe => unk(),
                }
            }
            Statement::Begin | Statement::StartTransaction => {
                let verdict = match self.txn {
                    Tri::No => acc(),
                    Tri::Yes => rej("there is already a transaction in progress"),
                    Tri::Maybe => unk(),
                };
                match verdict.verdict {
                    Verdict::Accept => {
                        self.txn = Tri::Yes;
                        self.txn_snapshot = Some(Box::new(self.cat.clone()));
                    }
                    // Failure leaves the old transaction (and snapshot) in
                    // place; success opens a new one — open either way.
                    Verdict::Unknown => {
                        self.txn = Tri::Yes;
                        self.txn_snapshot = None;
                    }
                    Verdict::Reject => {}
                }
                verdict
            }
            Statement::Commit | Statement::End => {
                let mut verdict = match self.txn {
                    Tri::Yes => acc(),
                    Tri::No => rej("there is no transaction in progress"),
                    Tri::Maybe => unk(),
                };
                // `txn.take()` runs on both paths: closed afterwards always.
                let true_verdict = verdict.verdict;
                self.txn = Tri::No;
                self.txn_snapshot = None;
                match true_verdict {
                    Verdict::Accept => {
                        self.clear_savepoints();
                        self.locks.clear_definite();
                    }
                    Verdict::Unknown => {
                        self.uncertain_clear_savepoints();
                        self.locks.downgrade_all();
                    }
                    Verdict::Reject => {}
                }
                if true_verdict == Verdict::Reject && crate::faults::overaccept_commit() {
                    // Planted analyzer bug (test-only): claim the COMMIT is
                    // fine even though no transaction can be open. The state
                    // transition above stays honest — only the verdict lies.
                    verdict = acc();
                }
                verdict
            }
            Statement::Rollback | Statement::Abort => {
                let verdict = match self.txn {
                    Tri::Yes => acc(),
                    Tri::No => rej("there is no transaction in progress"),
                    Tri::Maybe => unk(),
                };
                match verdict.verdict {
                    Verdict::Accept => {
                        match self.txn_snapshot.take() {
                            Some(snap) => self.cat = *snap,
                            // Open, but the snapshot contents are unknown
                            // (a BEGIN we could not prove clean).
                            None => self.cat.fog(),
                        }
                        self.clear_savepoints();
                        self.locks.clear_definite();
                    }
                    Verdict::Unknown => {
                        self.cat.fog();
                        self.uncertain_clear_savepoints();
                        self.locks.downgrade_all();
                    }
                    Verdict::Reject => {}
                }
                self.txn = Tri::No;
                self.txn_snapshot = None;
                verdict
            }
            Statement::Savepoint(name) => {
                let verdict = match self.txn {
                    Tri::Yes => acc(),
                    Tri::No => rej("SAVEPOINT can only be used in transaction blocks"),
                    Tri::Maybe => unk(),
                };
                match verdict.verdict {
                    Verdict::Accept if !self.sp_fog => {
                        self.savepoints.push((norm(name), self.cat.clone()));
                    }
                    Verdict::Accept | Verdict::Unknown => self.sp_fog = true,
                    Verdict::Reject => {}
                }
                verdict
            }
            Statement::ReleaseSavepoint(name) => {
                // No transaction precondition in the engine.
                if self.sp_fog {
                    return unk();
                }
                let key = norm(name);
                match self.savepoints.iter().rposition(|(n, _)| *n == key) {
                    Some(i) => {
                        self.savepoints.truncate(i);
                        acc()
                    }
                    None => rej("savepoint does not exist"),
                }
            }
            Statement::RollbackToSavepoint(name) => {
                if self.sp_fog {
                    // May have restored an unknown snapshot.
                    self.cat.fog();
                    return unk();
                }
                let key = norm(name);
                match self.savepoints.iter().rposition(|(n, _)| *n == key) {
                    Some(i) => {
                        self.cat = self.savepoints[i].1.clone();
                        self.savepoints.truncate(i + 1);
                        acc()
                    }
                    None => rej("savepoint does not exist"),
                }
            }
            Statement::Set(s) => {
                self.settings.set(norm(&s.name), Presence::Present, ());
                acc()
            }
            Statement::Reset(name) => {
                let key = norm(name);
                match self.settings.presence(&key) {
                    Presence::Present => {
                        self.settings.set_absent(key);
                        acc()
                    }
                    Presence::Absent => rej("unrecognized configuration parameter"),
                    Presence::Maybe => {
                        self.settings.downgrade(&key);
                        unk()
                    }
                }
            }
            Statement::Show(name) => {
                let key = norm(name);
                if key == "server_version" {
                    return acc();
                }
                match self.settings.presence(&key) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("unrecognized configuration parameter"),
                    Presence::Maybe => unk(),
                }
            }
            Statement::Pragma { name, .. } => {
                self.settings.set(format!("pragma.{}", norm(name)), Presence::Present, ());
                acc()
            }
            Statement::Analyze(table) => match table {
                None => acc(),
                Some(t) => match self.cat.tables.presence(&norm(t)) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("relation does not exist"),
                    Presence::Maybe => unk(),
                },
            },
            Statement::Vacuum { table, .. } => match table {
                None => acc(),
                Some(t) => match self.cat.tables.presence(&norm(t)) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("relation does not exist"),
                    Presence::Maybe => unk(),
                },
            },
            Statement::Explain(inner) => match &**inner {
                // EXPLAIN plans the query (it can fail) but executes nothing
                // else; non-SELECT inners are never executed at all.
                Statement::Select(s) => match self.query_verdict(&s.query) {
                    Verdict::Accept => acc(),
                    Verdict::Reject => rej("query references a missing relation"),
                    Verdict::Unknown => unk(),
                },
                _ => acc(),
            },
            Statement::Reindex(table) => match table {
                None => acc(),
                Some(t) => match self.cat.tables.presence(&norm(t)) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("relation does not exist"),
                    Presence::Maybe => unk(),
                },
            },
            Statement::Checkpoint => acc(),
            Statement::Cluster(table) => match table {
                None => acc(),
                Some(t) => {
                    let tkey = norm(t);
                    let tp = self.cat.tables.presence(&tkey);
                    if tp == Presence::Absent {
                        rej("relation does not exist")
                    } else if tp == Presence::Present && !self.index_possible_on(&tkey) {
                        rej("no clusterable index")
                    } else if tp == Presence::Present && self.index_definitely_on(&tkey) {
                        acc()
                    } else {
                        unk()
                    }
                }
            },
            Statement::Discard(what) => {
                if what.eq_ignore_ascii_case("ALL") {
                    self.settings.clear_definite();
                    self.prepared.clear_definite();
                    self.cursors.clear_definite();
                }
                acc()
            }
            Statement::Listen(_) | Statement::Unlisten(_) | Statement::Notify { .. } => acc(),
            Statement::LockTable { table, mode } => {
                let tkey = norm(table);
                let tp = self.cat.tables.presence(&tkey);
                let mode = mode.clone().unwrap_or_else(|| "ACCESS EXCLUSIVE".into());
                let held = self.locks.presence(&tkey);
                let held_mode = self.locks.info(&tkey).cloned().flatten();
                let conflict_definite = held == Presence::Present
                    && held_mode.as_deref().map(|m| m != mode).unwrap_or(false);
                let no_conflict_definite = held == Presence::Absent
                    || (held == Presence::Present && held_mode.as_deref() == Some(&mode));
                let verdict = if tp == Presence::Absent {
                    rej("relation does not exist")
                } else if conflict_definite {
                    rej("lock mode conflict")
                } else if tp == Presence::Present && no_conflict_definite {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    Verdict::Accept => self.locks.set(tkey, Presence::Present, Some(mode)),
                    Verdict::Unknown => {
                        // Success inserts (table, mode); failure leaves state.
                        match held {
                            Presence::Present if held_mode.as_deref() == Some(&mode) => {}
                            Presence::Present => self.locks.set(tkey, Presence::Present, None),
                            _ => self.locks.set(tkey, Presence::Maybe, None),
                        }
                    }
                    Verdict::Reject => {}
                }
                verdict
            }
            Statement::Comment { object, name, .. } => {
                let key = norm(name);
                let pres = match object {
                    ObjectKind::Table => self.cat.tables.presence(&key),
                    ObjectKind::View => self.cat.views.presence(&key),
                    ObjectKind::Index => self.cat.indexes.presence(&key),
                    other => self.cat.generic.presence(&(*other, key)),
                };
                match pres {
                    Presence::Present => acc(),
                    Presence::Absent => rej("object does not exist"),
                    Presence::Maybe => unk(),
                }
            }
            Statement::Call { name, .. } => {
                match self.cat.generic.presence(&(ObjectKind::Procedure, norm(name))) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("procedure does not exist"),
                    Presence::Maybe => unk(),
                }
            }
            Statement::RefreshMatView(name) => {
                let key = norm(name);
                match self.cat.views.presence(&key) {
                    Presence::Absent => rej("materialized view does not exist"),
                    Presence::Present if self.cat.views.info(&key) == Some(&Some(false)) => {
                        rej("not a materialized view")
                    }
                    // The refresh re-runs the stored query — not provable.
                    _ => unk(),
                }
            }
            Statement::Misc(m) => self.step_misc(m),
        }
    }

    fn step_create_table(&mut self, c: &CreateTable) -> StmtVerdict {
        let key = norm(&c.name);
        let (tp, vp) = self.cat.relation(&key);

        // `IF NOT EXISTS` early-out consults the *tables* map only.
        if c.if_not_exists && tp == Presence::Present {
            return acc(); // Ok(0), no state change
        }
        let early_ok_possible = c.if_not_exists && tp != Presence::Absent;

        let cols: Vec<String> = c.columns.iter().map(|cd| norm(&cd.name)).collect();
        let mut sorted = cols.clone();
        sorted.sort();
        let dup_col = sorted.windows(2).any(|w| w[0] == w[1]);
        let key_col_missing = c.constraints.iter().any(|tc| match tc {
            TableConstraint::PrimaryKey(names) | TableConstraint::Unique(names) => {
                names.iter().any(|n| !cols.contains(&norm(n)))
            }
            _ => false,
        });

        // Foreign keys: column-level References are exempt when they point
        // at the table being created; table-level FKs are checked before the
        // table is added, so even a self-reference must already resolve.
        let mut fk_bad = false; // provably violated
        let mut fk_good = true; // provably satisfied
        if self.prof.enforces_foreign_keys {
            for cd in &c.columns {
                for con in &cd.constraints {
                    if let ColumnConstraint::References { table, .. } = con {
                        if table.is_empty() || table.eq_ignore_ascii_case(&c.name) {
                            continue;
                        }
                        match self.cat.tables.presence(&norm(table)) {
                            Presence::Present => {}
                            Presence::Absent => {
                                fk_bad = true;
                                fk_good = false;
                            }
                            Presence::Maybe => fk_good = false,
                        }
                    }
                }
            }
            for tc in &c.constraints {
                if let TableConstraint::ForeignKey { ref_table, .. } = tc {
                    match self.cat.tables.presence(&norm(ref_table)) {
                        Presence::Present => {}
                        Presence::Absent => {
                            fk_bad = true;
                            fk_good = false;
                        }
                        Presence::Maybe => fk_good = false,
                    }
                }
            }
        }

        // Reject: provable error on the full-create path, and the IF NOT
        // EXISTS early-out provably not taken.
        if !early_ok_possible {
            let full_path_reject = if c.columns.is_empty() {
                Some(rej("a table must have at least one column"))
            } else if dup_col {
                Some(rej("column specified more than once"))
            } else if fk_bad {
                Some(rej("referenced table does not exist"))
            } else if key_col_missing {
                Some(rej("column named in key does not exist"))
            } else if tp == Presence::Present || vp == Presence::Present {
                Some(rej("relation already exists"))
            } else {
                None
            };
            if let Some(v) = full_path_reject {
                return v;
            }
        }

        // Accept: every check provably passes (or the early-out provably
        // covers the duplicate-name case and the rest still passes).
        let checks_pass = !c.columns.is_empty() && !dup_col && !key_col_missing && fk_good;
        if checks_pass && vp == Presence::Absent && (tp == Presence::Absent || c.if_not_exists) {
            if tp == Presence::Absent {
                self.cat.tables.set(key, Presence::Present, Some(cols));
            } else {
                // IF NOT EXISTS with the table maybe-present: exists after
                // either path, but the columns are only known on the
                // create path.
                self.cat.tables.set(key, Presence::Present, None);
            }
            return acc();
        }

        self.cat.tables.uncertain_create(&key, None);
        unk()
    }

    fn step_alter_table(&mut self, a: &lego_sqlast::AlterTable) -> StmtVerdict {
        let tkey = norm(&a.name);
        let tp = self.cat.tables.presence(&tkey);
        if tp == Presence::Absent {
            return rej("relation does not exist");
        }
        let cols = self.cat.tables.info(&tkey).cloned().flatten();
        let known = tp == Presence::Present && cols.is_some();
        match &a.action {
            AlterTableAction::AddColumn(c) => {
                let default = c.constraints.iter().find_map(|con| match con {
                    ColumnConstraint::Default(e) => Some(e),
                    _ => None,
                });
                // The default is evaluated (in an empty row context) before
                // the duplicate check; only a literal is provably safe.
                let default_safe = default.map(types::expr_infallible).unwrap_or(true);
                let ckey = norm(&c.name);
                let has = cols.as_ref().map(|cs| cs.contains(&ckey));
                let verdict = if known && default_safe && has == Some(true) {
                    rej("column already exists")
                } else if known && default_safe && has == Some(false) {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    Verdict::Accept => {
                        let mut cs = cols.unwrap();
                        cs.push(ckey);
                        self.cat.tables.set(tkey, Presence::Present, Some(cs));
                    }
                    Verdict::Unknown => {
                        // Column list no longer certain (nor, under Maybe
                        // presence, is the table itself).
                        if tp == Presence::Present {
                            self.cat.tables.set(tkey, Presence::Present, None);
                        }
                    }
                    Verdict::Reject => {}
                }
                verdict
            }
            AlterTableAction::DropColumn(name) => {
                let ckey = norm(name);
                let has = cols.as_ref().map(|cs| cs.contains(&ckey));
                let only_col = cols.as_ref().map(|cs| cs.len() == 1).unwrap_or(false);
                let verdict = if known && has == Some(false) {
                    rej("column does not exist")
                } else if known && has == Some(true) && only_col {
                    rej("cannot drop the only column")
                } else if known && has == Some(true) && !only_col && !self.index_possible_on(&tkey)
                {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    Verdict::Accept => {
                        let mut cs = cols.unwrap();
                        cs.retain(|c| *c != ckey);
                        self.cat.tables.set(tkey, Presence::Present, Some(cs));
                    }
                    Verdict::Unknown => {
                        if tp == Presence::Present {
                            self.cat.tables.set(tkey, Presence::Present, None);
                        }
                    }
                    Verdict::Reject => {}
                }
                verdict
            }
            AlterTableAction::RenameColumn { old, new } => {
                let okey = norm(old);
                let nkey = norm(new);
                let has_old = cols.as_ref().map(|cs| cs.contains(&okey));
                let has_new = cols.as_ref().map(|cs| cs.contains(&nkey));
                let verdict = if known && has_new == Some(true) {
                    rej("column already exists")
                } else if known && has_new == Some(false) && has_old == Some(false) {
                    rej("column does not exist")
                } else if known && has_new == Some(false) && has_old == Some(true) {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    Verdict::Accept => {
                        let mut cs = cols.unwrap();
                        for c in &mut cs {
                            if *c == okey {
                                *c = nkey.clone();
                            }
                        }
                        self.cat.tables.set(tkey, Presence::Present, Some(cs));
                    }
                    Verdict::Unknown => {
                        if tp == Presence::Present {
                            self.cat.tables.set(tkey, Presence::Present, None);
                        }
                    }
                    Verdict::Reject => {}
                }
                verdict
            }
            AlterTableAction::RenameTo(new) => {
                let nkey = norm(new);
                let (ntp, nvp) = self.cat.relation(&nkey);
                let verdict = if ntp == Presence::Present || nvp == Presence::Present {
                    rej("relation already exists")
                } else if tp == Presence::Present
                    && ntp == Presence::Absent
                    && nvp == Presence::Absent
                {
                    acc()
                } else {
                    unk()
                };
                match verdict.verdict {
                    Verdict::Accept => {
                        // drop_table + add_table: old cascades away, the
                        // column list travels with the rename.
                        self.cat.tables.set_absent(tkey.clone());
                        self.cat.cascade_drop(&tkey, true);
                        self.cat.tables.set(nkey, Presence::Present, cols);
                    }
                    Verdict::Unknown => {
                        self.cat.tables.downgrade(&tkey);
                        self.cat.cascade_drop(&tkey, false);
                        self.cat.tables.uncertain_create(&nkey, None);
                    }
                    Verdict::Reject => {}
                }
                verdict
            }
            AlterTableAction::AlterColumnType { name, .. } => {
                let ckey = norm(name);
                let has = cols.as_ref().map(|cs| cs.contains(&ckey));
                // `coerce_to` is total, so a resolved column always succeeds.
                if known && has == Some(false) {
                    rej("column does not exist")
                } else if known && has == Some(true) {
                    acc()
                } else {
                    unk()
                }
            }
        }
    }

    fn step_misc(&mut self, m: &lego_sqlast::MiscStmt) -> StmtVerdict {
        use StandaloneKind as K;
        let arg1 = m.arg.as_deref().and_then(|a| a.split_whitespace().next());
        match m.kind {
            K::DeclareCursor => {
                let Some(name) = arg1 else {
                    return rej("DECLARE requires a cursor name");
                };
                let key = norm(name);
                match self.cursors.presence(&key) {
                    Presence::Present => rej("cursor already exists"),
                    Presence::Absent => {
                        self.cursors.set(key, Presence::Present, ());
                        acc()
                    }
                    Presence::Maybe => unk(),
                }
            }
            K::Fetch | K::Move => {
                let key = norm(arg1.unwrap_or_default());
                match self.cursors.presence(&key) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("cursor does not exist"),
                    Presence::Maybe => unk(),
                }
            }
            K::CloseCursor => {
                let key = norm(arg1.unwrap_or_default());
                match self.cursors.presence(&key) {
                    Presence::Present => {
                        self.cursors.set_absent(key);
                        acc()
                    }
                    Presence::Absent => rej("cursor does not exist"),
                    Presence::Maybe => unk(),
                }
            }
            K::PrepareStmt => {
                let Some(name) = arg1 else {
                    return rej("PREPARE requires a name");
                };
                let key = norm(name);
                match self.prepared.presence(&key) {
                    Presence::Present => rej("prepared statement already exists"),
                    Presence::Absent => {
                        self.prepared.set(key, Presence::Present, ());
                        acc()
                    }
                    Presence::Maybe => unk(),
                }
            }
            K::ExecuteImmediate => acc(),
            K::ExecuteStmt => {
                let key = norm(arg1.unwrap_or_default());
                match self.prepared.presence(&key) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("prepared statement does not exist"),
                    Presence::Maybe => unk(),
                }
            }
            K::Deallocate => {
                let key = norm(arg1.unwrap_or_default());
                match self.prepared.presence(&key) {
                    Presence::Present => {
                        self.prepared.set_absent(key);
                        acc()
                    }
                    Presence::Absent => rej("prepared statement does not exist"),
                    Presence::Maybe => unk(),
                }
            }
            K::XaBegin => {
                let verdict = match self.xa {
                    Tri::No => acc(),
                    Tri::Yes => rej("XA transaction already active"),
                    Tri::Maybe => unk(),
                };
                // Active after both paths.
                self.xa = Tri::Yes;
                verdict
            }
            K::XaCommit | K::XaRollback => {
                let verdict = match self.xa {
                    Tri::Yes => acc(),
                    Tri::No => rej("no active XA transaction"),
                    Tri::Maybe => unk(),
                };
                self.xa = Tri::No;
                verdict
            }
            K::PrepareTransaction => {
                let verdict = match self.txn {
                    Tri::Yes => acc(),
                    Tri::No => rej("PREPARE TRANSACTION requires a transaction"),
                    Tri::Maybe => unk(),
                };
                // `txn.take()` runs on both paths; savepoints are NOT
                // cleared (unlike COMMIT).
                self.txn = Tri::No;
                self.txn_snapshot = None;
                // Gids are stored with exact case.
                let gid = arg1.unwrap_or_default().to_string();
                match verdict.verdict {
                    Verdict::Accept => self.prepared_txns.set(gid, Presence::Present, ()),
                    Verdict::Unknown => self.prepared_txns.uncertain_create(&gid, ()),
                    Verdict::Reject => {}
                }
                verdict
            }
            K::CommitPrepared | K::RollbackPrepared => {
                let gid = arg1.unwrap_or_default().to_string();
                match self.prepared_txns.presence(&gid) {
                    Presence::Present => {
                        self.prepared_txns.set_absent(gid);
                        acc()
                    }
                    Presence::Absent => rej("prepared transaction does not exist"),
                    Presence::Maybe => {
                        self.prepared_txns.downgrade(&gid);
                        unk()
                    }
                }
            }
            K::Handler => acc(), // toggles a session flag, always Ok
            K::Use => match arg1 {
                Some(_) => acc(),
                None => rej("USE requires a database name"),
            },
            K::SetRole | K::SetSessionAuthorization => {
                self.user = match arg1 {
                    Some(u)
                        if !u.eq_ignore_ascii_case("NONE")
                            && !u.eq_ignore_ascii_case("DEFAULT") =>
                    {
                        if u == "admin" {
                            UserState::Admin
                        } else {
                            UserState::Named(u.to_string())
                        }
                    }
                    _ => UserState::Admin,
                };
                acc()
            }
            K::SetTransaction | K::SetConstraints => match self.txn {
                Tri::Yes => acc(),
                Tri::No => rej("can only be used in transaction blocks"),
                Tri::Maybe => unk(),
            },
            K::LockTables => {
                let name = arg1.unwrap_or_default();
                let key = norm(name);
                let tp = self.cat.tables.presence(&key);
                let verdict = if name.is_empty() {
                    acc()
                } else {
                    match tp {
                        Presence::Present => acc(),
                        Presence::Absent => rej("table does not exist"),
                        Presence::Maybe => unk(),
                    }
                };
                match verdict.verdict {
                    Verdict::Accept => self.locks.set(key, Presence::Present, Some("TABLE".into())),
                    Verdict::Unknown => self.locks.set(key, Presence::Maybe, None),
                    Verdict::Reject => {}
                }
                verdict
            }
            K::UnlockTables => {
                self.locks.clear_definite();
                acc()
            }
            K::RenameTable => {
                // `RENAME TABLE a TO b`, parsed from the raw arg.
                let words: Vec<&str> = m.arg.as_deref().unwrap_or("").split_whitespace().collect();
                if !(words.len() >= 3 && words[1].eq_ignore_ascii_case("TO")) {
                    return rej("malformed RENAME TABLE");
                }
                let (okey, nkey) = (norm(words[0]), norm(words[2]));
                let otp = self.cat.tables.presence(&okey);
                let ntp = self.cat.tables.presence(&nkey);
                let nvp = self.cat.views.presence(&nkey);
                // Engine order: new-name check (tables only) → drop old →
                // add new (which can still clash with a *view*).
                let verdict = if ntp == Presence::Present {
                    rej("table already exists")
                } else if otp == Presence::Absent {
                    rej("table does not exist")
                } else if otp == Presence::Present
                    && ntp == Presence::Absent
                    && nvp == Presence::Absent
                {
                    acc()
                } else {
                    unk()
                };
                let cols = self.cat.tables.info(&okey).cloned().flatten();
                match verdict.verdict {
                    Verdict::Accept => {
                        self.cat.tables.set_absent(okey.clone());
                        self.cat.cascade_drop(&okey, true);
                        self.cat.tables.set(nkey, Presence::Present, cols);
                    }
                    Verdict::Unknown => {
                        // The drop can succeed and the re-add still fail on
                        // a view clash, losing the table entirely.
                        self.cat.tables.downgrade(&okey);
                        self.cat.cascade_drop(&okey, false);
                        self.cat.tables.uncertain_create(&nkey, None);
                    }
                    Verdict::Reject => {}
                }
                verdict
            }
            K::RenameUser | K::SetPassword | K::SetDefaultRole => acc(),
            K::CheckTable | K::ChecksumTable | K::OptimizeTable | K::RepairTable | K::Rebuild => {
                match self.cat.tables.presence(&norm(arg1.unwrap_or_default())) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("table does not exist"),
                    Presence::Maybe => unk(),
                }
            }
            K::ExecProcedure => {
                let key = (ObjectKind::Procedure, norm(arg1.unwrap_or_default()));
                match self.cat.generic.presence(&key) {
                    Presence::Present => acc(),
                    Presence::Absent => rej("procedure does not exist"),
                    Presence::Maybe => unk(),
                }
            }
            K::Put => {
                self.settings.set(
                    format!("put.{}", norm(arg1.unwrap_or_default())),
                    Presence::Present,
                    (),
                );
                acc()
            }
            K::Shutdown | K::Restart | K::KillStmt => rej("not permitted in the harness"),
            K::FlushStmt
            | K::ResetPersist
            | K::ResetMaster
            | K::ResetSlave
            | K::PurgeBinaryLogs => {
                // Removes every "cache."-prefixed setting.
                let gone: Vec<String> = self
                    .settings
                    .known
                    .keys()
                    .filter(|k| k.starts_with("cache."))
                    .cloned()
                    .collect();
                for k in gone {
                    self.settings.set_absent(k);
                }
                acc()
            }
            K::LoadData | K::LoadXml | K::ImportTable | K::BulkImport => {
                // Errs iff no table exists at all.
                if self.cat.tables.definitely_present().next().is_some() {
                    acc()
                } else if !self.cat.tables.maybe_nonempty() {
                    rej("no table to load into")
                } else {
                    unk()
                }
            }
            K::Signal | K::Resignal => rej("signal raised"),
            k if k.name().starts_with("SHOW") => acc(),
            _ => acc(), // engine default arm: Ok(0), coverage only
        }
    }

    /// Join in the effects of a statement that *may* have executed (and, if
    /// it did, may have failed): used for statements nested inside `WITH`
    /// bodies, where the engine runs them via `exec_nested` but the analyzer
    /// cannot prove whether control reaches them.
    pub(crate) fn apply_uncertain(&mut self, stmt: &Statement) {
        // Nested execution goes back through exec_statement, so the
        // MySQL-family implicit commit applies to nested DDL too.
        let kind = stmt.kind();
        if self.prof.ddl_implicit_commit && matches!(kind, StmtKind::Ddl(..)) && self.txn != Tri::No
        {
            self.txn = Tri::Maybe;
            self.txn_snapshot = None;
            self.uncertain_clear_savepoints();
        }
        match stmt {
            Statement::CreateTable(c) => {
                self.cat.tables.uncertain_create(&norm(&c.name), None);
            }
            Statement::CreateTableAs { name, .. } => {
                self.cat.tables.uncertain_create(&norm(name), None);
            }
            Statement::CreateView(v) => {
                let key = norm(&v.name);
                if v.or_replace && self.cat.views.presence(&key) == Presence::Present {
                    if self.cat.views.info(&key) != Some(&Some(v.materialized)) {
                        self.cat.views.set(key, Presence::Present, None);
                    }
                } else {
                    self.cat.views.uncertain_create(&key, None);
                }
            }
            Statement::CreateIndex(i) => {
                self.cat.indexes.uncertain_create(&norm(&i.name), Some(norm(&i.table)));
            }
            Statement::CreateTrigger(t) => {
                self.cat.triggers.uncertain_create(&norm(&t.name), Some(norm(&t.table)));
            }
            Statement::CreateRule(r) => {
                let key = norm(&r.name);
                if r.or_replace && self.cat.rules.presence(&key) == Presence::Present {
                    self.cat.rules.set(key, Presence::Present, None);
                } else {
                    self.cat.rules.uncertain_create(&key, Some(norm(&r.table)));
                }
            }
            Statement::AlterTable(a) => {
                let tkey = norm(&a.name);
                match &a.action {
                    AlterTableAction::RenameTo(new) => {
                        self.cat.tables.downgrade(&tkey);
                        self.cat.cascade_drop(&tkey, false);
                        self.cat.tables.uncertain_create(&norm(new), None);
                    }
                    _ => {
                        if self.cat.tables.presence(&tkey) == Presence::Present {
                            self.cat.tables.set(tkey, Presence::Present, None);
                        }
                    }
                }
            }
            Statement::Drop(d) => {
                let key = norm(&d.name);
                match d.object {
                    ObjectKind::Table => {
                        self.cat.tables.downgrade(&key);
                        self.cat.cascade_drop(&key, false);
                    }
                    ObjectKind::View | ObjectKind::MaterializedView => {
                        self.cat.views.downgrade(&key)
                    }
                    ObjectKind::Index => self.cat.indexes.downgrade(&key),
                    ObjectKind::Trigger => self.cat.triggers.downgrade(&key),
                    ObjectKind::Rule => self.cat.rules.downgrade(&key),
                    other => self.cat.generic.downgrade(&(other, key)),
                }
            }
            Statement::GenericDdl(g) => {
                use lego_sqlast::DdlVerb;
                let gkey = (g.object, norm(&g.name));
                match g.verb {
                    DdlVerb::Create => self.cat.generic.uncertain_create(&gkey),
                    DdlVerb::Drop => self.cat.generic.downgrade(&gkey),
                    DdlVerb::Alter => {}
                }
            }
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
                self.dml_effects();
            }
            Statement::With(w) => {
                if self.hooks_possible() {
                    self.fog_all();
                } else {
                    for cte in &w.ctes {
                        if let CteBody::Dml(dml) = &cte.body {
                            self.apply_uncertain(dml);
                        }
                    }
                    self.apply_uncertain(&w.body);
                }
            }
            Statement::Select(s) => {
                if let SelectVariant::Into(target) = &s.variant {
                    self.cat.tables.uncertain_create(&norm(target), None);
                }
            }
            Statement::Grant(g) => {
                let gkey = (norm(&g.grantee), norm(&g.object));
                // Grant always succeeds when executed — but execution itself
                // is uncertain here.
                self.cat.grants.uncertain_create(&gkey);
            }
            Statement::Begin | Statement::StartTransaction => {
                if self.txn != Tri::Yes {
                    self.txn = Tri::Maybe;
                }
                self.txn_snapshot = None;
            }
            Statement::Commit | Statement::End => {
                if self.txn != Tri::No {
                    self.txn = Tri::Maybe;
                }
                self.txn_snapshot = None;
                self.uncertain_clear_savepoints();
                self.locks.downgrade_all();
            }
            Statement::Rollback | Statement::Abort => {
                if self.txn != Tri::No {
                    self.txn = Tri::Maybe;
                    self.cat.fog();
                }
                self.txn_snapshot = None;
                self.uncertain_clear_savepoints();
                self.locks.downgrade_all();
            }
            Statement::Savepoint(_) => {
                if self.txn != Tri::No {
                    self.sp_fog = true;
                }
            }
            Statement::ReleaseSavepoint(_) => self.uncertain_clear_savepoints(),
            Statement::RollbackToSavepoint(_) => {
                if self.stack_maybe_nonempty() {
                    self.cat.fog();
                    self.sp_fog = true;
                }
            }
            Statement::Set(s) => {
                let key = norm(&s.name);
                if self.settings.presence(&key) != Presence::Present {
                    self.settings.set(key, Presence::Maybe, ());
                }
            }
            Statement::Reset(name) => self.settings.downgrade(&norm(name)),
            Statement::Pragma { name, .. } => {
                let key = format!("pragma.{}", norm(name));
                if self.settings.presence(&key) != Presence::Present {
                    self.settings.set(key, Presence::Maybe, ());
                }
            }
            Statement::Discard(what) => {
                if what.eq_ignore_ascii_case("ALL") {
                    self.settings.downgrade_all();
                    self.prepared.downgrade_all();
                    self.cursors.downgrade_all();
                }
            }
            Statement::LockTable { table, .. } => {
                let key = norm(table);
                if self.locks.presence(&key) != Presence::Present {
                    self.locks.set(key, Presence::Maybe, None);
                } else {
                    self.locks.set(key, Presence::Present, None);
                }
            }
            Statement::Misc(msub) => self.apply_uncertain_misc(msub),
            // Read-only / untracked-state statements.
            Statement::Revoke(_)
            | Statement::Values(_)
            | Statement::Truncate { .. }
            | Statement::Copy(_)
            | Statement::Show(_)
            | Statement::Analyze(_)
            | Statement::Vacuum { .. }
            | Statement::Explain(_)
            | Statement::Reindex(_)
            | Statement::Checkpoint
            | Statement::Cluster(_)
            | Statement::Listen(_)
            | Statement::Notify { .. }
            | Statement::Unlisten(_)
            | Statement::Comment { .. }
            | Statement::Call { .. }
            | Statement::RefreshMatView(_) => {}
        }
    }

    fn apply_uncertain_misc(&mut self, m: &lego_sqlast::MiscStmt) {
        use StandaloneKind as K;
        let arg1 = m.arg.as_deref().and_then(|a| a.split_whitespace().next());
        match m.kind {
            K::DeclareCursor => {
                if let Some(name) = arg1 {
                    self.cursors.uncertain_create(&norm(name), ());
                }
            }
            K::CloseCursor => self.cursors.downgrade(&norm(arg1.unwrap_or_default())),
            K::PrepareStmt => {
                if let Some(name) = arg1 {
                    self.prepared.uncertain_create(&norm(name), ());
                }
            }
            K::Deallocate => self.prepared.downgrade(&norm(arg1.unwrap_or_default())),
            K::XaBegin if self.xa != Tri::Yes => {
                self.xa = Tri::Maybe;
            }
            K::XaCommit | K::XaRollback if self.xa != Tri::No => {
                self.xa = Tri::Maybe;
            }
            K::PrepareTransaction => {
                if self.txn != Tri::No {
                    self.txn = Tri::Maybe;
                    self.txn_snapshot = None;
                }
                self.prepared_txns.uncertain_create(arg1.unwrap_or_default(), ());
            }
            K::CommitPrepared | K::RollbackPrepared => {
                self.prepared_txns.downgrade(arg1.unwrap_or_default());
            }
            K::SetRole | K::SetSessionAuthorization => {
                let executed = match arg1 {
                    Some(u)
                        if !u.eq_ignore_ascii_case("NONE")
                            && !u.eq_ignore_ascii_case("DEFAULT") =>
                    {
                        if u == "admin" {
                            UserState::Admin
                        } else {
                            UserState::Named(u.to_string())
                        }
                    }
                    _ => UserState::Admin,
                };
                if self.user != executed {
                    self.user = UserState::Unknown;
                }
            }
            K::LockTables => {
                let key = norm(arg1.unwrap_or_default());
                if self.locks.presence(&key) != Presence::Present {
                    self.locks.set(key, Presence::Maybe, None);
                } else {
                    self.locks.set(key, Presence::Present, None);
                }
            }
            K::UnlockTables => self.locks.downgrade_all(),
            K::RenameTable => {
                let words: Vec<&str> = m.arg.as_deref().unwrap_or("").split_whitespace().collect();
                if words.len() >= 3 && words[1].eq_ignore_ascii_case("TO") {
                    let (okey, nkey) = (norm(words[0]), norm(words[2]));
                    self.cat.tables.downgrade(&okey);
                    self.cat.cascade_drop(&okey, false);
                    self.cat.tables.uncertain_create(&nkey, None);
                }
            }
            K::Put => {
                let key = format!("put.{}", norm(arg1.unwrap_or_default()));
                if self.settings.presence(&key) != Presence::Present {
                    self.settings.set(key, Presence::Maybe, ());
                }
            }
            K::FlushStmt
            | K::ResetPersist
            | K::ResetMaster
            | K::ResetSlave
            | K::PurgeBinaryLogs => {
                let cached: Vec<String> = self
                    .settings
                    .known
                    .keys()
                    .filter(|k| k.starts_with("cache."))
                    .cloned()
                    .collect();
                for k in cached {
                    self.settings.downgrade(&k);
                }
            }
            _ => {} // remaining misc kinds touch no tracked state
        }
    }
}
