//! Per-sequence def-use dependency analysis.
//!
//! [`DepGraph::build`] walks a statement sequence once and records, for each
//! statement, the symbols it *defines* (creates), *uses* (requires to exist),
//! and *kills* (removes). Def-use edges (`deps`) connect each use to the
//! closest preceding definition. Dependency-aware mutation consults this to
//! splice and reorder only where every use still has a live definition in
//! front of it — see [`DepGraph::order_satisfied`].
//!
//! This is deliberately coarser than the binder: it works on names only, is
//! namespace- but not state-aware (no tri-state, no transaction modelling),
//! and over-approximates uses via [`lego_sqlast::visit::table_names`] for
//! query-bearing statements. The binder remains the validity authority; the
//! graph is a cheap structural guide for mutation.

use lego_sqlast::kind::StandaloneKind;
use lego_sqlast::visit::table_names;
use lego_sqlast::{
    AlterTableAction, ColumnConstraint, CopySource, CteBody, Dialect, ObjectKind, SelectVariant,
    Statement, StmtKind, TableConstraint,
};

use crate::binder::norm;

/// The namespace a symbol lives in. `Relation` merges tables and views:
/// query resolution does not distinguish them, and most cross-statement
/// references are by relation name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum SymNs {
    Relation,
    Index,
    Trigger,
    Rule,
    Cursor,
    Prepared,
    PreparedTxn,
    Setting,
    Savepoint,
    Generic(ObjectKind),
}

/// A named symbol: a (namespace, normalized-name) pair.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Sym {
    pub ns: SymNs,
    pub name: String,
}

impl Sym {
    fn new(ns: SymNs, name: &str) -> Sym {
        Sym { ns, name: norm(name) }
    }

    fn rel(name: &str) -> Sym {
        Sym::new(SymNs::Relation, name)
    }
}

/// What one statement defines, uses, and kills.
#[derive(Clone, Debug, Default)]
pub struct StmtSyms {
    pub defs: Vec<Sym>,
    pub uses: Vec<Sym>,
    pub kills: Vec<Sym>,
}

fn first_arg(m: &lego_sqlast::MiscStmt) -> &str {
    m.arg.as_deref().and_then(|a| a.split_whitespace().next()).unwrap_or("")
}

/// Symbols for a single statement. Uses are an over-approximation (better to
/// keep a spurious dependency than to break a real one); defs and kills are
/// the success-path effects.
pub fn stmt_syms(stmt: &Statement) -> StmtSyms {
    let mut s = StmtSyms::default();
    match stmt {
        Statement::CreateTable(c) => {
            s.defs.push(Sym::rel(&c.name));
            for cd in &c.columns {
                for con in &cd.constraints {
                    if let ColumnConstraint::References { table, .. } = con {
                        if !table.is_empty() && !table.eq_ignore_ascii_case(&c.name) {
                            s.uses.push(Sym::rel(table));
                        }
                    }
                }
            }
            for tc in &c.constraints {
                if let TableConstraint::ForeignKey { ref_table, .. } = tc {
                    if !ref_table.eq_ignore_ascii_case(&c.name) {
                        s.uses.push(Sym::rel(ref_table));
                    }
                }
            }
        }
        Statement::CreateView(v) => {
            s.defs.push(Sym::rel(&v.name));
            s.uses.extend(table_names(stmt).iter().map(|t| Sym::rel(t)));
            s.uses.retain(|u| u.name != norm(&v.name));
        }
        Statement::CreateTableAs { name, .. } => {
            s.defs.push(Sym::rel(name));
            s.uses.extend(table_names(stmt).iter().map(|t| Sym::rel(t)));
            s.uses.retain(|u| u.name != norm(name));
        }
        Statement::CreateIndex(i) => {
            s.defs.push(Sym::new(SymNs::Index, &i.name));
            s.uses.push(Sym::rel(&i.table));
        }
        Statement::CreateTrigger(t) => {
            s.defs.push(Sym::new(SymNs::Trigger, &t.name));
            s.uses.push(Sym::rel(&t.table));
        }
        Statement::CreateRule(r) => {
            s.defs.push(Sym::new(SymNs::Rule, &r.name));
            s.uses.push(Sym::rel(&r.table));
        }
        Statement::AlterTable(a) => {
            s.uses.push(Sym::rel(&a.name));
            if let AlterTableAction::RenameTo(new) = &a.action {
                s.defs.push(Sym::rel(new));
                s.kills.push(Sym::rel(&a.name));
            }
        }
        Statement::Drop(d) => {
            let sym = match d.object {
                ObjectKind::Table | ObjectKind::View | ObjectKind::MaterializedView => {
                    Sym::rel(&d.name)
                }
                ObjectKind::Index => Sym::new(SymNs::Index, &d.name),
                ObjectKind::Trigger => Sym::new(SymNs::Trigger, &d.name),
                ObjectKind::Rule => Sym::new(SymNs::Rule, &d.name),
                other => Sym::new(SymNs::Generic(other), &d.name),
            };
            if !d.if_exists {
                s.uses.push(sym.clone());
            }
            s.kills.push(sym);
        }
        Statement::GenericDdl(g) => {
            use lego_sqlast::DdlVerb;
            let sym = Sym::new(SymNs::Generic(g.object), &g.name);
            match g.verb {
                DdlVerb::Create => s.defs.push(sym),
                DdlVerb::Alter => s.uses.push(sym),
                DdlVerb::Drop => {
                    s.uses.push(sym.clone());
                    s.kills.push(sym);
                }
            }
        }
        Statement::Select(sel) => {
            s.uses.extend(table_names(stmt).iter().map(|t| Sym::rel(t)));
            if let SelectVariant::Into(target) = &sel.variant {
                s.defs.push(Sym::rel(target));
                s.uses.retain(|u| u.name != norm(target));
            }
        }
        Statement::Insert(_)
        | Statement::Update(_)
        | Statement::Delete(_)
        | Statement::Values(_)
        | Statement::Explain(_) => {
            s.uses.extend(table_names(stmt).iter().map(|t| Sym::rel(t)));
        }
        Statement::With(w) => {
            // CTE names are sequence-local bindings, not catalog symbols:
            // drop them from the use set.
            s.uses.extend(table_names(stmt).iter().map(|t| Sym::rel(t)));
            for cte in &w.ctes {
                s.uses.retain(|u| u.name != norm(&cte.name));
                if let CteBody::Dml(dml) = &cte.body {
                    let inner = stmt_syms(dml);
                    s.defs.extend(inner.defs);
                    s.kills.extend(inner.kills);
                }
            }
            let inner = stmt_syms(&w.body);
            s.defs.extend(inner.defs);
            s.kills.extend(inner.kills);
        }
        Statement::Truncate { table } => s.uses.push(Sym::rel(table)),
        Statement::Copy(c) => match &c.source {
            CopySource::Table { name, .. } => s.uses.push(Sym::rel(name)),
            CopySource::Query(_) => {
                s.uses.extend(table_names(stmt).iter().map(|t| Sym::rel(t)));
            }
        },
        Statement::Grant(g) => s.uses.push(Sym::rel(&g.object)),
        Statement::Revoke(g) => s.uses.push(Sym::rel(&g.object)),
        Statement::Savepoint(name) => s.defs.push(Sym::new(SymNs::Savepoint, name)),
        Statement::ReleaseSavepoint(name) => {
            let sym = Sym::new(SymNs::Savepoint, name);
            s.uses.push(sym.clone());
            s.kills.push(sym);
        }
        Statement::RollbackToSavepoint(name) => s.uses.push(Sym::new(SymNs::Savepoint, name)),
        Statement::Set(st) => s.defs.push(Sym::new(SymNs::Setting, &st.name)),
        Statement::Reset(name) => {
            let sym = Sym::new(SymNs::Setting, name);
            s.uses.push(sym.clone());
            s.kills.push(sym);
        }
        Statement::Show(name) => s.uses.push(Sym::new(SymNs::Setting, name)),
        Statement::Pragma { name, .. } => {
            s.defs.push(Sym::new(SymNs::Setting, &format!("pragma.{name}")));
        }
        Statement::Analyze(Some(t))
        | Statement::Vacuum { table: Some(t), .. }
        | Statement::Reindex(Some(t))
        | Statement::Cluster(Some(t)) => s.uses.push(Sym::rel(t)),
        Statement::LockTable { table, .. } => s.uses.push(Sym::rel(table)),
        Statement::Comment { object, name, .. } => {
            let sym = match object {
                ObjectKind::Table | ObjectKind::View | ObjectKind::MaterializedView => {
                    Sym::rel(name)
                }
                ObjectKind::Index => Sym::new(SymNs::Index, name),
                ObjectKind::Trigger => Sym::new(SymNs::Trigger, name),
                ObjectKind::Rule => Sym::new(SymNs::Rule, name),
                other => Sym::new(SymNs::Generic(*other), name),
            };
            s.uses.push(sym);
        }
        Statement::Call { name, .. } => {
            s.uses.push(Sym::new(SymNs::Generic(ObjectKind::Procedure), name));
        }
        Statement::RefreshMatView(name) => s.uses.push(Sym::rel(name)),
        Statement::Misc(m) => match m.kind {
            StandaloneKind::DeclareCursor => {
                s.defs.push(Sym::new(SymNs::Cursor, first_arg(m)));
            }
            StandaloneKind::Fetch | StandaloneKind::Move => {
                s.uses.push(Sym::new(SymNs::Cursor, first_arg(m)));
            }
            StandaloneKind::CloseCursor => {
                let sym = Sym::new(SymNs::Cursor, first_arg(m));
                s.uses.push(sym.clone());
                s.kills.push(sym);
            }
            StandaloneKind::PrepareStmt => {
                s.defs.push(Sym::new(SymNs::Prepared, first_arg(m)));
            }
            StandaloneKind::ExecuteStmt => {
                s.uses.push(Sym::new(SymNs::Prepared, first_arg(m)));
            }
            StandaloneKind::Deallocate => {
                let sym = Sym::new(SymNs::Prepared, first_arg(m));
                s.uses.push(sym.clone());
                s.kills.push(sym);
            }
            StandaloneKind::PrepareTransaction => {
                // Gids are case-exact in the engine; norm() here is fine for
                // dependency purposes since gen only emits lowercase gids.
                s.defs.push(Sym::new(SymNs::PreparedTxn, first_arg(m)));
            }
            StandaloneKind::CommitPrepared | StandaloneKind::RollbackPrepared => {
                let sym = Sym::new(SymNs::PreparedTxn, first_arg(m));
                s.uses.push(sym.clone());
                s.kills.push(sym);
            }
            StandaloneKind::CheckTable
            | StandaloneKind::ChecksumTable
            | StandaloneKind::OptimizeTable
            | StandaloneKind::RepairTable
            | StandaloneKind::Rebuild => {
                let t = first_arg(m);
                if !t.is_empty() {
                    s.uses.push(Sym::rel(t));
                }
            }
            StandaloneKind::LockTables => {
                let t = first_arg(m);
                if !t.is_empty() {
                    s.uses.push(Sym::rel(t));
                }
            }
            StandaloneKind::RenameTable => {
                let words: Vec<&str> = m.arg.as_deref().unwrap_or("").split_whitespace().collect();
                if words.len() >= 3 && words[1].eq_ignore_ascii_case("TO") {
                    s.uses.push(Sym::rel(words[0]));
                    s.kills.push(Sym::rel(words[0]));
                    s.defs.push(Sym::rel(words[2]));
                }
            }
            StandaloneKind::ExecProcedure => {
                s.uses.push(Sym::new(SymNs::Generic(ObjectKind::Procedure), first_arg(m)));
            }
            _ => {}
        },
        // No symbol-level defs or uses.
        Statement::Begin
        | Statement::StartTransaction
        | Statement::Commit
        | Statement::End
        | Statement::Rollback
        | Statement::Abort
        | Statement::Checkpoint
        | Statement::Discard(_)
        | Statement::Listen(_)
        | Statement::Unlisten(_)
        | Statement::Notify { .. }
        | Statement::Analyze(None)
        | Statement::Vacuum { table: None, .. }
        | Statement::Reindex(None)
        | Statement::Cluster(None) => {}
    }
    s
}

/// The def-use structure of one statement sequence.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Per-statement symbol sets, index-aligned with the sequence.
    pub syms: Vec<StmtSyms>,
    /// `deps[i]` = indices `j < i` whose defs statement `i` uses (closest
    /// preceding definition per used symbol), sorted and deduped.
    pub deps: Vec<Vec<usize>>,
}

impl DepGraph {
    pub fn build(stmts: &[Statement]) -> DepGraph {
        let syms: Vec<StmtSyms> = stmts.iter().map(stmt_syms).collect();
        let mut deps = Vec::with_capacity(syms.len());
        for i in 0..syms.len() {
            let mut d: Vec<usize> = syms[i]
                .uses
                .iter()
                .filter_map(|u| (0..i).rev().find(|&j| syms[j].defs.contains(u)))
                .collect();
            d.sort_unstable();
            d.dedup();
            deps.push(d);
        }
        DepGraph { syms, deps }
    }

    pub fn len(&self) -> usize {
        self.syms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Would executing the original statements in `order` (a subsequence or
    /// permutation of `0..len`, given by original indices) keep every
    /// def-use dependency satisfied? A use is satisfied when some earlier
    /// position in `order` defines the symbol and no position in between
    /// kills it. Symbols a statement both uses and kills (e.g. `DROP`) only
    /// count the use.
    pub fn order_satisfied(&self, order: &[usize]) -> bool {
        order.iter().enumerate().all(|(pos, &i)| {
            self.syms[i].uses.iter().all(|u| {
                let mut live = false;
                for &j in &order[..pos] {
                    if self.syms[j].defs.contains(u) {
                        live = true;
                    } else if self.syms[j].kills.contains(u) {
                        live = false;
                    }
                }
                live
            })
        })
    }
}

/// Statement kinds that the engine rejects unconditionally, regardless of
/// state — there is no point synthesizing sequences around them when a
/// validity-oriented campaign asks for plausible-only drafts.
pub fn always_rejected_kind(kind: StmtKind) -> bool {
    matches!(
        kind,
        StmtKind::Other(
            StandaloneKind::Signal
                | StandaloneKind::Resignal
                | StandaloneKind::Shutdown
                | StandaloneKind::Restart
                | StandaloneKind::KillStmt
        )
    )
}

/// Kind-level plausibility of a type sequence for `dialect`: every kind
/// supported and none unconditionally rejected. A cheap pre-filter for
/// synthesis — the binder gives the real per-statement verdicts once the
/// sequence is instantiated.
pub fn plausible_sequence(kinds: &[StmtKind], dialect: Dialect) -> bool {
    kinds.iter().all(|&k| dialect.supports(k) && !always_rejected_kind(k))
}
