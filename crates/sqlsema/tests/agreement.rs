//! Analyzer-vs-engine agreement: the soundness contract of the crate.
//!
//! For any sequence the engine executes cleanly (`Outcome::Ok`):
//!   * a statement the analyzer `Accept`s must not have errored, and
//!   * a statement the analyzer `Reject`s must have errored.
//!
//! `Unknown` makes no claim. The deterministic scripts below pin specific
//! binder rules; the property tests at the bottom sweep generator-produced
//! sequences across all four dialect profiles.

use lego::gen::{gen_statement, SchemaModel};
use lego_dbms::engine::Outcome;
use lego_dbms::Dbms;
use lego_sqlast::{Dialect, Statement, TestCase};
use lego_sqlsema::{Sema, Verdict};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Check the agreement contract for one statement sequence, returning the
/// analyzer's verdicts for further assertions.
fn check_agreement(dialect: Dialect, stmts: &[Statement]) -> Vec<Verdict> {
    let sema = Sema::new(dialect);
    let report = sema.check_sequence(stmts);
    let case = TestCase::new(stmts.to_vec());
    let mut db = Dbms::new(dialect);
    let exec = db.execute_case(&case);
    let verdicts: Vec<Verdict> = report.verdicts.iter().map(|v| v.verdict).collect();
    if !matches!(exec.outcome, Outcome::Ok) {
        // Budget-tripped / crashed: the conformance contract makes no claim.
        return verdicts;
    }
    for (i, v) in report.verdicts.iter().enumerate().take(exec.statements_executed) {
        let errored = exec.stmt_errors.contains(&i);
        match v.verdict {
            Verdict::Accept => assert!(
                !errored,
                "stmt {i} ({}) analyzer-Accept but engine errored on {dialect:?}\n\
                 case:\n{}\nengine errors: {:?}",
                stmts[i], case, exec.errors
            ),
            Verdict::Reject => assert!(
                errored,
                "stmt {i} ({}) analyzer-Reject ({:?}) but engine accepted on {dialect:?}\n\
                 case:\n{}",
                stmts[i], v.reason, case
            ),
            Verdict::Unknown => {}
        }
    }
    verdicts
}

fn agree_script(dialect: Dialect, sql: &str) -> Vec<Verdict> {
    let case = lego_sqlparser::parse_script(sql).expect("test script must parse");
    check_agreement(dialect, &case.statements)
}

// -- deterministic rule pins -------------------------------------------------

#[test]
fn literal_select_is_always_ok() {
    let v = agree_script(Dialect::Postgres, "SELECT 1;");
    assert_eq!(v, vec![Verdict::Accept]);
}

#[test]
fn select_from_missing_table_rejects() {
    let v = agree_script(Dialect::Postgres, "SELECT * FROM missing;");
    assert_eq!(v, vec![Verdict::Reject]);
}

#[test]
fn table_lifecycle() {
    let v = agree_script(
        Dialect::Postgres,
        "CREATE TABLE t1 (v1 INT);\n\
         CREATE TABLE t1 (v1 INT);\n\
         DROP TABLE t1;\n\
         DROP TABLE t1;\n\
         DROP TABLE IF EXISTS t1;",
    );
    assert_eq!(
        v,
        vec![
            Verdict::Accept,
            Verdict::Reject, // duplicate
            Verdict::Accept,
            Verdict::Reject, // already gone
            Verdict::Accept, // IF EXISTS no-op
        ]
    );
}

#[test]
fn duplicate_column_rejects() {
    let v = agree_script(Dialect::Postgres, "CREATE TABLE t1 (v1 INT, v1 TEXT);");
    assert_eq!(v, vec![Verdict::Reject]);
}

#[test]
fn commit_without_transaction_rejects() {
    let v = agree_script(Dialect::Postgres, "COMMIT;\nBEGIN;\nCOMMIT;\nCOMMIT;");
    assert_eq!(v, vec![Verdict::Reject, Verdict::Accept, Verdict::Accept, Verdict::Reject]);
}

#[test]
fn rollback_restores_catalog() {
    let v = agree_script(
        Dialect::Postgres,
        "BEGIN;\n\
         CREATE TABLE t1 (v1 INT);\n\
         ROLLBACK;\n\
         SELECT * FROM t1;",
    );
    assert_eq!(v[2], Verdict::Accept);
    assert_eq!(v[3], Verdict::Reject); // t1 rolled away
}

#[test]
fn savepoint_outside_transaction_rejects() {
    let v = agree_script(Dialect::Postgres, "SAVEPOINT s1;");
    assert_eq!(v, vec![Verdict::Reject]);
}

#[test]
fn savepoint_restore_tracks_catalog() {
    let v = agree_script(
        Dialect::Postgres,
        "BEGIN;\n\
         CREATE TABLE t1 (v1 INT);\n\
         SAVEPOINT s1;\n\
         DROP TABLE t1;\n\
         ROLLBACK TO SAVEPOINT s1;\n\
         SELECT * FROM t1;\n\
         ROLLBACK TO SAVEPOINT missing;",
    );
    assert_eq!(v[4], Verdict::Accept);
    assert_eq!(v[6], Verdict::Reject); // unknown savepoint name
}

#[test]
fn mysql_ddl_implicitly_commits() {
    // The CREATE TABLE closes the transaction, so the explicit COMMIT and a
    // savepoint rollback both fail afterwards.
    let v = agree_script(
        Dialect::MySql,
        "BEGIN;\n\
         SAVEPOINT s1;\n\
         CREATE TABLE t1 (v1 INT);\n\
         COMMIT;\n\
         ROLLBACK TO SAVEPOINT s1;",
    );
    assert_eq!(v[3], Verdict::Reject);
    assert_eq!(v[4], Verdict::Reject);
}

#[test]
fn postgres_ddl_does_not_commit() {
    let v = agree_script(Dialect::Postgres, "BEGIN;\nCREATE TABLE t1 (v1 INT);\nCOMMIT;");
    assert_eq!(v, vec![Verdict::Accept, Verdict::Accept, Verdict::Accept]);
}

#[test]
fn index_cascades_with_table_drop() {
    let v = agree_script(
        Dialect::Postgres,
        "CREATE TABLE t1 (v1 INT);\n\
         CREATE INDEX i1 ON t1 (v1);\n\
         CREATE INDEX i2 ON t1 (v9);\n\
         DROP TABLE t1;\n\
         DROP INDEX i1;",
    );
    assert_eq!(v[1], Verdict::Accept);
    assert_eq!(v[2], Verdict::Reject); // no column v9
    assert_eq!(v[4], Verdict::Reject); // index went with the table
}

#[test]
fn insert_into_missing_or_view_rejects() {
    let v = agree_script(
        Dialect::Postgres,
        "INSERT INTO t1 VALUES (1);\n\
         CREATE TABLE t1 (v1 INT);\n\
         INSERT INTO t1 VALUES (1);",
    );
    assert_eq!(v[0], Verdict::Reject);
    assert_ne!(v[2], Verdict::Reject);
}

#[test]
fn alter_table_column_rules() {
    let v = agree_script(
        Dialect::Postgres,
        "CREATE TABLE t1 (v1 INT, v2 TEXT);\n\
         ALTER TABLE t1 DROP COLUMN v9;\n\
         ALTER TABLE t1 DROP COLUMN v2;\n\
         ALTER TABLE t1 DROP COLUMN v1;\n\
         ALTER TABLE t9 ADD COLUMN v1 INT;",
    );
    assert_eq!(v[1], Verdict::Reject); // no such column
    assert_eq!(v[2], Verdict::Accept);
    assert_eq!(v[3], Verdict::Reject); // last remaining column
    assert_eq!(v[4], Verdict::Reject); // no such table
}

#[test]
fn unsupported_kind_rejects() {
    // MySQL has no CREATE RULE in its inventory.
    let v = agree_script(
        Dialect::MySql,
        "CREATE TABLE t1 (v1 INT);\nCREATE RULE r1 AS ON UPDATE TO t1 DO INSTEAD NOTHING;",
    );
    assert_eq!(v[1], Verdict::Reject);
}

#[test]
fn settings_lifecycle() {
    let v = agree_script(
        Dialect::Postgres,
        "SHOW nothing_set;\n\
         SET search_path = 'public';\n\
         SHOW search_path;\n\
         RESET search_path;\n\
         SHOW search_path;",
    );
    assert_eq!(
        v,
        vec![Verdict::Reject, Verdict::Accept, Verdict::Accept, Verdict::Accept, Verdict::Reject,]
    );
}

// -- generator sweep ---------------------------------------------------------

const DIALECTS: [Dialect; 4] =
    [Dialect::Postgres, Dialect::MySql, Dialect::MariaDb, Dialect::Comdb2];

fn random_sequence(dialect: Dialect, seed: u64, len: usize) -> Vec<Statement> {
    let kinds = dialect.supported_kinds();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut schema = SchemaModel::new();
    let mut stmts = Vec::with_capacity(len);
    for _ in 0..len {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let stmt = gen_statement(kind, &schema, dialect, &mut rng);
        schema.observe(&stmt);
        stmts.push(stmt);
    }
    stmts
}

/// Sweep generator output through the agreement contract. 256 seeds x 4
/// dialects x 12-statement sequences exercises every statement kind many
/// times over (the generator draws kinds uniformly from the dialect
/// inventory).
#[test]
fn generated_sequences_agree() {
    for dialect in DIALECTS {
        for seed in 0..256u64 {
            let stmts = random_sequence(dialect, 0x5e11_a000 ^ seed, 12);
            check_agreement(dialect, &stmts);
        }
    }
}

/// Longer sequences hit deeper abstract states (fog, savepoint stacks,
/// implicit commits interleaved with TCL).
#[test]
fn generated_long_sequences_agree() {
    for dialect in DIALECTS {
        for seed in 0..64u64 {
            let stmts = random_sequence(dialect, 0xdeed_5eed ^ seed, 40);
            check_agreement(dialect, &stmts);
        }
    }
}

/// The analyzer must not be vacuously sound by answering `Unknown` for
/// everything: over the sweep, every dialect needs a healthy share of both
/// definite verdicts.
#[test]
fn analyzer_is_not_vacuous() {
    for dialect in DIALECTS {
        let sema = Sema::new(dialect);
        let (mut accepts, mut rejects, mut total) = (0usize, 0usize, 0usize);
        for seed in 0..128u64 {
            let stmts = random_sequence(dialect, 0xabcd_0000 ^ seed, 12);
            let rep = sema.check_sequence(&stmts);
            accepts += rep.accepts();
            rejects += rep.rejects();
            total += rep.verdicts.len();
        }
        assert!(
            accepts * 10 >= total,
            "{dialect:?}: only {accepts}/{total} statements proved Accept"
        );
        assert!(
            rejects * 50 >= total,
            "{dialect:?}: only {rejects}/{total} statements proved Reject"
        );
    }
}
