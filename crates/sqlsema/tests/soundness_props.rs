//! Property-based soundness: Sema-accepts ⇒ engine-accepts.
//!
//! The campaign's skip decision (`--sema`) discards statically-rejected
//! cases without executing them, and the conformance oracle turns any
//! analyzer-accepted-but-engine-rejected statement into a finding. Both
//! lean on one direction of the agreement contract: an `Accept` verdict
//! must never be contradicted by the engine. These properties sweep
//! proptest-chosen generator seeds and sequence lengths across all four
//! dialect profiles — unlike the fixed-seed sweeps in `agreement.rs`, every
//! CI run explores fresh sequences (with proptest's failure persistence
//! pinning any regression it ever finds).

use lego::gen::{gen_statement, SchemaModel};
use lego_dbms::engine::Outcome;
use lego_dbms::Dbms;
use lego_sqlast::{Dialect, Statement, TestCase};
use lego_sqlsema::{Sema, Verdict};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const DIALECTS: [Dialect; 4] =
    [Dialect::Postgres, Dialect::MySql, Dialect::MariaDb, Dialect::Comdb2];

fn random_sequence(dialect: Dialect, seed: u64, len: usize) -> Vec<Statement> {
    let kinds = dialect.supported_kinds();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut schema = SchemaModel::new();
    let mut stmts = Vec::with_capacity(len);
    for _ in 0..len {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let stmt = gen_statement(kind, &schema, dialect, &mut rng);
        schema.observe(&stmt);
        stmts.push(stmt);
    }
    stmts
}

/// One soundness check: every analyzer-`Accept`ed statement the engine got
/// to execute must have run without error. (`Reject` and `Unknown` make no
/// claim here — the reject direction is completeness, pinned separately in
/// `agreement.rs`.)
fn assert_accepts_execute(dialect: Dialect, stmts: &[Statement]) -> Result<(), TestCaseError> {
    let sema = Sema::new(dialect);
    let report = sema.check_sequence(stmts);
    let case = TestCase::new(stmts.to_vec());
    let mut db = Dbms::new(dialect);
    let exec = db.execute_case(&case);
    if !matches!(exec.outcome, Outcome::Ok) {
        // Budget-tripped / crashed: the conformance contract makes no claim.
        return Ok(());
    }
    for (i, v) in report.verdicts.iter().enumerate().take(exec.statements_executed) {
        if v.verdict == Verdict::Accept {
            prop_assert!(
                !exec.stmt_errors.contains(&i),
                "stmt {i} ({}) analyzer-Accept but engine errored on {dialect:?}\ncase:\n{}\nengine errors: {:?}",
                stmts[i],
                case,
                exec.errors
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Short sequences, all four dialects per proptest case.
    #[test]
    fn accepted_statements_execute_cleanly(seed in any::<u64>(), len in 1usize..16) {
        for dialect in DIALECTS {
            assert_accepts_execute(dialect, &random_sequence(dialect, seed, len))?;
        }
    }

    /// Long sequences reach deeper abstract states (fog after uncertain
    /// rollbacks, savepoint stacks, implicit-commit interleavings) where an
    /// unsound shortcut would hide from the short sweep.
    #[test]
    fn accepted_statements_execute_cleanly_in_long_sequences(seed in any::<u64>()) {
        for dialect in DIALECTS {
            assert_accepts_execute(dialect, &random_sequence(dialect, seed, 48))?;
        }
    }
}
