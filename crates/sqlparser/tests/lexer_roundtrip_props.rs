//! Property-based lexer/printer roundtrip tests.
//!
//! The mutation engine and the bug reducer both rely on `Tok`'s `Display`
//! being a faithful inverse of `lex`: every token stream the lexer can
//! produce must survive print → re-lex with kind and value intact. The
//! generators below bias toward the historical trouble spots — ints at the
//! i64 boundaries, floats at exponent extremes (including the overflow
//! sentinel), strings with embedded quotes and multi-byte UTF-8, and the
//! two-char symbol table.

use lego_sqlparser::{lex, Tok};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SYMBOLS2: &[&str] = &["||", "<>", "!=", "<=", ">=", "@@", "::"];
const SYMBOLS1: &[&str] = &["(", ")", ",", ".", ";", "=", "<", ">", "+", "-", "*", "/", "%"];

/// A random token the lexer itself could have produced. Negative numbers are
/// excluded (the lexer emits `-` as a separate symbol), as are non-finite
/// floats (clamped to the `f64::MAX` sentinel at lex time).
fn rand_tok(rng: &mut SmallRng) -> Tok {
    match rng.gen_range(0..5) {
        0 => {
            let v = match rng.gen_range(0..4) {
                0 => rng.gen_range(0..10),
                1 => i64::MAX,
                2 => i64::MAX - rng.gen_range(0..3),
                _ => rng.gen::<i64>().unsigned_abs().min(i64::MAX as u64) as i64,
            };
            Tok::Int(v)
        }
        1 => {
            let v = match rng.gen_range(0..6) {
                0 => 0.0,
                1 => f64::MAX, // the non-finite sentinel itself
                2 => f64::MIN_POSITIVE,
                3 => 1e308,
                4 => rng.gen_range(0..1_000_000) as f64 / 1024.0,
                _ => rng.gen_range(0..1_000) as f64 * 1e18,
            };
            Tok::Float(v)
        }
        2 => {
            let n = rng.gen_range(1..8);
            let mut s = String::new();
            for i in 0..n {
                let c = match rng.gen_range(0..6) {
                    0 if i == 0 => '_',
                    0..=3 => rng.gen_range(b'a'..=b'z') as char,
                    4 => rng.gen_range(b'A'..=b'Z') as char,
                    _ if i > 0 => rng.gen_range(b'0'..=b'9') as char,
                    _ => 'x',
                };
                s.push(c);
            }
            Tok::Ident(s)
        }
        3 => {
            let n = rng.gen_range(0..10);
            let s: String = (0..n)
                .map(|_| match rng.gen_range(0..6) {
                    0 => '\'', // embedded quote → doubled on print
                    1 => 'é',
                    2 => '☕',
                    3 => ' ',
                    _ => rng.gen_range(b'a'..=b'z') as char,
                })
                .collect();
            Tok::Str(s)
        }
        _ => {
            if rng.gen_bool(0.5) {
                Tok::Sym(SYMBOLS2[rng.gen_range(0..SYMBOLS2.len())])
            } else {
                Tok::Sym(SYMBOLS1[rng.gen_range(0..SYMBOLS1.len())])
            }
        }
    }
}

/// Render a token stream with single spaces between tokens. Spacing keeps
/// adjacent tokens from fusing (`- -` must not become a `--` comment, two
/// idents must not merge) without changing any token's own text.
fn render(toks: &[Tok]) -> String {
    toks.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_token_streams_relex_exactly(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1..24);
        let toks: Vec<Tok> = (0..n).map(|_| rand_tok(&mut rng)).collect();
        let src = render(&toks);
        let relexed = lex(&src).map_err(|e| {
            TestCaseError::fail(format!("printed stream failed to lex: {e}\n  src: {src:?}"))
        })?;
        prop_assert_eq!(&toks, &relexed, "print → lex mismatch for {:?}", src);
    }

    #[test]
    fn single_tokens_roundtrip(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tok = rand_tok(&mut rng);
        let printed = tok.to_string();
        let relexed = lex(&printed).unwrap();
        prop_assert_eq!(vec![tok], relexed, "single-token roundtrip via {:?}", printed);
    }

    #[test]
    fn lex_print_lex_is_a_fixpoint(seed in any::<u64>()) {
        // Idempotence from the other side: whatever a print→lex cycle
        // yields, printing and lexing again must be stable.
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1..16);
        let toks: Vec<Tok> = (0..n).map(|_| rand_tok(&mut rng)).collect();
        let once = lex(&render(&toks)).unwrap();
        let twice = lex(&render(&once)).unwrap();
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn boundary_literals_roundtrip() {
    // The deterministic worst cases, pinned outside the proptest loop.
    let cases = [
        Tok::Int(0),
        Tok::Int(i64::MAX),
        Tok::Float(0.0),
        Tok::Float(f64::MAX),
        Tok::Float(f64::MIN_POSITIVE),
        Tok::Float(1e308),
        Tok::Str(String::new()),
        Tok::Str("''''".into()),
        Tok::Str("it's ☕".into()),
    ];
    for tok in cases {
        let printed = tok.to_string();
        assert_eq!(lex(&printed).unwrap(), vec![tok], "via {printed:?}");
    }
}

#[test]
fn nonfinite_floats_print_as_the_sentinel() {
    for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
        let printed = Tok::Float(v).to_string();
        assert_eq!(lex(&printed).unwrap(), vec![Tok::Float(f64::MAX)], "{v} -> {printed}");
    }
}
