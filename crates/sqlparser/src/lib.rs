#![forbid(unsafe_code)]

//! A hand-written recursive-descent SQL parser for the four dialects.
//!
//! The paper builds its AST parser with Bison/Flex and thousands of grammar
//! rules; here one lenient parser accepts the *union* grammar of all four
//! dialects (dialect validity is checked downstream by the engine). The
//! design goals, in order:
//!
//! 1. Every statement produced by `lego_sqlast`'s `Display` must round-trip.
//! 2. Every statement kind of every dialect must parse to the right
//!    [`StmtKind`](lego_sqlast::StmtKind) — exotic kinds parse generically.
//! 3. Garbage must fail fast with a useful error, never panic.

//! ```
//! let case = lego_sqlparser::parse_script(
//!     "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;",
//! ).unwrap();
//! let names: Vec<String> = case.type_sequence().iter().map(|k| k.name()).collect();
//! assert_eq!(names, ["CREATE TABLE", "INSERT", "SELECT"]);
//! ```

pub mod lexer;
mod parser;
mod phrases;

pub use lexer::{lex, lex_spanned, LexError, Tok};
pub use parser::{ParseError, Parser};

use lego_coverage::{CovMap, CovRecorder};
use lego_sqlast::{Statement, TestCase};

/// A short source excerpt starting at byte `offset`, for error messages.
/// Clamped to char boundaries, newlines flattened.
fn snippet(sql: &str, offset: usize) -> String {
    let mut start = offset.min(sql.len());
    while start > 0 && !sql.is_char_boundary(start) {
        start -= 1;
    }
    let mut end = (start + 24).min(sql.len());
    while end < sql.len() && !sql.is_char_boundary(end) {
        end += 1;
    }
    sql[start..end].replace(['\n', '\r'], " ")
}

/// Attach the byte offset and a source snippet to a parse error. `pos`
/// keeps its token-index semantics; errors past the last token point at
/// end-of-input.
fn enrich(sql: &str, spans: &[usize], e: ParseError) -> ParseError {
    let offset = spans.get(e.pos).copied().unwrap_or(sql.len());
    ParseError {
        pos: e.pos,
        message: format!("{} at byte {offset} (near `{}`)", e.message, snippet(sql, offset)),
    }
}

/// Map a lexer failure into the `ParseError` coordinate system: the token
/// index the bad token would have had, with byte offset and snippet in the
/// message.
fn lex_error(sql: &str, e: LexError) -> ParseError {
    ParseError { pos: e.token_index, message: format!("{e} (near `{}`)", snippet(sql, e.offset)) }
}

/// Parse a SQL script (statements separated by `;`) into a test case.
pub fn parse_script(sql: &str) -> Result<TestCase, ParseError> {
    match parse_script_inner(sql, None) {
        Ok((case, _)) => Ok(case),
        Err((e, _)) => Err(e),
    }
}

/// Parse a SQL script while recording grammar-rule traversal coverage into
/// `rec` (AFL-style rule→rule edges, chain reset at each statement
/// boundary). Returns the rule map even when parsing fails, so partial
/// traversals of malformed inputs still count as coverage.
pub fn parse_script_traced(sql: &str, rec: CovRecorder) -> (Result<TestCase, ParseError>, CovMap) {
    match parse_script_inner(sql, Some(rec)) {
        Ok((case, map)) => (Ok(case), map.expect("traced parse returns its map")),
        Err((e, map)) => (Err(e), map.unwrap_or_default()),
    }
}

type TracedError = (ParseError, Option<CovMap>);

fn parse_script_inner(
    sql: &str,
    rec: Option<CovRecorder>,
) -> Result<(TestCase, Option<CovMap>), TracedError> {
    let traced = rec.is_some();
    let (toks, spans) = match lexer::lex_spanned(sql) {
        Ok(x) => x,
        Err(e) => return Err((lex_error(sql, e), rec.map(CovRecorder::into_map))),
    };
    let mut p = match rec {
        Some(r) => Parser::with_rules(toks, r),
        None => Parser::new(toks),
    };
    let mut statements = Vec::new();
    loop {
        p.skip_semicolons();
        if p.at_end() {
            break;
        }
        p.reset_rule_chain();
        match p.parse_statement() {
            Ok(s) => statements.push(s),
            Err(e) => {
                let e = enrich(sql, &spans, e);
                return Err((e, traced.then(|| p.into_rule_map())));
            }
        }
        if !p.at_end() && !p.eat_sym(";") {
            let e = enrich(sql, &spans, p.error("expected ';' between statements"));
            return Err((e, traced.then(|| p.into_rule_map())));
        }
    }
    let map = traced.then(|| p.into_rule_map());
    Ok((TestCase::new(statements), map))
}

/// Parse exactly one statement.
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let tc = parse_script(sql)?;
    match tc.statements.len() {
        1 => Ok(tc.statements.into_iter().next().unwrap()),
        n => Err(ParseError { pos: 0, message: format!("expected 1 statement, found {n}") }),
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    /// Parse, render, re-parse: the two ASTs must be identical.
    fn roundtrip(sql: &str) {
        let one = parse_script(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let rendered = one.to_sql();
        let two = parse_script(&rendered).unwrap_or_else(|e| panic!("re-parse {rendered:?}: {e}"));
        assert_eq!(one, two, "round-trip mismatch for {sql:?} -> {rendered:?}");
    }

    #[test]
    fn roundtrip_core_dml() {
        roundtrip("CREATE TABLE t1 (v1 INT, v2 INT);");
        roundtrip("INSERT INTO t1 VALUES (1, 1), (2, 1);");
        roundtrip("SELECT v2 FROM t1 WHERE v1 = 1;");
        roundtrip("SELECT * FROM t1 ORDER BY v1 DESC LIMIT 10 OFFSET 2;");
        roundtrip("UPDATE t1 SET v1 = 1 WHERE v2 > 3;");
        roundtrip("DELETE FROM t1 WHERE v1 = 1;");
    }

    #[test]
    fn roundtrip_paper_figure_1() {
        roundtrip(
            "CREATE TABLE t1(v1 INT, v2 INT);\n\
             INSERT INTO t1 VALUES(1, 1);\n\
             INSERT INTO t1 VALUES(2, 1);\n\
             SELECT * FROM t1 ORDER BY v1;\n\
             SELECT v2 FROM t1 WHERE v1=1;",
        );
    }

    #[test]
    fn roundtrip_paper_case_study() {
        // Figure 7: the PostgreSQL SEGV reproducer.
        roundtrip(
            "CREATE TABLE v0( v4 INT, v3 INT UNIQUE, v2 INT , v1 INT UNIQUE ) ;\n\
             CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY COMPRESSION;\n\
             COPY ( SELECT 32 EXCEPT SELECT v3 + 16 FROM v0 ) TO STDOUT CSV HEADER ;\n\
             WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = - - - 48;",
        );
    }

    #[test]
    fn roundtrip_cve_2021_35643_shape() {
        // Figure 3: the synthesized MySQL crasher (window frame + trigger).
        roundtrip(
            "CREATE TABLE v0 (v1 YEAR);\n\
             INSERT LOW_PRIORITY IGNORE INTO v0 VALUES ( NULL ), (22471185.000000), ('x' LIKE NULL);\n\
             CREATE TRIGGER v0 AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0 SELECT * FROM v2 GROUP BY v1 ORDER BY RANK () OVER (ORDER BY v1);\n\
             SELECT LEAD (v1) OVER (ORDER BY v1 RANGE BETWEEN 1468.000 FOLLOWING AND 16 FOLLOWING ) AS v1 FROM v0;",
        );
    }

    #[test]
    fn roundtrip_ddl_variants() {
        roundtrip("CREATE TEMPORARY TABLE t (a INT PRIMARY KEY, b VARCHAR(100) NOT NULL);");
        roundtrip("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a), UNIQUE (b));");
        roundtrip("CREATE TABLE c (pid INT REFERENCES p(id), CHECK ((pid > 0)));");
        roundtrip("CREATE VIEW w AS SELECT * FROM t;");
        roundtrip("CREATE MATERIALIZED VIEW w AS SELECT a FROM t;");
        roundtrip("CREATE UNIQUE INDEX i ON t (a, b);");
        roundtrip("ALTER TABLE t ADD COLUMN c INT;");
        roundtrip("ALTER TABLE t DROP COLUMN c;");
        roundtrip("ALTER TABLE t RENAME TO u;");
        roundtrip("ALTER TABLE t RENAME COLUMN a TO z;");
        roundtrip("ALTER TABLE t ALTER COLUMN a TYPE TEXT;");
        roundtrip("DROP TABLE IF EXISTS t;");
        roundtrip("DROP TRIGGER tg ON t;");
        roundtrip("DROP VIEW w;");
        roundtrip("CREATE TABLE snap AS SELECT * FROM t;");
    }

    #[test]
    fn roundtrip_exotic_generic_ddl() {
        roundtrip("CREATE SEQUENCE s1;");
        roundtrip("ALTER SEQUENCE s1 RESTART;");
        roundtrip("CREATE EXTENSION pgcrypto;");
        roundtrip("DROP ACCESS METHOD am1;");
        roundtrip("CREATE FOREIGN DATA WRAPPER w1;");
        roundtrip("ALTER TEXT SEARCH CONFIGURATION cfg1;");
        roundtrip("CREATE LOGFILE GROUP lg1;");
        roundtrip("CREATE SPATIAL REFERENCE SYSTEM srs1;");
    }

    #[test]
    fn roundtrip_txn_and_session() {
        roundtrip("BEGIN; COMMIT;");
        roundtrip("START TRANSACTION; ROLLBACK;");
        roundtrip("SAVEPOINT sp1; ROLLBACK TO SAVEPOINT sp1; RELEASE SAVEPOINT sp1;");
        roundtrip("SET search_path = public;");
        roundtrip("SET @@SESSION.explicit_for_timestamp = OFF;");
        roundtrip("SET SESSION sql_mode = strict;");
        roundtrip("RESET search_path;");
        roundtrip("SHOW server_version;");
        roundtrip("PRAGMA foreign_keys = ON;");
        roundtrip("LOCK TABLE t IN EXCLUSIVE MODE;");
    }

    #[test]
    fn roundtrip_utility() {
        roundtrip("ANALYZE t;");
        roundtrip("VACUUM FULL t;");
        roundtrip("EXPLAIN SELECT * FROM t;");
        roundtrip("REINDEX TABLE t;");
        roundtrip("CHECKPOINT;");
        roundtrip("CLUSTER t;");
        roundtrip("DISCARD ALL;");
        roundtrip("LISTEN ch; NOTIFY ch, 'hi'; UNLISTEN ch;");
        roundtrip("COMMENT ON TABLE t IS 'a table';");
        roundtrip("CALL p(1, 'x');");
        roundtrip("REFRESH MATERIALIZED VIEW w;");
        roundtrip("GRANT SELECT ON t TO alice;");
        roundtrip("REVOKE SELECT ON t FROM alice;");
        roundtrip("TRUNCATE TABLE t;");
        roundtrip("COPY t (a, b) FROM STDIN;");
        roundtrip("VALUES (1, 2), (3, 4);");
    }

    #[test]
    fn roundtrip_misc_kinds() {
        roundtrip("SHOW TABLES;");
        roundtrip("SHOW CREATE TABLE t1;");
        roundtrip("FLUSH PRIVILEGES;");
        roundtrip("KILL 42;");
        roundtrip("XA BEGIN 'x1';");
        roundtrip("LOCK TABLES t1 READ;");
        roundtrip("UNLOCK TABLES;");
        roundtrip("USE db1;");
        roundtrip("DESCRIBE t1;");
        roundtrip("CHECK TABLE t1;");
        roundtrip("OPTIMIZE TABLE t1;");
        roundtrip("RENAME TABLE t1 TO t2;");
        roundtrip("PUT counter ON;");
        roundtrip("REBUILD t1;");
        roundtrip("EXEC PROCEDURE p1 ( );");
        roundtrip("SET TRANSACTION ISOLATION LEVEL READ COMMITTED;");
        roundtrip("PREPARE TRANSACTION 'gx';");
        roundtrip("IMPORT FOREIGN SCHEMA s1;");
        roundtrip("ALTER SYSTEM major freeze;");
        roundtrip("SHUTDOWN;");
    }

    #[test]
    fn roundtrip_queries_with_structure() {
        roundtrip("SELECT DISTINCT a, b AS bb FROM t WHERE a IN (1, 2, 3) GROUP BY a HAVING COUNT(*) > 1;");
        roundtrip("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id;");
        roundtrip("SELECT * FROM a CROSS JOIN b;");
        roundtrip("SELECT (SELECT MAX(x) FROM u) FROM t;");
        roundtrip("SELECT * FROM (SELECT a FROM t) AS sub;");
        roundtrip("SELECT 1 UNION ALL SELECT 2;");
        roundtrip("SELECT 1 EXCEPT SELECT 2 INTERSECT SELECT 3;");
        roundtrip("SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END FROM t;");
        roundtrip("SELECT CAST(a AS TEXT) FROM t;");
        roundtrip("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u);");
        roundtrip("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u);");
        roundtrip("SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b NOT LIKE 'x%';");
        roundtrip("SELECT a FROM t WHERE a IS NOT NULL OR b IS NULL;");
        roundtrip("SELECT COUNT(DISTINCT a), SUM(b) FROM t;");
        roundtrip("SELECT ROW_NUMBER() OVER (PARTITION BY a ORDER BY b DESC) FROM t;");
        roundtrip("SELECT t.* FROM t;");
        roundtrip("INSERT INTO t (a) SELECT a FROM u;");
        roundtrip("INSERT INTO t DEFAULT VALUES;");
        roundtrip("REPLACE INTO t VALUES (1);");
    }

    #[test]
    fn roundtrip_selectv_and_select_into() {
        roundtrip("SELECTV * FROM t;");
        roundtrip("SELECT a INTO t2 FROM t1 WHERE a > 0;");
        // FROM-less SELECT INTO: the printer must splice INTO before any
        // trailing clause, not append it after LIMIT.
        roundtrip("SELECT 3614 INTO v86 LIMIT 32;");
        roundtrip("SELECT 1781 INTO v23 OFFSET 3649;");
        roundtrip("SELECT 1 INTO v1;");
        // Clause keywords inside a parenthesized subquery must not attract
        // the INTO splice — it belongs after the outer projection list.
        roundtrip("SELECT (SELECT a FROM t1) INTO v9;");
        roundtrip("SELECT (SELECT a FROM t1) INTO v9 FROM t2;");
    }

    #[test]
    fn kind_is_correct_for_exotic_statements() {
        use lego_sqlast::{DdlVerb, ObjectKind, StmtKind};
        let s = parse_statement("CREATE SEQUENCE s1;").unwrap();
        assert_eq!(s.kind(), StmtKind::Ddl(DdlVerb::Create, ObjectKind::Sequence));
        let s = parse_statement("SHOW TABLES;").unwrap();
        assert_eq!(s.kind().name(), "SHOW TABLES");
        let s = parse_statement("XA BEGIN 'x';").unwrap();
        assert_eq!(s.kind().name(), "XA BEGIN");
    }

    #[test]
    fn garbage_fails_cleanly() {
        assert!(parse_script("FROBNICATE THE DATABASE;").is_err());
        assert!(parse_script("SELECT FROM WHERE;").is_err());
        assert!(parse_script("CREATE TABLE (;").is_err());
        assert!(parse_script("INSERT INTO;").is_err());
        assert!(parse_script("'just a string';").is_err());
    }

    #[test]
    fn every_ddl_kind_parses_back_to_its_kind() {
        use lego_sqlast::{Dialect, StmtKind};
        for d in Dialect::ALL {
            for k in d.supported_kinds() {
                use lego_sqlast::{DdlVerb, ObjectKind};
                let sql = match k {
                    // Kinds with dedicated grammar need well-formed examples.
                    StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table) => {
                        "CREATE TABLE x1 (a INT);".to_string()
                    }
                    StmtKind::Ddl(DdlVerb::Create, ObjectKind::View) => {
                        "CREATE VIEW x1 AS SELECT 1;".to_string()
                    }
                    StmtKind::Ddl(DdlVerb::Create, ObjectKind::MaterializedView) => {
                        "CREATE MATERIALIZED VIEW x1 AS SELECT 1;".to_string()
                    }
                    StmtKind::Ddl(DdlVerb::Create, ObjectKind::Index) => {
                        "CREATE INDEX x1 ON t (a);".to_string()
                    }
                    StmtKind::Ddl(DdlVerb::Create, ObjectKind::Trigger) => {
                        "CREATE TRIGGER x1 AFTER INSERT ON t FOR EACH ROW DELETE FROM t;"
                            .to_string()
                    }
                    StmtKind::Ddl(DdlVerb::Create, ObjectKind::Rule) => {
                        "CREATE RULE x1 AS ON INSERT TO t DO NOTHING;".to_string()
                    }
                    StmtKind::Ddl(DdlVerb::Alter, ObjectKind::Table) => {
                        "ALTER TABLE x1 ADD COLUMN a INT;".to_string()
                    }
                    StmtKind::Ddl(verb, obj) => {
                        format!("{} {} x1;", verb.keyword(), obj.keyword())
                    }
                    StmtKind::Other(_) => continue, // exercised by dedicated tests
                };
                let parsed =
                    parse_script(&sql).unwrap_or_else(|e| panic!("cannot parse {sql:?}: {e}"));
                assert_eq!(parsed.statements[0].kind(), k, "for {sql:?}");
            }
        }
    }

    #[test]
    fn roundtrip_multibyte_string_literals() {
        // Regression: the lexer used to consume string-literal bytes one at
        // a time, mangling multi-byte UTF-8 into Latin-1 on re-render.
        roundtrip("SELECT 'café';");
        roundtrip("INSERT INTO t1 VALUES ('naïve — ☕', 1);");
    }

    #[test]
    fn parse_errors_carry_token_index_and_snippet() {
        // Parser error: pos is a token index, message carries the byte
        // offset plus a source excerpt.
        let err = parse_script("SELECT a FROM t1 WHERE;").unwrap_err();
        assert!(err.message.contains("at byte"), "{}", err.message);
        assert!(err.message.contains("near `"), "{}", err.message);
        // Lexer error: same coordinate system — pos is the index the bad
        // token would have had, not a byte offset masquerading as one.
        let err = parse_script("SELECT 1 $ 2;").unwrap_err();
        assert_eq!(err.pos, 2);
        assert!(err.message.contains("byte 9"), "{}", err.message);
        assert!(err.message.contains("near `$ 2;`"), "{}", err.message);
        // Errors at end-of-input clamp the snippet instead of panicking.
        let err = parse_script("SELECT").unwrap_err();
        assert!(err.message.contains("at byte 6"), "{}", err.message);
    }

    #[test]
    fn error_snippets_respect_char_boundaries() {
        // A multi-byte char straddling the 24-byte snippet window must not
        // cause a slice panic.
        let sql = format!("SELECT a FROM t1 WHERE '{}' ☕☕☕☕☕☕☕☕", "é".repeat(16));
        let err = parse_script(&sql).unwrap_err();
        assert!(err.message.contains("near `"), "{}", err.message);
    }

    #[test]
    fn traced_parse_records_rule_edges() {
        use lego_coverage::{CovRecorder, GlobalCoverage};
        let rec = CovRecorder::new();
        let (res, map) = parse_script_traced("SELECT v1 FROM t1 WHERE v1 = 1;", rec);
        assert!(res.is_ok());
        let mut virgin = GlobalCoverage::new();
        assert!(virgin.merge(&map), "traced parse produced no rule edges");
        assert!(virgin.edges_covered() > 3);
    }

    #[test]
    fn traced_parse_is_deterministic_and_matches_untraced() {
        use lego_coverage::CovRecorder;
        let sql = "CREATE TABLE t1 (a INT); INSERT INTO t1 VALUES (1); SELECT * FROM t1;";
        let (a, map_a) = parse_script_traced(sql, CovRecorder::new());
        let (b, map_b) = parse_script_traced(sql, CovRecorder::new());
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(map_a.digest(), map_b.digest());
        // Tracing must not change the parse result.
        assert_eq!(a.unwrap(), parse_script(sql).unwrap());
    }

    #[test]
    fn traced_parse_returns_partial_map_on_error() {
        use lego_coverage::{CovRecorder, GlobalCoverage};
        let (res, map) = parse_script_traced("SELECT a FROM t1 WHERE;", CovRecorder::new());
        assert!(res.is_err());
        let mut virgin = GlobalCoverage::new();
        assert!(virgin.merge(&map), "partial traversal should still record rules");
    }

    #[test]
    fn statement_boundaries_reset_the_rule_chain() {
        use lego_coverage::CovRecorder;
        // Two identical statements traverse the same rule→rule edge *set*
        // (hit counts double, but indices match) because the chain resets at
        // each `;`. A leaked chain would record an extra cross-statement
        // edge: first-rule-of-stmt2 XORed with stmt1's final prev instead of
        // with 0.
        let (_, once) = parse_script_traced("SELECT 1;", CovRecorder::new());
        let (_, twice) = parse_script_traced("SELECT 1; SELECT 1;", CovRecorder::new());
        let idx = |m: &lego_coverage::CovMap| -> Vec<usize> {
            m.iter_nonzero().map(|(i, _)| i).collect()
        };
        assert_eq!(idx(&once), idx(&twice), "chain leaked across statement boundary");
    }
}
