//! The recursive-descent parser.

use crate::lexer::Tok;
use crate::phrases;
use lego_coverage::{CovMap, CovRecorder};
use lego_sqlast::ast::*;
use lego_sqlast::expr::*;
use lego_sqlast::kind::DdlVerb;
use std::fmt;

/// Record a grammar-rule entry on a tracing parser. Each invocation site
/// gets its own compile-time [`lego_coverage::SiteId`] (the macro expands
/// `site_id!` at the call site), and [`CovRecorder::hit`] chains rule→rule
/// edges AFL-style, so the rule map captures *paths* through the grammar,
/// not just the set of rules entered. One branch when tracing is off.
macro_rules! rule {
    ($p:expr) => {
        if let Some(r) = $p.rules.as_mut() {
            r.hit(lego_coverage::site_id!());
        }
    };
}

/// A parse error with token position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

pub struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// Grammar-rule coverage recorder; `None` on the (default) untraced
    /// path, which keeps plain parsing allocation- and branch-cheap.
    rules: Option<CovRecorder>,
}

impl Parser {
    pub fn new(toks: Vec<Tok>) -> Self {
        Self { toks, pos: 0, rules: None }
    }

    /// A parser that records grammar-rule traversal coverage into `rec`.
    pub fn with_rules(toks: Vec<Tok>, rec: CovRecorder) -> Self {
        Self { toks, pos: 0, rules: Some(rec) }
    }

    /// Reset the rule→rule edge chain (call at each statement boundary so
    /// rule edges never span statements — mirroring how the engine resets
    /// its branch-edge chain per statement).
    pub fn reset_rule_chain(&mut self) {
        if let Some(r) = self.rules.as_mut() {
            r.reset_edge_chain();
        }
    }

    /// Take back the rule-coverage map (empty map if tracing was off).
    pub fn into_rule_map(self) -> CovMap {
        match self.rules {
            Some(r) => r.into_map(),
            None => CovMap::new(),
        }
    }

    // -- token plumbing ----------------------------------------------------

    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Tok> {
        self.toks.get(self.pos + offset)
    }

    fn rest(&self) -> &[Tok] {
        &self.toks[self.pos.min(self.toks.len())..]
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub fn error(&self, msg: impl Into<String>) -> ParseError {
        let mut message = msg.into();
        if let Some(t) = self.peek() {
            message.push_str(&format!(" (at `{}`)", t));
        }
        ParseError { pos: self.pos, message }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn peek_kw_at(&self, offset: usize, kw: &str) -> bool {
        self.peek_at(offset).is_some_and(|t| t.is_kw(kw))
    }

    fn peek_sym(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_sym(s))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}")))
        }
    }

    fn expect_sym(&mut self, s: &str) -> PResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    pub fn skip_semicolons(&mut self) {
        while self.eat_sym(";") {}
    }

    fn at_stmt_end(&self) -> bool {
        self.at_end() || self.peek_sym(";")
    }

    /// Join all tokens up to the statement end into one string (generic
    /// argument capture for the statement long tail).
    fn rest_of_statement(&mut self) -> Option<String> {
        let mut parts: Vec<String> = Vec::new();
        while !self.at_stmt_end() {
            parts.push(self.bump().unwrap().to_string());
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts.join(" "))
        }
    }

    // -- statements ---------------------------------------------------------

    pub fn parse_statement(&mut self) -> PResult<Statement> {
        rule!(self);
        // The generic long tail first: longest keyword-phrase match over all
        // statement kinds without dedicated parsers.
        if let Some((kind, n)) = phrases::match_misc(self.rest()) {
            self.pos += n;
            let arg = self.rest_of_statement();
            return Ok(Statement::Misc(MiscStmt { kind, arg }));
        }
        let head = match self.peek() {
            Some(Tok::Ident(s)) => s.to_ascii_uppercase(),
            _ => return Err(self.error("expected a statement keyword")),
        };
        match head.as_str() {
            "CREATE" => self.parse_create(),
            "ALTER" => self.parse_alter(),
            "DROP" => self.parse_drop(),
            "SELECT" | "SELECTV" => self.parse_select_statement(),
            "VALUES" => {
                self.bump();
                Ok(Statement::Values(self.parse_values_rows()?))
            }
            "WITH" => self.parse_with(),
            "INSERT" => self.parse_insert(false),
            "REPLACE" => self.parse_insert(true),
            "UPDATE" => self.parse_update(),
            "DELETE" => self.parse_delete(),
            "TRUNCATE" => {
                self.bump();
                self.eat_kw("TABLE");
                Ok(Statement::Truncate { table: self.ident()? })
            }
            "COPY" => self.parse_copy(),
            "GRANT" => self.parse_grant(false),
            "REVOKE" => self.parse_grant(true),
            "BEGIN" => {
                self.bump();
                self.eat_kw("TRANSACTION");
                self.eat_kw("WORK");
                Ok(Statement::Begin)
            }
            "START" => {
                self.bump();
                self.expect_kw("TRANSACTION")?;
                Ok(Statement::StartTransaction)
            }
            "COMMIT" => {
                self.bump();
                self.eat_kw("WORK");
                Ok(Statement::Commit)
            }
            "END" => {
                self.bump();
                Ok(Statement::End)
            }
            "ROLLBACK" => {
                self.bump();
                if self.eat_kw("TO") {
                    self.eat_kw("SAVEPOINT");
                    Ok(Statement::RollbackToSavepoint(self.ident()?))
                } else {
                    self.eat_kw("WORK");
                    Ok(Statement::Rollback)
                }
            }
            "ABORT" => {
                self.bump();
                Ok(Statement::Abort)
            }
            "SAVEPOINT" => {
                self.bump();
                Ok(Statement::Savepoint(self.ident()?))
            }
            "RELEASE" => {
                self.bump();
                self.eat_kw("SAVEPOINT");
                Ok(Statement::ReleaseSavepoint(self.ident()?))
            }
            "SET" => self.parse_set(),
            "RESET" => {
                self.bump();
                Ok(Statement::Reset(self.ident()?))
            }
            "SHOW" => {
                self.bump();
                Ok(Statement::Show(self.ident()?))
            }
            "PRAGMA" => {
                self.bump();
                let name = self.ident()?;
                let value = if self.eat_sym("=") {
                    Some(
                        self.bump().ok_or_else(|| self.error("expected pragma value"))?.to_string(),
                    )
                } else {
                    None
                };
                Ok(Statement::Pragma { name, value })
            }
            "ANALYZE" => {
                self.bump();
                let t = if self.at_stmt_end() { None } else { Some(self.ident()?) };
                Ok(Statement::Analyze(t))
            }
            "VACUUM" => {
                self.bump();
                let full = self.eat_kw("FULL");
                let t = if self.at_stmt_end() { None } else { Some(self.ident()?) };
                Ok(Statement::Vacuum { table: t, full })
            }
            "EXPLAIN" => {
                self.bump();
                self.eat_kw("ANALYZE");
                Ok(Statement::Explain(Box::new(self.parse_statement()?)))
            }
            "REINDEX" => {
                self.bump();
                let t = if self.eat_kw("TABLE") { Some(self.ident()?) } else { None };
                Ok(Statement::Reindex(t))
            }
            "CHECKPOINT" => {
                self.bump();
                Ok(Statement::Checkpoint)
            }
            "CLUSTER" => {
                self.bump();
                let t = if self.at_stmt_end() { None } else { Some(self.ident()?) };
                Ok(Statement::Cluster(t))
            }
            "DISCARD" => {
                self.bump();
                Ok(Statement::Discard(self.ident()?))
            }
            "LISTEN" => {
                self.bump();
                Ok(Statement::Listen(self.ident()?))
            }
            "NOTIFY" => {
                self.bump();
                let channel = self.ident()?;
                let payload = if self.eat_sym(",") {
                    match self.bump() {
                        Some(Tok::Str(s)) => Some(s),
                        _ => return Err(self.error("expected notify payload string")),
                    }
                } else {
                    None
                };
                Ok(Statement::Notify { channel, payload })
            }
            "UNLISTEN" => {
                self.bump();
                Ok(Statement::Unlisten(self.ident()?))
            }
            "LOCK" => {
                self.bump();
                self.eat_kw("TABLE");
                let table = self.ident()?;
                let mode = if self.eat_kw("IN") {
                    let mut words = Vec::new();
                    while !self.peek_kw("MODE") && !self.at_stmt_end() {
                        words.push(self.ident()?);
                    }
                    self.expect_kw("MODE")?;
                    Some(words.join(" "))
                } else {
                    None
                };
                Ok(Statement::LockTable { table, mode })
            }
            "COMMENT" => {
                self.bump();
                self.expect_kw("ON")?;
                let (object, n) = phrases::match_object(self.rest())
                    .ok_or_else(|| self.error("expected object kind after COMMENT ON"))?;
                self.pos += n;
                let name = self.ident()?;
                self.expect_kw("IS")?;
                let text = match self.bump() {
                    Some(Tok::Str(s)) => s,
                    _ => return Err(self.error("expected comment string")),
                };
                Ok(Statement::Comment { object, name, text })
            }
            "CALL" => {
                self.bump();
                let name = self.ident()?;
                self.expect_sym("(")?;
                let mut args = Vec::new();
                if !self.peek_sym(")") {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym(")")?;
                Ok(Statement::Call { name, args })
            }
            "REFRESH" => {
                self.bump();
                self.expect_kw("MATERIALIZED")?;
                self.expect_kw("VIEW")?;
                Ok(Statement::RefreshMatView(self.ident()?))
            }
            other => Err(self.error(format!("unknown statement keyword `{other}`"))),
        }
    }

    // -- DDL -----------------------------------------------------------------

    fn parse_create(&mut self) -> PResult<Statement> {
        rule!(self);
        self.expect_kw("CREATE")?;
        let or_replace = if self.peek_kw("OR") && self.peek_kw_at(1, "REPLACE") {
            self.pos += 2;
            true
        } else {
            false
        };
        let temporary = self.eat_kw("TEMPORARY") || self.eat_kw("TEMP");
        let unique = self.eat_kw("UNIQUE");
        let materialized = self.eat_kw("MATERIALIZED");

        if self.eat_kw("TABLE") {
            let if_not_exists = if self.peek_kw("IF")
                && self.peek_kw_at(1, "NOT")
                && self.peek_kw_at(2, "EXISTS")
            {
                self.pos += 3;
                true
            } else {
                false
            };
            let name = self.ident()?;
            if self.eat_kw("AS") {
                let query = self.parse_query()?;
                return Ok(Statement::CreateTableAs { name, query: Box::new(query) });
            }
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            let mut constraints = Vec::new();
            loop {
                if self.peek_kw("PRIMARY") && self.peek_kw_at(1, "KEY") {
                    self.pos += 2;
                    constraints.push(TableConstraint::PrimaryKey(self.parse_paren_names()?));
                } else if self.peek_kw("UNIQUE") && self.peek_at(1).is_some_and(|t| t.is_sym("(")) {
                    self.pos += 1;
                    constraints.push(TableConstraint::Unique(self.parse_paren_names()?));
                } else if self.peek_kw("CHECK") {
                    self.pos += 1;
                    self.expect_sym("(")?;
                    let e = self.parse_expr()?;
                    self.expect_sym(")")?;
                    constraints.push(TableConstraint::Check(e));
                } else if self.peek_kw("FOREIGN") && self.peek_kw_at(1, "KEY") {
                    self.pos += 2;
                    let columns2 = self.parse_paren_names()?;
                    self.expect_kw("REFERENCES")?;
                    let ref_table = self.ident()?;
                    let ref_columns =
                        if self.peek_sym("(") { self.parse_paren_names()? } else { vec![] };
                    constraints.push(TableConstraint::ForeignKey {
                        columns: columns2,
                        ref_table,
                        ref_columns,
                    });
                } else {
                    columns.push(self.parse_column_def()?);
                }
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Statement::CreateTable(CreateTable {
                name,
                temporary,
                if_not_exists,
                columns,
                constraints,
            }));
        }
        if self.eat_kw("VIEW") {
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let query = self.parse_query()?;
            return Ok(Statement::CreateView(CreateView {
                name,
                or_replace,
                materialized,
                query: Box::new(query),
            }));
        }
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            let columns = self.parse_paren_names()?;
            return Ok(Statement::CreateIndex(CreateIndex { name, unique, table, columns }));
        }
        if self.eat_kw("TRIGGER") {
            let name = self.ident()?;
            let timing = if self.eat_kw("BEFORE") {
                TriggerTiming::Before
            } else {
                self.expect_kw("AFTER")?;
                TriggerTiming::After
            };
            let event = self.parse_dml_event()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            let for_each_row = if self.peek_kw("FOR") {
                self.pos += 1;
                self.expect_kw("EACH")?;
                self.expect_kw("ROW")?;
                true
            } else {
                false
            };
            let action = Box::new(self.parse_statement()?);
            return Ok(Statement::CreateTrigger(CreateTrigger {
                name,
                timing,
                event,
                table,
                for_each_row,
                action,
            }));
        }
        if self.eat_kw("RULE") {
            let name = self.ident()?;
            self.expect_kw("AS")?;
            self.expect_kw("ON")?;
            let event = self.parse_dml_event()?;
            self.expect_kw("TO")?;
            let table = self.ident()?;
            self.expect_kw("DO")?;
            let instead = self.eat_kw("INSTEAD");
            let action =
                if self.eat_kw("NOTHING") { None } else { Some(Box::new(self.parse_statement()?)) };
            return Ok(Statement::CreateRule(CreateRule {
                name,
                or_replace,
                table,
                event,
                instead,
                action,
            }));
        }
        // Generic object DDL.
        let (object, n) = phrases::match_object(self.rest())
            .ok_or_else(|| self.error("expected object kind after CREATE"))?;
        self.pos += n;
        let name = self.ident().unwrap_or_default();
        let arg = self.rest_of_statement();
        Ok(Statement::GenericDdl(GenericDdl { verb: DdlVerb::Create, object, name, arg }))
    }

    fn parse_alter(&mut self) -> PResult<Statement> {
        rule!(self);
        self.expect_kw("ALTER")?;
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            let action = if self.eat_kw("ADD") {
                self.eat_kw("COLUMN");
                AlterTableAction::AddColumn(self.parse_column_def()?)
            } else if self.eat_kw("DROP") {
                self.eat_kw("COLUMN");
                AlterTableAction::DropColumn(self.ident()?)
            } else if self.eat_kw("RENAME") {
                if self.eat_kw("TO") {
                    AlterTableAction::RenameTo(self.ident()?)
                } else {
                    self.eat_kw("COLUMN");
                    let old = self.ident()?;
                    self.expect_kw("TO")?;
                    AlterTableAction::RenameColumn { old, new: self.ident()? }
                }
            } else if self.eat_kw("ALTER") {
                self.eat_kw("COLUMN");
                let cname = self.ident()?;
                self.expect_kw("TYPE")?;
                AlterTableAction::AlterColumnType { name: cname, ty: self.parse_data_type()? }
            } else {
                return Err(self.error("expected ALTER TABLE action"));
            };
            return Ok(Statement::AlterTable(AlterTable { name, action }));
        }
        let (object, n) = phrases::match_object(self.rest())
            .ok_or_else(|| self.error("expected object kind after ALTER"))?;
        self.pos += n;
        let name = self.ident().unwrap_or_default();
        let arg = self.rest_of_statement();
        Ok(Statement::GenericDdl(GenericDdl { verb: DdlVerb::Alter, object, name, arg }))
    }

    fn parse_drop(&mut self) -> PResult<Statement> {
        rule!(self);
        self.expect_kw("DROP")?;
        let (object, n) = phrases::match_object(self.rest())
            .ok_or_else(|| self.error("expected object kind after DROP"))?;
        self.pos += n;
        let if_exists = if self.peek_kw("IF") && self.peek_kw_at(1, "EXISTS") {
            self.pos += 2;
            true
        } else {
            false
        };
        let name = self.ident()?;
        let on_table = if self.eat_kw("ON") { Some(self.ident()?) } else { None };
        Ok(Statement::Drop(DropStmt { object, if_exists, name, on_table }))
    }

    fn parse_dml_event(&mut self) -> PResult<DmlEvent> {
        rule!(self);
        if self.eat_kw("INSERT") {
            Ok(DmlEvent::Insert)
        } else if self.eat_kw("UPDATE") {
            Ok(DmlEvent::Update)
        } else if self.eat_kw("DELETE") {
            Ok(DmlEvent::Delete)
        } else {
            Err(self.error("expected INSERT, UPDATE, or DELETE"))
        }
    }

    fn parse_column_def(&mut self) -> PResult<ColumnDef> {
        rule!(self);
        let name = self.ident()?;
        let ty = self.parse_data_type()?;
        let mut constraints = Vec::new();
        loop {
            if self.peek_kw("PRIMARY") && self.peek_kw_at(1, "KEY") {
                self.pos += 2;
                constraints.push(ColumnConstraint::PrimaryKey);
            } else if self.eat_kw("UNIQUE") {
                constraints.push(ColumnConstraint::Unique);
            } else if self.peek_kw("NOT") && self.peek_kw_at(1, "NULL") {
                self.pos += 2;
                constraints.push(ColumnConstraint::NotNull);
            } else if self.eat_kw("DEFAULT") {
                constraints.push(ColumnConstraint::Default(self.parse_expr()?));
            } else if self.eat_kw("CHECK") {
                self.expect_sym("(")?;
                let e = self.parse_expr()?;
                self.expect_sym(")")?;
                constraints.push(ColumnConstraint::Check(e));
            } else if self.eat_kw("REFERENCES") || self.eat_kw("REFERENCE") {
                let table = self.ident().unwrap_or_default();
                let column = if self.eat_sym("(") {
                    let c = self.ident()?;
                    self.expect_sym(")")?;
                    Some(c)
                } else {
                    None
                };
                constraints.push(ColumnConstraint::References { table, column });
            } else {
                break;
            }
        }
        Ok(ColumnDef { name, ty, constraints })
    }

    fn parse_data_type(&mut self) -> PResult<DataType> {
        rule!(self);
        let name = self.ident()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INT" | "INTEGER" => DataType::Int,
            "BIGINT" => DataType::BigInt,
            "SMALLINT" => DataType::SmallInt,
            "FLOAT" | "REAL" => DataType::Float,
            "DOUBLE" => {
                self.eat_kw("PRECISION");
                DataType::Double
            }
            "DECIMAL" | "NUMERIC" => {
                let (mut p, mut s) = (10u8, 0u8);
                if self.eat_sym("(") {
                    p = self.int_literal()? as u8;
                    if self.eat_sym(",") {
                        s = self.int_literal()? as u8;
                    }
                    self.expect_sym(")")?;
                }
                DataType::Decimal(p, s)
            }
            "TEXT" => DataType::Text,
            "VARCHAR" => {
                let mut n = 255u32;
                if self.eat_sym("(") {
                    n = self.int_literal()? as u32;
                    self.expect_sym(")")?;
                }
                DataType::VarChar(n)
            }
            "CHAR" => {
                let mut n = 1u32;
                if self.eat_sym("(") {
                    n = self.int_literal()? as u32;
                    self.expect_sym(")")?;
                }
                DataType::Char(n)
            }
            "BOOLEAN" | "BOOL" => DataType::Bool,
            "BLOB" | "BYTEA" => DataType::Blob,
            "DATE" => DataType::Date,
            "TIME" => DataType::Time,
            "TIMESTAMP" => DataType::Timestamp,
            "YEAR" => DataType::Year,
            other => return Err(self.error(format!("unknown data type `{other}`"))),
        };
        // Tolerate MySQL-style attribute noise (`YEAR ZEROFILL ZEROFILL`).
        while self.eat_kw("ZEROFILL") || self.eat_kw("UNSIGNED") || self.eat_kw("SIGNED") {}
        Ok(ty)
    }

    fn int_literal(&mut self) -> PResult<i64> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            _ => Err(self.error("expected integer literal")),
        }
    }

    fn parse_paren_names(&mut self) -> PResult<Vec<String>> {
        rule!(self);
        self.expect_sym("(")?;
        let mut names = Vec::new();
        loop {
            names.push(self.ident()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(names)
    }

    // -- DML -----------------------------------------------------------------

    fn parse_select_statement(&mut self) -> PResult<Statement> {
        rule!(self);
        let selectv = self.peek_kw("SELECTV");
        if selectv {
            // Rewrite the head token so the query parser sees a plain SELECT.
            self.toks[self.pos] = Tok::Ident("SELECT".into());
        }
        let mut into: Option<String> = None;
        let query = self.parse_query_with_into(Some(&mut into))?;
        let variant = if selectv {
            SelectVariant::SelectV
        } else if let Some(t) = into {
            SelectVariant::Into(t)
        } else {
            SelectVariant::Plain
        };
        Ok(Statement::Select(SelectStmt { query: Box::new(query), variant }))
    }

    fn parse_insert(&mut self, replace: bool) -> PResult<Statement> {
        rule!(self);
        self.bump(); // INSERT or REPLACE
        let low_priority = self.eat_kw("LOW_PRIORITY");
        let ignore = self.eat_kw("IGNORE");
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.peek_sym("(") {
            columns = self.parse_paren_names()?;
        }
        let source = if self.eat_kw("VALUES") {
            InsertSource::Values(self.parse_values_rows()?)
        } else if self.peek_kw("SELECT") || self.peek_kw("VALUES") {
            InsertSource::Query(Box::new(self.parse_query()?))
        } else if self.peek_kw("DEFAULT") {
            self.pos += 1;
            self.expect_kw("VALUES")?;
            InsertSource::DefaultValues
        } else if self.at_stmt_end() {
            // Trigger bodies in the wild sometimes say just `INSERT INTO t`.
            InsertSource::DefaultValues
        } else {
            return Err(self.error("expected VALUES, SELECT, or DEFAULT VALUES"));
        };
        Ok(Statement::Insert(Insert { table, columns, source, ignore, replace, low_priority }))
    }

    fn parse_values_rows(&mut self) -> PResult<Vec<Vec<Expr>>> {
        rule!(self);
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            if !self.peek_sym(")") {
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(rows)
    }

    fn parse_update(&mut self) -> PResult<Statement> {
        rule!(self);
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            assignments.push((col, self.parse_expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_ = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update(Update { table, assignments, where_ }))
    }

    fn parse_delete(&mut self) -> PResult<Statement> {
        rule!(self);
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_ = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete(Delete { table, where_ }))
    }

    fn parse_with(&mut self) -> PResult<Statement> {
        rule!(self);
        self.expect_kw("WITH")?;
        let mut ctes = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect_kw("AS")?;
            self.expect_sym("(")?;
            let body = if self.peek_kw("INSERT")
                || self.peek_kw("UPDATE")
                || self.peek_kw("DELETE")
                || self.peek_kw("REPLACE")
            {
                CteBody::Dml(Box::new(self.parse_statement()?))
            } else {
                CteBody::Query(Box::new(self.parse_query()?))
            };
            self.expect_sym(")")?;
            ctes.push(Cte { name, body });
            if !self.eat_sym(",") {
                break;
            }
        }
        let body = Box::new(self.parse_statement()?);
        Ok(Statement::With(WithStmt { ctes, body }))
    }

    fn parse_copy(&mut self) -> PResult<Statement> {
        rule!(self);
        self.expect_kw("COPY")?;
        let source = if self.eat_sym("(") {
            let q = self.parse_query()?;
            self.expect_sym(")")?;
            CopySource::Query(Box::new(q))
        } else {
            let name = self.ident()?;
            let columns = if self.peek_sym("(") { self.parse_paren_names()? } else { vec![] };
            CopySource::Table { name, columns }
        };
        let direction = if self.eat_kw("TO") {
            CopyDirection::To
        } else {
            self.expect_kw("FROM")?;
            CopyDirection::From
        };
        let target = match self.bump() {
            Some(t @ (Tok::Ident(_) | Tok::Str(_))) => t.to_string(),
            _ => return Err(self.error("expected COPY target")),
        };
        let mut options = Vec::new();
        while !self.at_stmt_end() {
            options.push(self.ident()?);
        }
        Ok(Statement::Copy(CopyStmt { source, direction, target, options }))
    }

    fn parse_grant(&mut self, revoke: bool) -> PResult<Statement> {
        rule!(self);
        self.bump(); // GRANT or REVOKE
        let mut priv_words = Vec::new();
        while !self.peek_kw("ON") && !self.at_stmt_end() {
            priv_words.push(self.bump().unwrap().to_string());
        }
        self.expect_kw("ON")?;
        self.eat_kw("TABLE");
        let object = self.ident()?;
        if revoke {
            self.expect_kw("FROM")?;
        } else {
            self.expect_kw("TO")?;
        }
        let grantee = self.ident()?;
        let g = GrantStmt { privilege: priv_words.join(" "), object, grantee };
        Ok(if revoke { Statement::Revoke(g) } else { Statement::Grant(g) })
    }

    fn parse_set(&mut self) -> PResult<Statement> {
        rule!(self);
        self.expect_kw("SET")?;
        let mut scope = None;
        if self.eat_sym("@@") {
            let s = self.ident()?;
            self.expect_sym(".")?;
            scope = Some(format!("@@{}.", s));
        } else if (self.peek_kw("SESSION") || self.peek_kw("GLOBAL") || self.peek_kw("LOCAL"))
            && matches!(self.peek_at(1), Some(Tok::Ident(_)))
        {
            scope = Some(self.ident()?.to_ascii_uppercase());
        }
        let name = self.ident()?;
        if !self.eat_sym("=") {
            self.expect_kw("TO")?;
        }
        let value =
            self.rest_of_statement().ok_or_else(|| self.error("expected value after SET"))?;
        Ok(Statement::Set(SetStmt { scope, name, value }))
    }

    // -- queries ---------------------------------------------------------------

    pub fn parse_query(&mut self) -> PResult<Query> {
        self.parse_query_with_into(None)
    }

    fn parse_query_with_into(&mut self, into: Option<&mut Option<String>>) -> PResult<Query> {
        rule!(self);
        let mut body = self.parse_set_atom(into)?;
        loop {
            let op = if self.peek_kw("UNION") {
                SetOp::Union
            } else if self.peek_kw("EXCEPT") {
                SetOp::Except
            } else if self.peek_kw("INTERSECT") {
                SetOp::Intersect
            } else {
                break;
            };
            self.pos += 1;
            let all = self.eat_kw("ALL");
            let right = self.parse_set_atom(None)?;
            body = SetExpr::SetOp { op, all, left: Box::new(body), right: Box::new(right) };
        }
        let mut order_by = Vec::new();
        if self.peek_kw("ORDER") {
            self.pos += 1;
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") { Some(self.parse_expr()?) } else { None };
        let offset = if self.eat_kw("OFFSET") { Some(self.parse_expr()?) } else { None };
        Ok(Query { body, order_by, limit, offset })
    }

    fn parse_set_atom(&mut self, into: Option<&mut Option<String>>) -> PResult<SetExpr> {
        rule!(self);
        if self.eat_kw("VALUES") {
            return Ok(SetExpr::Values(self.parse_values_rows()?));
        }
        Ok(SetExpr::Select(Box::new(self.parse_select_core(into)?)))
    }

    fn parse_select_core(&mut self, into: Option<&mut Option<String>>) -> PResult<Select> {
        rule!(self);
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projection = Vec::new();
        loop {
            if self.eat_sym("*") {
                projection.push(SelectItem::Star);
            } else if matches!(self.peek(), Some(Tok::Ident(_)))
                && self.peek_at(1).is_some_and(|t| t.is_sym("."))
                && self.peek_at(2).is_some_and(|t| t.is_sym("*"))
            {
                let t = self.ident()?;
                self.pos += 2;
                projection.push(SelectItem::QualifiedStar(t));
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
                projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        if self.peek_kw("INTO") {
            match into {
                Some(slot) => {
                    self.pos += 1;
                    *slot = Some(self.ident()?);
                }
                None => return Err(self.error("INTO is not allowed in a subquery")),
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let where_ = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.peek_kw("GROUP") {
            self.pos += 1;
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.parse_expr()?) } else { None };
        Ok(Select { distinct, projection, from, where_, group_by, having })
    }

    fn parse_table_ref(&mut self) -> PResult<TableRef> {
        rule!(self);
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.peek_kw("JOIN") {
                self.pos += 1;
                JoinKind::Inner
            } else if self.peek_kw("INNER") && self.peek_kw_at(1, "JOIN") {
                self.pos += 2;
                JoinKind::Inner
            } else if self.peek_kw("LEFT") {
                self.pos += 1;
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.peek_kw("RIGHT") {
                self.pos += 1;
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Right
            } else if self.peek_kw("CROSS") {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let on = if self.eat_kw("ON") { Some(self.parse_expr()?) } else { None };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> PResult<TableRef> {
        rule!(self);
        if self.eat_sym("(") {
            let query = self.parse_query()?;
            self.expect_sym(")")?;
            self.expect_kw("AS")?;
            let alias = self.ident()?;
            return Ok(TableRef::Subquery { query: Box::new(query), alias });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
        Ok(TableRef::Named { name, alias })
    }

    // -- expressions -------------------------------------------------------------

    pub fn parse_expr(&mut self) -> PResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        rule!(self);
        let mut l = self.parse_and()?;
        while self.eat_kw("OR") {
            let r = self.parse_and()?;
            l = Expr::binary(l, BinOp::Or, r);
        }
        Ok(l)
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        rule!(self);
        let mut l = self.parse_not()?;
        while self.eat_kw("AND") {
            let r = self.parse_not()?;
            l = Expr::binary(l, BinOp::And, r);
        }
        Ok(l)
    }

    fn parse_not(&mut self) -> PResult<Expr> {
        rule!(self);
        if self.peek_kw("NOT") && self.peek_kw_at(1, "EXISTS") {
            self.pos += 2;
            self.expect_sym("(")?;
            let q = self.parse_query()?;
            self.expect_sym(")")?;
            return Ok(Expr::Exists { query: Box::new(q), negated: true });
        }
        // `NOT LIKE` / `NOT IN` / `NOT BETWEEN` are postfix forms handled in
        // parse_cmp, so only treat NOT as prefix when not followed by them...
        // which requires an operand first. A prefix NOT here always applies
        // to a full comparison.
        if self.peek_kw("NOT")
            && !self.peek_kw_at(1, "LIKE")
            && !self.peek_kw_at(1, "IN")
            && !self.peek_kw_at(1, "BETWEEN")
        {
            self.pos += 1;
            let inner = self.parse_not()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> PResult<Expr> {
        rule!(self);
        let mut l = self.parse_add()?;
        loop {
            if let Some(op) = self.peek_cmp_op() {
                self.pos += 1;
                let r = self.parse_add()?;
                l = Expr::binary(l, op, r);
                continue;
            }
            let negated = self.peek_kw("NOT")
                && (self.peek_kw_at(1, "LIKE")
                    || self.peek_kw_at(1, "IN")
                    || self.peek_kw_at(1, "BETWEEN"));
            if negated {
                self.pos += 1;
            }
            if self.eat_kw("LIKE") {
                let pattern = self.parse_add()?;
                l = Expr::Like { expr: Box::new(l), pattern: Box::new(pattern), negated };
                continue;
            }
            if self.eat_kw("IN") {
                self.expect_sym("(")?;
                let mut list = Vec::new();
                if !self.peek_sym(")") {
                    loop {
                        list.push(self.parse_expr()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym(")")?;
                l = Expr::InList { expr: Box::new(l), list, negated };
                continue;
            }
            if self.eat_kw("BETWEEN") {
                let low = self.parse_add()?;
                self.expect_kw("AND")?;
                let high = self.parse_add()?;
                l = Expr::Between {
                    expr: Box::new(l),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
                continue;
            }
            if negated {
                return Err(self.error("dangling NOT"));
            }
            if self.peek_kw("IS") {
                self.pos += 1;
                let neg = self.eat_kw("NOT");
                if self.eat_kw("NULL") {
                    l = Expr::IsNull { expr: Box::new(l), negated: neg };
                    continue;
                }
                // `IS TRUE` / `IS FALSE` normalize to comparisons.
                if self.eat_kw("TRUE") {
                    l = Expr::binary(l, if neg { BinOp::Ne } else { BinOp::Eq }, Expr::Bool(true));
                    continue;
                }
                if self.eat_kw("FALSE") {
                    l = Expr::binary(l, if neg { BinOp::Ne } else { BinOp::Eq }, Expr::Bool(false));
                    continue;
                }
                return Err(self.error("expected NULL, TRUE, or FALSE after IS"));
            }
            break;
        }
        Ok(l)
    }

    fn peek_cmp_op(&self) -> Option<BinOp> {
        match self.peek() {
            Some(Tok::Sym("=")) => Some(BinOp::Eq),
            Some(Tok::Sym("<>")) | Some(Tok::Sym("!=")) => Some(BinOp::Ne),
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym("<=")) => Some(BinOp::Le),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            Some(Tok::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        }
    }

    fn parse_add(&mut self) -> PResult<Expr> {
        rule!(self);
        let mut l = self.parse_mul()?;
        loop {
            let op = if self.peek_sym("+") {
                BinOp::Add
            } else if self.peek_sym("-") {
                BinOp::Sub
            } else if self.peek_sym("||") {
                BinOp::Concat
            } else {
                break;
            };
            self.pos += 1;
            let r = self.parse_mul()?;
            l = Expr::binary(l, op, r);
        }
        Ok(l)
    }

    fn parse_mul(&mut self) -> PResult<Expr> {
        rule!(self);
        let mut l = self.parse_unary()?;
        loop {
            let op = if self.peek_sym("*") {
                BinOp::Mul
            } else if self.peek_sym("/") {
                BinOp::Div
            } else if self.peek_sym("%") {
                BinOp::Mod
            } else {
                break;
            };
            self.pos += 1;
            let r = self.parse_unary()?;
            l = Expr::binary(l, op, r);
        }
        Ok(l)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        rule!(self);
        if self.eat_sym("-") {
            // Fold negation of numeric literals so `-86` round-trips as the
            // literal the generators emit.
            return Ok(match self.parse_unary()? {
                Expr::Integer(v) => Expr::Integer(v.wrapping_neg()),
                Expr::Float(f) => Expr::Float(-f),
                other => Expr::Unary(UnaryOp::Neg, Box::new(other)),
            });
        }
        if self.eat_sym("+") {
            return Ok(Expr::Unary(UnaryOp::Plus, Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        rule!(self);
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Integer(v))
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Float(v))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Tok::Sym("(")) => {
                self.pos += 1;
                if self.peek_kw("SELECT") || self.peek_kw("VALUES") {
                    let q = self.parse_query()?;
                    self.expect_sym(")")?;
                    Ok(Expr::Subquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_sym(")")?;
                    Ok(e)
                }
            }
            Some(Tok::Ident(id)) => {
                let upper = id.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => {
                        self.pos += 1;
                        return Ok(Expr::Null);
                    }
                    "TRUE" => {
                        self.pos += 1;
                        return Ok(Expr::Bool(true));
                    }
                    "FALSE" => {
                        self.pos += 1;
                        return Ok(Expr::Bool(false));
                    }
                    "CASE" => return self.parse_case(),
                    "CAST" => {
                        self.pos += 1;
                        self.expect_sym("(")?;
                        let e = self.parse_expr()?;
                        self.expect_kw("AS")?;
                        let ty = self.parse_data_type()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Cast { expr: Box::new(e), ty });
                    }
                    "EXISTS" => {
                        self.pos += 1;
                        self.expect_sym("(")?;
                        let q = self.parse_query()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Exists { query: Box::new(q), negated: false });
                    }
                    _ => {}
                }
                self.pos += 1;
                if self.peek_sym("(") {
                    return self.parse_func_call(id);
                }
                if self.peek_sym(".") && matches!(self.peek_at(1), Some(Tok::Ident(_))) {
                    self.pos += 1;
                    let col = self.ident()?;
                    return Ok(Expr::Column(ColumnRef::qualified(id, col)));
                }
                Ok(Expr::Column(ColumnRef::bare(id)))
            }
            _ => Err(self.error("expected expression")),
        }
    }

    fn parse_case(&mut self) -> PResult<Expr> {
        rule!(self);
        self.expect_kw("CASE")?;
        let operand = if self.peek_kw("WHEN") { None } else { Some(Box::new(self.parse_expr()?)) };
        let mut whens = Vec::new();
        while self.eat_kw("WHEN") {
            let w = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let t = self.parse_expr()?;
            whens.push((w, t));
        }
        if whens.is_empty() {
            return Err(self.error("CASE requires at least one WHEN"));
        }
        let else_ = if self.eat_kw("ELSE") { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, whens, else_ })
    }

    fn parse_func_call(&mut self, name: String) -> PResult<Expr> {
        rule!(self);
        self.expect_sym("(")?;
        let mut call = FuncCall { name, args: vec![], distinct: false, star: false };
        if self.eat_sym("*") {
            call.star = true;
        } else if !self.peek_sym(")") {
            call.distinct = self.eat_kw("DISTINCT");
            loop {
                call.args.push(self.parse_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        if self.eat_kw("OVER") {
            let spec = self.parse_window_spec()?;
            return Ok(Expr::Window { func: call, spec });
        }
        Ok(Expr::Func(call))
    }

    fn parse_window_spec(&mut self) -> PResult<WindowSpec> {
        rule!(self);
        self.expect_sym("(")?;
        let mut spec = WindowSpec::default();
        if self.peek_kw("PARTITION") {
            self.pos += 1;
            self.expect_kw("BY")?;
            loop {
                spec.partition_by.push(self.parse_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.peek_kw("ORDER") {
            self.pos += 1;
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                spec.order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.peek_kw("ROWS") || self.peek_kw("RANGE") {
            let unit = if self.eat_kw("ROWS") {
                FrameUnit::Rows
            } else {
                self.expect_kw("RANGE")?;
                FrameUnit::Range
            };
            if self.eat_kw("BETWEEN") {
                let start = self.parse_frame_bound()?;
                self.expect_kw("AND")?;
                let end = self.parse_frame_bound()?;
                spec.frame = Some(FrameClause { unit, start, end: Some(end) });
            } else {
                let start = self.parse_frame_bound()?;
                spec.frame = Some(FrameClause { unit, start, end: None });
            }
        }
        self.expect_sym(")")?;
        Ok(spec)
    }

    fn parse_frame_bound(&mut self) -> PResult<FrameBound> {
        rule!(self);
        if self.eat_kw("UNBOUNDED") {
            if self.eat_kw("PRECEDING") {
                return Ok(FrameBound::UnboundedPreceding);
            }
            self.expect_kw("FOLLOWING")?;
            return Ok(FrameBound::UnboundedFollowing);
        }
        if self.peek_kw("CURRENT") {
            self.pos += 1;
            self.expect_kw("ROW")?;
            return Ok(FrameBound::CurrentRow);
        }
        let e = self.parse_add()?;
        if self.eat_kw("PRECEDING") {
            Ok(FrameBound::Preceding(Box::new(e)))
        } else {
            self.expect_kw("FOLLOWING")?;
            Ok(FrameBound::Following(Box::new(e)))
        }
    }
}
