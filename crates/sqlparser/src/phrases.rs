//! Keyword-phrase tables driving generic parsing of the statement long tail.

use crate::lexer::Tok;
use lego_sqlast::kind::{ObjectKind, StandaloneKind};
use std::sync::OnceLock;

fn words_of(name: &'static str) -> Vec<&'static str> {
    name.split(' ').collect()
}

/// Standalone kinds that have dedicated parsers and therefore must *not* be
/// matched by the generic phrase table.
fn is_dedicated(k: StandaloneKind) -> bool {
    use StandaloneKind::*;
    matches!(
        k,
        Select
            | SelectV
            | SelectInto
            | Values
            | Insert
            | Replace
            | Update
            | Delete
            | With
            | Truncate
            | Copy
            | Grant
            | Revoke
            | Begin
            | StartTransaction
            | Commit
            | End
            | Rollback
            | Abort
            | Savepoint
            | ReleaseSavepoint
            | RollbackToSavepoint
            | Set
            | Reset
            | Show
            | Pragma
            | Analyze
            | Vacuum
            | Explain
            | Reindex
            | Checkpoint
            | Cluster
            | Discard
            | Listen
            | Notify
            | Unlisten
            | LockTable
            | Comment
            | Call
            | RefreshMaterializedView
            | CreateTableAs
    )
}

fn misc_table() -> &'static Vec<(Vec<&'static str>, StandaloneKind)> {
    static TABLE: OnceLock<Vec<(Vec<&'static str>, StandaloneKind)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut v: Vec<_> = StandaloneKind::ALL
            .iter()
            .copied()
            .filter(|&k| !is_dedicated(k))
            .map(|k| (words_of(k.name()), k))
            .collect();
        // Longest phrase first so `SET TRANSACTION` beats `SET`, etc.
        v.sort_by_key(|e| std::cmp::Reverse(e.0.len()));
        v
    })
}

fn object_table() -> &'static Vec<(Vec<&'static str>, ObjectKind)> {
    static TABLE: OnceLock<Vec<(Vec<&'static str>, ObjectKind)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut v: Vec<_> =
            ObjectKind::ALL.iter().copied().map(|k| (words_of(k.keyword()), k)).collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.0.len()));
        v
    })
}

fn starts_with_phrase(toks: &[Tok], phrase: &[&str]) -> bool {
    phrase.len() <= toks.len() && phrase.iter().zip(toks).all(|(w, t)| t.is_kw(w))
}

/// Longest-prefix match of a generic (non-dedicated) statement kind at the
/// head of `toks`. Returns the kind and the number of tokens consumed.
pub fn match_misc(toks: &[Tok]) -> Option<(StandaloneKind, usize)> {
    misc_table()
        .iter()
        .find(|(phrase, _)| starts_with_phrase(toks, phrase))
        .map(|(phrase, k)| (*k, phrase.len()))
}

/// Longest-prefix match of an object-kind keyword at the head of `toks`.
pub fn match_object(toks: &[Tok]) -> Option<(ObjectKind, usize)> {
    object_table()
        .iter()
        .find(|(phrase, _)| starts_with_phrase(toks, phrase))
        .map(|(phrase, k)| (*k, phrase.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn longest_misc_phrase_wins() {
        let toks = lex("SET TRANSACTION ISOLATION").unwrap();
        assert_eq!(match_misc(&toks), Some((StandaloneKind::SetTransaction, 2)));
        let toks = lex("EXECUTE IMMEDIATE 'x'").unwrap();
        assert_eq!(match_misc(&toks), Some((StandaloneKind::ExecuteImmediate, 2)));
        let toks = lex("EXECUTE plan1").unwrap();
        assert_eq!(match_misc(&toks), Some((StandaloneKind::ExecuteStmt, 1)));
    }

    #[test]
    fn dedicated_kinds_do_not_match() {
        let toks = lex("SELECT * FROM t").unwrap();
        assert_eq!(match_misc(&toks), None);
        let toks = lex("SET x = 1").unwrap();
        assert_eq!(match_misc(&toks), None);
    }

    #[test]
    fn multiword_objects_match() {
        let toks = lex("TEXT SEARCH CONFIGURATION cfg").unwrap();
        assert_eq!(match_object(&toks), Some((ObjectKind::TextSearchConfiguration, 3)));
        let toks = lex("MATERIALIZED VIEW v").unwrap();
        assert_eq!(match_object(&toks), Some((ObjectKind::MaterializedView, 2)));
        let toks = lex("TABLE t").unwrap();
        assert_eq!(match_object(&toks), Some((ObjectKind::Table, 1)));
    }
}
