//! SQL lexer.

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl Tok {
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn is_sym(&self, s: &str) -> bool {
        matches!(self, Tok::Sym(x) if *x == s)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => f.write_str(s),
            Tok::Int(v) => write!(f, "{}", v),
            Tok::Float(v) => {
                // Non-finite values cannot be written as a numeric literal
                // ("inf"/"NaN" re-lex as identifiers); degrade to the same
                // finite sentinel the lexer's overflow path uses. Integral
                // floats keep a `.0` suffix so they re-lex as floats, not
                // ints.
                let v = if v.is_finite() { *v } else { f64::MAX };
                if v.fract() == 0.0 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{}", v)
                }
            }
            Tok::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Tok::Sym(s) => f.write_str(s),
        }
    }
}

/// A lexer error. `offset` is a byte offset into the source; `token_index`
/// is the number of tokens successfully lexed before the failure, i.e. the
/// index the bad token would have had — the same coordinate system as
/// `ParseError::pos`.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub offset: usize,
    pub token_index: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at byte {} (token {}): {}",
            self.offset, self.token_index, self.message
        )
    }
}

impl std::error::Error for LexError {}

const SYMBOLS2: &[&str] = &["||", "<>", "!=", "<=", ">=", "@@", "::"];
const SYMBOLS1: &[&str] = &["(", ")", ",", ".", ";", "=", "<", ">", "+", "-", "*", "/", "%"];

/// Clamp a parsed float literal to a finite value. Literals like `1e999`
/// overflow `f64` to infinity, and a non-finite `Tok::Float` cannot survive
/// a print→re-lex roundtrip, so both numeric paths degrade to `f64::MAX`.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::MAX
    }
}

/// Tokenize a SQL script. Comments (`-- …` to end of line) are skipped.
pub fn lex(input: &str) -> Result<Vec<Tok>, LexError> {
    Ok(lex_spanned(input)?.0)
}

/// Tokenize, also returning each token's starting byte offset (same length
/// as the token vector). The spans let parse errors report a source snippet
/// alongside their token index.
pub fn lex_spanned(input: &str) -> Result<(Vec<Tok>, Vec<usize>), LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            // `--` directly followed by a digit/space is a comment in SQL;
            // but the paper's example `- - - 48` uses spaced minuses, which
            // lex as separate symbols, so plain `--` always starts a comment.
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '\'' {
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(LexError {
                            offset: start,
                            token_index: out.len(),
                            message: "unterminated string".into(),
                        })
                    }
                    Some(b'\'') => {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    }
                    Some(&b) if b < 0x80 => {
                        s.push(b as char);
                        i += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8 inside a string literal: consume
                        // the whole character. Byte-at-a-time `b as char`
                        // would mangle it into Latin-1 and break the
                        // print→re-lex roundtrip.
                        let ch = input[i..].chars().next().expect("mid-string char");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            spans.push(start);
            out.push(Tok::Str(s));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(|b| (*b as char).is_ascii_digit())
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &input[start..i];
            spans.push(start);
            if is_float {
                let v: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    token_index: out.len(),
                    message: format!("bad float literal {text}"),
                })?;
                // `1e999` parses Ok as +inf — clamp, don't pass through.
                out.push(Tok::Float(finite(v)));
            } else {
                match text.parse::<i64>() {
                    Ok(v) => out.push(Tok::Int(v)),
                    // Overflowing integers degrade to floats, like real DBMSs.
                    Err(_) => out.push(Tok::Float(finite(text.parse::<f64>().unwrap_or(f64::MAX)))),
                }
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            spans.push(start);
            out.push(Tok::Ident(input[start..i].to_string()));
            continue;
        }
        if let Some(&sym) = SYMBOLS2.iter().find(|s| input[i..].starts_with(**s)) {
            spans.push(i);
            out.push(Tok::Sym(sym));
            i += sym.len();
            continue;
        }
        if let Some(&sym) = SYMBOLS1.iter().find(|s| input[i..].starts_with(**s)) {
            spans.push(i);
            out.push(Tok::Sym(sym));
            i += sym.len();
            continue;
        }
        return Err(LexError {
            offset: i,
            token_index: out.len(),
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok((out, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_statement() {
        let toks = lex("SELECT * FROM t1 WHERE v1 = 1;").unwrap();
        assert_eq!(toks.len(), 9);
        assert!(toks[0].is_kw("select"));
        assert!(toks[1].is_sym("*"));
        assert_eq!(toks[7], Tok::Int(1));
        assert!(toks[8].is_sym(";"));
    }

    #[test]
    fn lex_strings_with_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex("42").unwrap(), vec![Tok::Int(42)]);
        assert_eq!(lex("4.5").unwrap(), vec![Tok::Float(4.5)]);
        assert_eq!(lex("1e3").unwrap(), vec![Tok::Float(1000.0)]);
        // Trailing dot is a symbol, not part of the number (so `t1.` works).
        assert_eq!(lex("1.").unwrap(), vec![Tok::Int(1), Tok::Sym(".")]);
    }

    #[test]
    fn lex_comments_are_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn lex_two_char_symbols() {
        let toks = lex("a <> b || c @@x <= 1").unwrap();
        assert!(toks[1].is_sym("<>"));
        assert!(toks[3].is_sym("||"));
        assert!(toks[5].is_sym("@@"));
        assert!(toks[7].is_sym("<="));
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lex_giant_int_degrades_to_float() {
        let toks = lex("99999999999999999999999").unwrap();
        assert!(matches!(toks[0], Tok::Float(_)));
    }

    #[test]
    fn lex_spanned_reports_token_start_offsets() {
        let (toks, spans) = lex_spanned("SELECT  'ab', 12 -- c\n+ x").unwrap();
        assert_eq!(toks.len(), spans.len());
        assert_eq!(spans, vec![0, 8, 12, 14, 22, 24]);
    }

    #[test]
    fn lex_errors_carry_both_coordinates() {
        let err = lex("SELECT 1 ? 2").unwrap_err();
        assert_eq!(err.offset, 9);
        assert_eq!(err.token_index, 2);
        let msg = err.to_string();
        assert!(msg.contains("byte 9") && msg.contains("token 2"), "{msg}");
    }

    #[test]
    fn overflowing_float_literals_clamp_to_finite() {
        // `1e999` overflows f64 to +inf via the *float* path; the giant
        // integer overflows via the *int* path. Both must stay finite.
        for src in ["1e999", "123456789e3000", "9e999999"] {
            let toks = lex(src).unwrap();
            match &toks[0] {
                Tok::Float(v) => assert!(v.is_finite(), "{src} lexed to non-finite {v}"),
                t => panic!("{src} lexed to {t:?}"),
            }
        }
    }

    #[test]
    fn float_display_roundtrips_through_the_lexer() {
        // lex → print → lex must preserve token kind and value, including
        // the non-finite sentinel and integral floats (`1.0` must not print
        // as `1`, which would re-lex as an Int).
        for src in ["1e999", "1.0", "2.5", "1e3", "0.125", "99999999999999999999999"] {
            let toks = lex(src).unwrap();
            let printed = toks[0].to_string();
            let again = lex(&printed).unwrap();
            assert_eq!(again.len(), 1, "{src} printed as {printed}");
            assert_eq!(toks[0], again[0], "{src} printed as {printed}");
        }
        // Direct non-finite values (constructed, not lexed) degrade to the
        // sentinel rather than printing `inf`/`NaN` identifier text.
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let printed = Tok::Float(v).to_string();
            assert_eq!(lex(&printed).unwrap(), vec![Tok::Float(f64::MAX)], "{v} -> {printed}");
        }
    }

    #[test]
    fn multibyte_string_literals_roundtrip() {
        let toks = lex("'café — ☕'").unwrap();
        assert_eq!(toks, vec![Tok::Str("café — ☕".into())]);
        let printed = toks[0].to_string();
        assert_eq!(lex(&printed).unwrap(), toks);
    }
}
