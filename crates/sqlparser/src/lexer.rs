//! SQL lexer.

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl Tok {
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn is_sym(&self, s: &str) -> bool {
        matches!(self, Tok::Sym(x) if *x == s)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => f.write_str(s),
            Tok::Int(v) => write!(f, "{}", v),
            Tok::Float(v) => write!(f, "{}", v),
            Tok::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Tok::Sym(s) => f.write_str(s),
        }
    }
}

/// A lexer error with byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

const SYMBOLS2: &[&str] = &["||", "<>", "!=", "<=", ">=", "@@", "::"];
const SYMBOLS1: &[&str] = &["(", ")", ",", ".", ";", "=", "<", ">", "+", "-", "*", "/", "%"];

/// Tokenize a SQL script. Comments (`-- …` to end of line) are skipped.
pub fn lex(input: &str) -> Result<Vec<Tok>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            // `--` directly followed by a digit/space is a comment in SQL;
            // but the paper's example `- - - 48` uses spaced minuses, which
            // lex as separate symbols, so plain `--` always starts a comment.
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '\'' {
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string".into(),
                        })
                    }
                    Some(b'\'') => {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    }
                    Some(&b) => {
                        s.push(b as char);
                        i += 1;
                    }
                }
            }
            out.push(Tok::Str(s));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(|b| (*b as char).is_ascii_digit())
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &input[start..i];
            if is_float {
                let v: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("bad float literal {text}"),
                })?;
                out.push(Tok::Float(v));
            } else {
                match text.parse::<i64>() {
                    Ok(v) => out.push(Tok::Int(v)),
                    // Overflowing integers degrade to floats, like real DBMSs.
                    Err(_) => out.push(Tok::Float(text.parse::<f64>().unwrap_or(f64::MAX))),
                }
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Tok::Ident(input[start..i].to_string()));
            continue;
        }
        if let Some(&sym) = SYMBOLS2.iter().find(|s| input[i..].starts_with(**s)) {
            out.push(Tok::Sym(sym));
            i += sym.len();
            continue;
        }
        if let Some(&sym) = SYMBOLS1.iter().find(|s| input[i..].starts_with(**s)) {
            out.push(Tok::Sym(sym));
            i += sym.len();
            continue;
        }
        return Err(LexError { offset: i, message: format!("unexpected character {c:?}") });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_statement() {
        let toks = lex("SELECT * FROM t1 WHERE v1 = 1;").unwrap();
        assert_eq!(toks.len(), 9);
        assert!(toks[0].is_kw("select"));
        assert!(toks[1].is_sym("*"));
        assert_eq!(toks[7], Tok::Int(1));
        assert!(toks[8].is_sym(";"));
    }

    #[test]
    fn lex_strings_with_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex("42").unwrap(), vec![Tok::Int(42)]);
        assert_eq!(lex("4.5").unwrap(), vec![Tok::Float(4.5)]);
        assert_eq!(lex("1e3").unwrap(), vec![Tok::Float(1000.0)]);
        // Trailing dot is a symbol, not part of the number (so `t1.` works).
        assert_eq!(lex("1.").unwrap(), vec![Tok::Int(1), Tok::Sym(".")]);
    }

    #[test]
    fn lex_comments_are_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn lex_two_char_symbols() {
        let toks = lex("a <> b || c @@x <= 1").unwrap();
        assert!(toks[1].is_sym("<>"));
        assert!(toks[3].is_sym("||"));
        assert!(toks[5].is_sym("@@"));
        assert!(toks[7].is_sym("<="));
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lex_giant_int_degrades_to_float() {
        let toks = lex("99999999999999999999999").unwrap();
        assert!(matches!(toks[0], Tok::Float(_)));
    }
}
