//! Property-based tests for expression evaluation semantics.
//!
//! The correctness oracles (TLP/NoREC in `lego-oracle`) are only as sound as
//! the engine's NULL and comparison semantics: TLP's partition identity
//! assumes exact three-valued logic, and NoREC assumes the predicate
//! evaluates identically in WHERE position and projection position. These
//! properties pin the laws those oracles rely on:
//!
//! - NULL propagates through every scalar operator (arithmetic, comparison,
//!   concatenation) — only AND/OR may absorb it,
//! - AND/OR implement Kleene three-valued logic exactly,
//! - `Value::sort_cmp` is a total order (reflexive, antisymmetric,
//!   transitive) with NULLs first,
//! - the expression layer's comparison operators agree with the value
//!   layer's `sql_cmp`/`sql_eq`.

use lego_dbms::ctx::ExecCtx;
use lego_dbms::eval::{eval, Bindings, EvalEnv};
use lego_dbms::value::Value;
use lego_sqlast::expr::{BinOp, Expr, UnaryOp};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// Evaluate a constant expression (no rows, no subqueries).
fn eval_const(e: &Expr) -> Value {
    let mut ctx = ExecCtx::new();
    let cols: Bindings = vec![];
    let row: Vec<Value> = vec![];
    let mut env = EvalEnv { cols: &cols, row: &row, ctx: &mut ctx, subquery: None };
    eval(e, &mut env).expect("constant expression evaluates")
}

/// A random runtime value. Floats are kept finite: NaN is unreachable
/// through SQL literals and would void the total-order contract by
/// construction. Blob (which has no literal syntax) appears only when
/// `allow_blob` is set — value-layer properties cover it, expression-layer
/// properties can't.
fn rand_value(rng: &mut SmallRng, allow_blob: bool) -> Value {
    match rng.gen_range(0..if allow_blob { 6 } else { 5 }) {
        0 => Value::Null,
        1 => Value::Int(rng.gen()),
        2 => Value::Float(rng.gen_range(-1_000_000_000i64..1_000_000_000) as f64 / 1024.0),
        3 => {
            let n = rng.gen_range(0..8);
            Value::Text((0..n).map(|_| rng.gen_range(b'a'..=b'z') as char).collect())
        }
        4 => Value::Bool(rng.gen_bool(0.5)),
        _ => {
            let n = rng.gen_range(0..8);
            Value::Blob((0..n).map(|_| (rng.gen::<u32>() & 0xff) as u8).collect())
        }
    }
}

fn rand_nonnull(rng: &mut SmallRng, allow_blob: bool) -> Value {
    loop {
        let v = rand_value(rng, allow_blob);
        if !v.is_null() {
            return v;
        }
    }
}

/// The literal expression that evaluates to `v`.
fn lit(v: &Value) -> Expr {
    match v {
        Value::Null => Expr::Null,
        Value::Int(i) => Expr::int(*i),
        Value::Float(f) => Expr::Float(*f),
        Value::Text(s) => Expr::str(s.clone()),
        Value::Bool(b) => Expr::Bool(*b),
        Value::Blob(_) => unreachable!("blobs have no literal syntax"),
    }
}

/// Every scalar binary operator that must propagate NULL (all but AND/OR).
const STRICT_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Concat,
];

/// SQL truth value: `Some(bool)` or `None` for unknown.
fn tri(v: &Value) -> Option<bool> {
    if v.is_null() {
        None
    } else {
        Some(v.is_truthy())
    }
}

/// TRUE, FALSE, or NULL as a literal expression.
fn tri_expr(t: Option<bool>) -> Expr {
    match t {
        None => Expr::Null,
        Some(b) => Expr::Bool(b),
    }
}

const TRI: [Option<bool>; 3] = [None, Some(false), Some(true)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NULL is contagious: any strict operator with a NULL operand yields
    /// NULL, regardless of the other side's type or value.
    #[test]
    fn null_propagates_through_strict_operators(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = rand_value(&mut rng, false);
        for &op in STRICT_OPS {
            let left = Expr::binary(Expr::Null, op, lit(&v));
            let right = Expr::binary(lit(&v), op, Expr::Null);
            prop_assert_eq!(eval_const(&left), Value::Null, "NULL {:?} {:?}", op, v);
            prop_assert_eq!(eval_const(&right), Value::Null, "{:?} {:?} NULL", v, op);
        }
    }

    /// AND and OR follow Kleene's three-valued truth tables: FALSE dominates
    /// AND, TRUE dominates OR, and everything else involving unknown stays
    /// unknown. Operands are arbitrary values, not just booleans — SQL
    /// truthiness coerces them first.
    #[test]
    fn and_or_match_kleene_truth_tables(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (va, vb) = (rand_value(&mut rng, false), rand_value(&mut rng, false));
        let (a, b) = (tri(&va), tri(&vb));
        let and = eval_const(&Expr::binary(lit(&va), BinOp::And, lit(&vb)));
        let or = eval_const(&Expr::binary(lit(&va), BinOp::Or, lit(&vb)));
        let expect_and = match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        };
        let expect_or = match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        };
        prop_assert_eq!(tri(&and), expect_and, "{:?} AND {:?}", va, vb);
        prop_assert_eq!(tri(&or), expect_or, "{:?} OR {:?}", va, vb);
    }

    /// Exhaustive tri-valued table as a degenerate property: all nine
    /// TRUE/FALSE/NULL operand pairs, associativity-free ground truth.
    #[test]
    fn and_or_literal_truth_table(_seed in any::<u64>()) {
        for a in TRI {
            for b in TRI {
                let and = eval_const(&Expr::binary(tri_expr(a), BinOp::And, tri_expr(b)));
                let or = eval_const(&Expr::binary(tri_expr(a), BinOp::Or, tri_expr(b)));
                prop_assert_eq!(tri(&and), [a, b].contains(&Some(false)).then_some(false)
                    .or(if a == Some(true) && b == Some(true) { Some(true) } else { None }));
                prop_assert_eq!(tri(&or), [a, b].contains(&Some(true)).then_some(true)
                    .or(if a == Some(false) && b == Some(false) { Some(false) } else { None }));
            }
        }
    }

    /// NOT maps unknown to unknown and otherwise inverts truthiness — the
    /// identity TLP leans on when it partitions by `p` / `NOT p` /
    /// `p IS NULL`.
    #[test]
    fn not_negates_in_three_valued_logic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = rand_value(&mut rng, false);
        let negated = eval_const(&Expr::Unary(UnaryOp::Not, Box::new(lit(&v))));
        prop_assert_eq!(tri(&negated), tri(&v).map(|b| !b), "NOT {:?}", v);
    }

    /// Exactly one of `p`, `NOT p`, `p IS NULL` holds for any operand — the
    /// TLP partition covers each row exactly once.
    #[test]
    fn tlp_partition_branches_are_exhaustive_and_disjoint(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = rand_value(&mut rng, false);
        let p = lit(&v);
        let not_p = Expr::Unary(UnaryOp::Not, Box::new(p.clone()));
        let is_null = Expr::IsNull { expr: Box::new(p.clone()), negated: false };
        let holds = [eval_const(&p), eval_const(&not_p), eval_const(&is_null)]
            .iter()
            .filter(|r| r.is_truthy())
            .count();
        prop_assert_eq!(holds, 1, "partition of {:?}", v);
    }

    /// `sort_cmp` is reflexive and antisymmetric across all type classes.
    #[test]
    fn sort_cmp_is_reflexive_and_antisymmetric(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b) = (rand_value(&mut rng, true), rand_value(&mut rng, true));
        prop_assert_eq!(a.sort_cmp(&a), Ordering::Equal, "{:?}", a);
        prop_assert_eq!(a.sort_cmp(&b), b.sort_cmp(&a).reverse(), "{:?} vs {:?}", a, b);
    }

    /// `sort_cmp` is transitive: the ORDER BY / index-key order is a genuine
    /// total order even across type classes.
    #[test]
    fn sort_cmp_is_transitive(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut vals = [
            rand_value(&mut rng, true),
            rand_value(&mut rng, true),
            rand_value(&mut rng, true),
        ];
        vals.sort_by(|x, y| x.sort_cmp(y));
        prop_assert_ne!(vals[0].sort_cmp(&vals[1]), Ordering::Greater);
        prop_assert_ne!(vals[1].sort_cmp(&vals[2]), Ordering::Greater);
        prop_assert_ne!(vals[0].sort_cmp(&vals[2]), Ordering::Greater);
    }

    /// NULLs sort first, and `sql_cmp` refuses to compare them: the ordering
    /// comparison is defined exactly on non-NULL pairs.
    #[test]
    fn nulls_sort_first_and_never_compare(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = rand_value(&mut rng, true);
        if !v.is_null() {
            prop_assert_eq!(Value::Null.sort_cmp(&v), Ordering::Less, "{:?}", v);
        }
        prop_assert_eq!(Value::Null.sql_cmp(&v), None);
        prop_assert_eq!(v.sql_cmp(&Value::Null), None);
        prop_assert_eq!(v.sql_cmp(&v).is_some(), !v.is_null());
    }

    /// The expression layer's `<`/`<=`/`>`/`>=` agree with `Value::sql_cmp`
    /// and with each other (`<=` is exactly "not >", `>=` is "not <"), and
    /// `=`/`<>` agree with `Value::sql_eq`.
    #[test]
    fn comparison_operators_agree_with_value_layer(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b) = (rand_nonnull(&mut rng, false), rand_nonnull(&mut rng, false));
        let run = |op| eval_const(&Expr::binary(lit(&a), op, lit(&b)));
        let cmp = a.sql_cmp(&b).expect("non-null operands compare");
        prop_assert_eq!(run(BinOp::Lt), Value::Bool(cmp == Ordering::Less), "{:?} < {:?}", a, b);
        prop_assert_eq!(run(BinOp::Gt), Value::Bool(cmp == Ordering::Greater), "{:?} > {:?}", a, b);
        prop_assert_eq!(run(BinOp::Le), Value::Bool(cmp != Ordering::Greater), "{:?} <= {:?}", a, b);
        prop_assert_eq!(run(BinOp::Ge), Value::Bool(cmp != Ordering::Less), "{:?} >= {:?}", a, b);
        let eq = a.sql_eq(&b).expect("non-null operands equate");
        prop_assert_eq!(run(BinOp::Eq), Value::Bool(eq), "{:?} = {:?}", a, b);
        prop_assert_eq!(run(BinOp::Ne), Value::Bool(!eq), "{:?} <> {:?}", a, b);
    }
}
