//! Behavioural tests for the simulated engines: each test drives a realistic
//! multi-statement session and checks both results and error semantics.

use lego_dbms::{Dbms, Outcome};
use lego_sqlast::Dialect;

fn run(dialect: Dialect, sql: &str) -> lego_dbms::ExecReport {
    Dbms::new(dialect).execute_script(sql)
}

fn run_ok(dialect: Dialect, sql: &str) -> lego_dbms::ExecReport {
    let r = run(dialect, sql);
    assert!(matches!(r.outcome, Outcome::Ok), "outcome: {:?}", r.errors);
    assert!(r.errors.is_empty(), "errors: {:?}", r.errors);
    r
}

// -- DDL ---------------------------------------------------------------------

#[test]
fn create_table_duplicate_errors() {
    let r = run(Dialect::Postgres, "CREATE TABLE t (a INT); CREATE TABLE t (b INT);");
    assert_eq!(r.errors.len(), 1);
    assert!(r.errors[0].contains("already exists"));
}

#[test]
fn create_table_if_not_exists_is_idempotent() {
    run_ok(Dialect::Postgres, "CREATE TABLE t (a INT); CREATE TABLE IF NOT EXISTS t (b INT);");
}

#[test]
fn alter_table_add_column_backfills_default() {
    let mut db = Dbms::new(Dialect::MySql);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (1);\n\
         ALTER TABLE t ADD COLUMN b INT DEFAULT 7;\n\
         SELECT * FROM t WHERE b = 7;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 1);
}

#[test]
fn alter_column_type_coerces_existing_rows() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (42);\n\
         ALTER TABLE t ALTER COLUMN a TYPE TEXT;\n\
         SELECT * FROM t WHERE a = '42';",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 1);
}

#[test]
fn drop_column_guard_rails() {
    let r = run(
        Dialect::Postgres,
        "CREATE TABLE t (a INT);\n\
         ALTER TABLE t DROP COLUMN a;",
    );
    assert!(r.errors[0].contains("only column"));
    let r = run(
        Dialect::Postgres,
        "CREATE TABLE t (a INT, b INT);\n\
         CREATE INDEX i ON t (b);\n\
         ALTER TABLE t DROP COLUMN b;",
    );
    assert!(r.errors[0].contains("used by an index"));
}

#[test]
fn unique_index_creation_fails_on_duplicates() {
    let r = run(
        Dialect::MariaDb,
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (1), (1);\n\
         CREATE UNIQUE INDEX u ON t (a);",
    );
    assert_eq!(r.errors.len(), 1);
}

#[test]
fn generic_ddl_lifecycle() {
    let r = run_ok(
        Dialect::Postgres,
        "CREATE SEQUENCE s1;\n\
         ALTER SEQUENCE s1 RESTART;\n\
         DROP SEQUENCE s1;",
    );
    assert_eq!(r.statements_executed, 3);
    let r = run(Dialect::Postgres, "DROP SEQUENCE missing;");
    assert_eq!(r.errors.len(), 1);
}

// -- constraints ---------------------------------------------------------------

#[test]
fn not_null_and_check_constraints_enforced() {
    let r = run(
        Dialect::Postgres,
        "CREATE TABLE t (a INT NOT NULL, b INT CHECK ((b > 0)));\n\
         INSERT INTO t VALUES (NULL, 1);\n\
         INSERT INTO t VALUES (1, -5);\n\
         INSERT INTO t VALUES (1, 5);",
    );
    assert_eq!(r.errors.len(), 2);
    assert!(r.errors[0].contains("not-null"));
    assert!(r.errors[1].contains("check"));
}

#[test]
fn primary_key_uniqueness() {
    let r = run(
        Dialect::MySql,
        "CREATE TABLE t (a INT PRIMARY KEY);\n\
         INSERT INTO t VALUES (1);\n\
         INSERT INTO t VALUES (1);",
    );
    assert_eq!(r.errors.len(), 1);
    assert!(r.errors[0].contains("unique"));
}

#[test]
fn insert_ignore_swallows_violations() {
    let mut db = Dbms::new(Dialect::MariaDb);
    let r = db.execute_script(
        "CREATE TABLE t (a INT PRIMARY KEY);\n\
         INSERT INTO t VALUES (1);\n\
         INSERT IGNORE INTO t VALUES (1), (2);\n\
         SELECT * FROM t;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 2);
}

#[test]
fn foreign_keys_enforced_when_profile_says_so() {
    let r = run(
        Dialect::Postgres,
        "CREATE TABLE p (id INT PRIMARY KEY);\n\
         CREATE TABLE c (pid INT REFERENCES p(id));\n\
         INSERT INTO c VALUES (9);",
    );
    assert_eq!(r.errors.len(), 1);
    assert!(r.errors[0].contains("foreign key"));
    // Comdb2's profile does not enforce FKs.
    let r = run(
        Dialect::Comdb2,
        "CREATE TABLE p (id INT PRIMARY KEY);\n\
         CREATE TABLE c (pid INT REFERENCES p(id));\n\
         INSERT INTO c VALUES (9);",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
}

// -- views / matviews ----------------------------------------------------------

#[test]
fn view_reflects_underlying_writes() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         CREATE VIEW w AS SELECT a FROM t WHERE a > 10;\n\
         INSERT INTO t VALUES (5), (15);\n\
         SELECT * FROM w;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 1);
}

#[test]
fn materialized_view_serves_snapshot_after_refresh() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (1);\n\
         CREATE MATERIALIZED VIEW mv AS SELECT a FROM t;\n\
         REFRESH MATERIALIZED VIEW mv;\n\
         INSERT INTO t VALUES (2);\n\
         SELECT * FROM mv;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    // The snapshot predates the second insert.
    assert_eq!(r.last_rows, 1);
}

#[test]
fn insert_into_plain_view_is_rejected() {
    let r = run(
        Dialect::Postgres,
        "CREATE TABLE t (a INT);\n\
         CREATE VIEW w AS SELECT a FROM t;\n\
         INSERT INTO w VALUES (1);",
    );
    assert_eq!(r.errors.len(), 1);
}

// -- rules (PostgreSQL) ----------------------------------------------------------

#[test]
fn instead_rule_redirects_insert() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         CREATE TABLE log (msg TEXT);\n\
         CREATE RULE r1 AS ON INSERT TO t DO INSTEAD INSERT INTO log VALUES ('redirected');\n\
         INSERT INTO t VALUES (1);\n\
         SELECT * FROM t;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 0, "t must stay empty");
    assert_eq!(db.session().cat.table("log").unwrap().rows.len(), 1);
}

#[test]
fn do_instead_nothing_swallows_the_statement() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         CREATE RULE r1 AS ON INSERT TO t DO INSTEAD NOTHING;\n\
         INSERT INTO t VALUES (1);\n\
         SELECT * FROM t;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 0);
}

#[test]
fn rules_are_postgres_only() {
    let r = run(
        Dialect::MySql,
        "CREATE TABLE t (a INT);\n\
         CREATE RULE r1 AS ON INSERT TO t DO NOTHING;",
    );
    assert_eq!(r.errors.len(), 1);
}

// -- triggers ---------------------------------------------------------------------

#[test]
fn trigger_recursion_is_bounded() {
    // A trigger that inserts into its own table must hit the depth guard,
    // not loop forever.
    let r = run(
        Dialect::MariaDb,
        "CREATE TABLE t (a INT);\n\
         CREATE TRIGGER tg AFTER INSERT ON t FOR EACH ROW INSERT INTO t VALUES (1);\n\
         INSERT INTO t VALUES (0);",
    );
    assert!(matches!(r.outcome, Outcome::Ok) || r.crash().is_some());
    assert!(r.errors.iter().any(|e| e.contains("recursion")) || r.crash().is_some());
}

#[test]
fn before_trigger_errors_abort_the_statement() {
    let r = run(
        Dialect::MariaDb,
        "CREATE TABLE t (a INT);\n\
         CREATE TRIGGER tg BEFORE INSERT ON t FOR EACH ROW DELETE FROM missing;\n\
         INSERT INTO t VALUES (1);",
    );
    assert!(!r.errors.is_empty());
}

// -- transactions ------------------------------------------------------------------

#[test]
fn nested_begin_is_an_error() {
    let r = run(Dialect::Postgres, "BEGIN; BEGIN;");
    assert_eq!(r.errors.len(), 1);
}

#[test]
fn commit_without_txn_is_an_error() {
    let r = run(Dialect::Postgres, "COMMIT;");
    assert_eq!(r.errors.len(), 1);
}

#[test]
fn mysql_ddl_implicitly_commits() {
    let mut db = Dbms::new(Dialect::MySql);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         BEGIN;\n\
         INSERT INTO t VALUES (1);\n\
         CREATE TABLE u (b INT);\n\
         ROLLBACK;\n\
         SELECT * FROM t;",
    );
    // The CREATE TABLE committed the transaction, so ROLLBACK errors and the
    // insert survives.
    assert_eq!(r.errors.len(), 1);
    assert_eq!(r.last_rows, 1);
}

#[test]
fn postgres_ddl_is_transactional() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         BEGIN;\n\
         CREATE TABLE u (b INT);\n\
         ROLLBACK;\n\
         SELECT * FROM u;",
    );
    // u was rolled back: the final select errors.
    assert_eq!(r.errors.len(), 1);
    assert!(r.errors[0].contains("does not exist"));
}

#[test]
fn savepoint_requires_transaction() {
    let r = run(Dialect::Postgres, "SAVEPOINT s;");
    assert_eq!(r.errors.len(), 1);
}

// -- session statement state machines ------------------------------------------------

#[test]
fn cursor_lifecycle_is_order_sensitive() {
    let ok = run_ok(Dialect::Postgres, "DECLARE c0; FETCH c0; CLOSE c0;");
    assert_eq!(ok.statements_executed, 3);
    let bad = run(Dialect::Postgres, "FETCH c0;");
    assert_eq!(bad.errors.len(), 1);
    let double_close = run(Dialect::Postgres, "DECLARE c0; CLOSE c0; CLOSE c0;");
    assert_eq!(double_close.errors.len(), 1);
}

#[test]
fn prepared_statement_lifecycle() {
    run_ok(Dialect::Postgres, "PREPARE p0; EXECUTE p0; DEALLOCATE p0;");
    let r = run(Dialect::Postgres, "EXECUTE p0;");
    assert_eq!(r.errors.len(), 1);
}

#[test]
fn xa_state_machine() {
    run_ok(Dialect::MySql, "XA BEGIN 'x'; XA COMMIT 'x';");
    let r = run(Dialect::MySql, "XA COMMIT 'x';");
    assert_eq!(r.errors.len(), 1);
    let r = run(Dialect::MySql, "XA BEGIN 'x'; XA BEGIN 'y';");
    assert_eq!(r.errors.len(), 1);
}

#[test]
fn two_phase_commit_lifecycle() {
    run_ok(
        Dialect::Postgres,
        "CREATE TABLE t (a INT);\n\
         BEGIN;\n\
         INSERT INTO t VALUES (1);\n\
         PREPARE TRANSACTION 'g1';\n\
         COMMIT PREPARED 'g1';",
    );
    let r = run(Dialect::Postgres, "COMMIT PREPARED 'missing';");
    assert_eq!(r.errors.len(), 1);
}

#[test]
fn listen_notify_delivery() {
    let mut db = Dbms::new(Dialect::Postgres);
    db.execute_script("LISTEN ch1; NOTIFY ch1, 'ping'; NOTIFY other;");
    assert_eq!(db.session().notifications.len(), 1);
    assert!(db.session().notifications[0].contains("ping"));
}

#[test]
fn lock_mode_conflicts() {
    let r = run(
        Dialect::Postgres,
        "CREATE TABLE t (a INT);\n\
         LOCK TABLE t IN SHARE MODE;\n\
         LOCK TABLE t IN EXCLUSIVE MODE;",
    );
    assert_eq!(r.errors.len(), 1);
    assert!(r.errors[0].contains("conflict"));
}

// -- access control ---------------------------------------------------------------

#[test]
fn grant_revoke_cycle() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         GRANT SELECT ON t TO alice;\n\
         SET ROLE alice;\n\
         SELECT * FROM t;\n\
         SET ROLE NONE;\n\
         REVOKE SELECT ON t FROM alice;\n\
         SET ROLE alice;\n\
         SELECT * FROM t;",
    );
    assert_eq!(r.errors.len(), 1, "{:?}", r.errors);
    assert!(r.errors[0].contains("permission denied"));
}

#[test]
fn non_admin_needs_insert_privilege() {
    let r = run(
        Dialect::MySql,
        "CREATE TABLE t (a INT);\n\
         SET ROLE bob;\n\
         INSERT INTO t VALUES (1);",
    );
    assert_eq!(r.errors.len(), 1);
}

// -- utility statements --------------------------------------------------------------

#[test]
fn copy_to_counts_rows() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (1), (2), (3);\n\
         COPY (SELECT * FROM t) TO STDOUT CSV HEADER;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
}

#[test]
fn cluster_requires_an_index() {
    let r = run(Dialect::Postgres, "CREATE TABLE t (a INT); CLUSTER t;");
    assert_eq!(r.errors.len(), 1);
    run_ok(Dialect::Postgres, "CREATE TABLE t (a INT); CREATE INDEX i ON t (a); CLUSTER t;");
}

#[test]
fn with_query_cte_materializes_for_the_body() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (1), (2);\n\
         WITH big AS (SELECT a FROM t WHERE a > 1) SELECT * FROM big;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 1);
    // The temp table is gone afterwards.
    let r2 = db.execute_script("SELECT * FROM big;");
    assert_eq!(r2.errors.len(), 1);
}

#[test]
fn with_dml_cte_mutates_for_real() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         WITH w AS (INSERT INTO t VALUES (7)) SELECT 1;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(db.session().cat.table("t").unwrap().rows.len(), 1);
}

#[test]
fn rename_table_via_misc_statement() {
    let mut db = Dbms::new(Dialect::MariaDb);
    let r = db.execute_script(
        "CREATE TABLE old_name (a INT);\n\
         RENAME TABLE old_name TO new_name;\n\
         SELECT * FROM new_name;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
}

#[test]
fn shutdown_style_statements_are_refused() {
    let r = run(Dialect::MySql, "SHUTDOWN;");
    assert_eq!(r.errors.len(), 1);
    assert!(r.errors[0].contains("not permitted"));
}

#[test]
fn table_row_cap_is_enforced() {
    // Inserting via self-referencing INSERT ... SELECT doubles the table;
    // the cap must stop it with an error instead of unbounded growth.
    let mut script = String::from("CREATE TABLE t (a INT);\nINSERT INTO t VALUES (1);\n");
    for _ in 0..14 {
        script.push_str("INSERT INTO t SELECT * FROM t;\n");
    }
    let r = run(Dialect::Postgres, &script);
    assert!(r.errors.iter().any(|e| e.contains("full")));
}

// -- the statement long tail -----------------------------------------------------

#[test]
fn use_statement_switches_database_name() {
    let mut db = Dbms::new(Dialect::MySql);
    let r = db.execute_script("USE db1;");
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(db.session().current_db, "db1");
}

#[test]
fn handler_toggles_open_state() {
    let mut db = Dbms::new(Dialect::MariaDb);
    db.execute_script("CREATE TABLE t (a INT); HANDLER t OPEN;");
    assert!(db.session().handler_open);
    db.execute_script("HANDLER t CLOSE;");
    assert!(!db.session().handler_open);
}

#[test]
fn show_variants_report_rows() {
    let mut db = Dbms::new(Dialect::MariaDb);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         SHOW TABLES;\n\
         SHOW CREATE TABLE t;\n\
         SHOW VARIABLES;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
}

#[test]
fn check_table_requires_existing_table() {
    let r = run(Dialect::MySql, "CHECK TABLE missing;");
    assert_eq!(r.errors.len(), 1);
    run_ok(Dialect::MySql, "CREATE TABLE t (a INT); CHECK TABLE t;");
}

#[test]
fn comdb2_put_and_exec_procedure() {
    let mut db = Dbms::new(Dialect::Comdb2);
    let r = db.execute_script("PUT counter1 ON;");
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    // EXEC PROCEDURE on a missing procedure errors; after CREATE it works.
    let r = db.execute_script("EXEC PROCEDURE p0 ( );");
    assert_eq!(r.errors.len(), 1);
    let r = db.execute_script("CREATE PROCEDURE p0; EXEC PROCEDURE p0 ( );");
    assert!(r.errors.is_empty(), "{:?}", r.errors);
}

#[test]
fn set_transaction_requires_open_transaction() {
    let r = run(Dialect::Postgres, "SET TRANSACTION ISOLATION LEVEL READ COMMITTED;");
    assert_eq!(r.errors.len(), 1);
    run_ok(Dialect::Postgres, "BEGIN; SET TRANSACTION ISOLATION LEVEL READ COMMITTED; COMMIT;");
}

#[test]
fn discard_all_clears_session_state() {
    let mut db = Dbms::new(Dialect::Postgres);
    db.execute_script("PREPARE p0; DECLARE c0; SET search_path = x; DISCARD ALL;");
    assert!(db.session().prepared.is_empty());
    assert!(db.session().cursors.is_empty());
    assert!(db.session().settings.is_empty());
}

#[test]
fn selectv_behaves_like_select_on_comdb2() {
    let mut db = Dbms::new(Dialect::Comdb2);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (1), (2);\n\
         SELECTV * FROM t;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 2);
}

#[test]
fn explain_does_not_mutate() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         EXPLAIN SELECT * FROM t;\n\
         SELECT * FROM t;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(db.session().cat.total_rows(), 0);
}

#[test]
fn select_into_creates_a_table() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (1), (2);\n\
         SELECT a INTO snapshot FROM t WHERE a > 1;\n\
         SELECT * FROM snapshot;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 1);
}

#[test]
fn create_table_as_copies_rows() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE t (a INT);\n\
         INSERT INTO t VALUES (1), (2), (3);\n\
         CREATE TABLE c AS SELECT a FROM t WHERE a > 1;\n\
         SELECT * FROM c;",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 2);
}

#[test]
fn subquery_in_where_filters_by_other_table() {
    let mut db = Dbms::new(Dialect::Postgres);
    let r = db.execute_script(
        "CREATE TABLE a (x INT);\n\
         CREATE TABLE b (y INT);\n\
         INSERT INTO a VALUES (1), (5);\n\
         INSERT INTO b VALUES (3);\n\
         SELECT * FROM a WHERE x > (SELECT MAX(y) FROM b);",
    );
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.last_rows, 1);
}
