//! Property-style tests pinning the WAL's durability contract:
//!
//! 1. **Roundtrip identity** — any sequence of statements synced through a
//!    [`Wal`] is recovered verbatim, in order, by [`recovery::read_wal`].
//! 2. **Checksum rejection** — flipping any single bit anywhere in an
//!    encoded record makes it undecodable (no silent corruption).
//! 3. **Torn tail** — truncating the log at *every* byte offset inside the
//!    last record always recovers exactly the longest valid prefix, with
//!    `torn` set iff the cut is not on a record boundary.
//!
//! The workspace vendors its dependencies (no proptest), so the properties
//! are exercised exhaustively over deterministic corpora instead of random
//! sampling — the input spaces here (byte offsets, bit positions) are small
//! enough to cover completely.
//!
//! The torn-write fault flag is process-global and changes `Wal::sync`
//! behaviour, so every test that syncs a WAL serializes on one lock.

use lego_dbms::recovery::{read_wal, scan_wal};
use lego_dbms::wal::{decode_record, encode_record, Wal, WAL_MAGIC};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpfile(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lego_wal_props_{tag}_{}.wal", std::process::id()))
}

/// A corpus spanning the shapes the engine journals: DDL, DML, transaction
/// control, failed statements, quoting, non-ASCII, and the empty-adjacent
/// short strings that stress the length prefix.
fn corpus() -> Vec<String> {
    vec![
        "CREATE TABLE t (a INT, b TEXT);".to_string(),
        "INSERT INTO t VALUES (1, 'x''y');".to_string(),
        "BEGIN;".to_string(),
        "UPDATE t SET b = 'naïve—☃' WHERE a = 1;".to_string(),
        "ROLLBACK;".to_string(),
        "SELECT * FROM missing_table;".to_string(),
        "DROP TABLE t;".to_string(),
        "SELECT 1;".to_string(),
    ]
}

#[test]
fn synced_statements_roundtrip_verbatim_through_the_file() {
    let _lock = fault_lock();
    // Every prefix length of the corpus roundtrips — not just the full set.
    for n in 0..=corpus().len() {
        let path = tmpfile(&format!("roundtrip{n}"));
        let mut wal = Wal::create(&path).expect("create WAL");
        for sql in &corpus()[..n] {
            wal.append(sql);
        }
        wal.sync();
        assert_eq!(wal.synced_records(), &corpus()[..n]);
        assert_eq!(wal.written_records(), &corpus()[..n]);
        let log = read_wal(&path).expect("read WAL");
        assert_eq!(log.records, &corpus()[..n], "prefix of {n} records");
        assert!(!log.torn);
        assert_eq!(log.valid_len, wal.file_len());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn unsynced_tail_is_lost_and_synced_prefix_survives() {
    let _lock = fault_lock();
    let path = tmpfile("tail");
    let mut wal = Wal::create(&path).expect("create WAL");
    let all = corpus();
    let (durable, lost) = all.split_at(3);
    for sql in durable {
        wal.append(sql);
    }
    wal.sync();
    for sql in lost {
        wal.append(sql); // never synced: inside an open "transaction"
    }
    assert_eq!(wal.pending_len(), lost.len());
    wal.crash();
    assert_eq!(wal.pending_len(), 0);
    let log = read_wal(&path).expect("read WAL");
    assert_eq!(log.records, durable, "crash must lose exactly the unsynced tail");
    assert!(!log.torn);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_single_bit_flip_in_a_record_is_rejected() {
    let rec = encode_record("INSERT INTO t VALUES (42, 'payload');");
    let (original, _) = decode_record(&rec).expect("pristine record decodes");
    for byte in 0..rec.len() {
        for bit in 0..8 {
            let mut corrupt = rec.clone();
            corrupt[byte] ^= 1 << bit;
            let got = decode_record(&corrupt);
            assert!(
                got.is_err(),
                "flip of byte {byte} bit {bit} decoded as {got:?} (original: {original:?})"
            );
        }
    }
}

#[test]
fn corrupt_interior_record_ends_the_valid_prefix() {
    // A flipped payload bit in record 1 of 3 must not take down records 0 —
    // and must not let 2 be trusted either (its offset can no longer be
    // authenticated once the chain is broken).
    let mut buf = WAL_MAGIC.to_vec();
    let records = ["SELECT 1;", "SELECT 22;", "SELECT 333;"];
    let mut offsets = Vec::new();
    for r in &records {
        offsets.push(buf.len());
        buf.extend_from_slice(&encode_record(r));
    }
    let payload_byte = offsets[1] + 8; // first payload byte of record 1
    buf[payload_byte] ^= 0x01;
    let log = scan_wal(&buf);
    assert_eq!(log.records, vec!["SELECT 1;"]);
    assert!(log.torn);
    assert_eq!(log.valid_len, offsets[1] as u64);
}

#[test]
fn truncation_at_every_offset_recovers_the_longest_valid_prefix() {
    let records = corpus();
    let mut buf = WAL_MAGIC.to_vec();
    // Byte offset where each record ends (== where the next one starts).
    let mut boundaries = vec![buf.len()];
    for r in &records {
        buf.extend_from_slice(&encode_record(r));
        boundaries.push(buf.len());
    }
    for cut in 0..=buf.len() {
        let log = scan_wal(&buf[..cut]);
        if cut < WAL_MAGIC.len() {
            // No valid magic: nothing recoverable.
            assert!(log.records.is_empty(), "cut={cut}");
            assert_eq!(log.torn, cut > 0, "cut={cut}");
            continue;
        }
        // The longest valid prefix: every record whose boundary fits.
        let intact = boundaries.iter().filter(|&&b| b > WAL_MAGIC.len() && b <= cut).count();
        let on_boundary = boundaries.contains(&cut);
        assert_eq!(log.records, &records[..intact], "cut={cut}");
        assert_eq!(log.torn, !on_boundary, "cut={cut}");
        assert_eq!(log.valid_len, boundaries[intact] as u64, "cut={cut}");
    }
}

#[test]
fn torn_write_fault_diverges_synced_from_written() {
    let _lock = fault_lock();
    let path = tmpfile("fault");
    let mut wal = Wal::create(&path).expect("create WAL");
    wal.append("CREATE TABLE t (a INT);");
    wal.sync();
    {
        let _fault = lego_dbms::faults::FaultGuard::enable_wal_drops_last_record();
        wal.append("INSERT INTO t VALUES (1);");
        wal.append("INSERT INTO t VALUES (2);");
        wal.sync();
    }
    // The engine believes all three are durable; the file holds only two.
    assert_eq!(wal.synced_records().len(), 3);
    assert_eq!(wal.written_records().len(), 2);
    let log = read_wal(&path).expect("read WAL");
    assert_eq!(log.records, wal.written_records());
    assert!(!log.torn, "a dropped record leaves a clean (shorter) log, not a torn one");
    let _ = std::fs::remove_file(&path);
}
