//! Per-DBMS feature profiles and component taxonomy.

use lego_sqlast::Dialect;
use serde::{Deserialize, Serialize};

/// Source components, matching the "Component" column of the paper's Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Component {
    Parser,
    Rewriter,
    Optimizer,
    Dml,
    Executor,
    Storage,
    Auth,
    Lock,
    Item,
    Mem,
    Bdb,
    Berkdb,
    Csc2,
    Db,
    Sqlite,
}

impl Component {
    pub fn name(self) -> &'static str {
        match self {
            Component::Parser => "Parser",
            Component::Rewriter => "Rewriter",
            Component::Optimizer => "Optimizer",
            Component::Dml => "DML",
            Component::Executor => "Executor",
            Component::Storage => "Storage",
            Component::Auth => "Auth",
            Component::Lock => "Lock",
            Component::Item => "Item",
            Component::Mem => "Mem",
            Component::Bdb => "Bdb",
            Component::Berkdb => "Berkdb",
            Component::Csc2 => "Csc2",
            Component::Db => "Db",
            Component::Sqlite => "Sqlite",
        }
    }

    /// Representative stack frames for synthetic crash call stacks.
    pub fn stack_frames(self) -> &'static [&'static str] {
        match self {
            Component::Parser => &["raw_parser", "transformStmt"],
            Component::Rewriter => &["RewriteQuery", "rewriteRuleAction"],
            Component::Optimizer => &["plan_query", "replace_empty_jointree"],
            Component::Dml => &["ExecModifyTable", "ExecInsert"],
            Component::Executor => &["ExecutorRun", "ExecProcNode"],
            Component::Storage => &["heap_insert", "btree_search"],
            Component::Auth => &["check_privileges", "acl_lookup"],
            Component::Lock => &["lock_acquire", "deadlock_check"],
            Component::Item => &["Item_func::val_int", "Item::evaluate"],
            Component::Mem => &["comdb2_malloc", "mspace_free"],
            Component::Bdb => &["bdb_fetch", "bdb_cursor_move"],
            Component::Berkdb => &["__db_get", "__bam_search"],
            Component::Csc2 => &["csc2_parse_schema", "csc2_typecheck"],
            Component::Db => &["sqlengine_work", "osql_process"],
            Component::Sqlite => &["sqlite3VdbeExec", "sqlite3WhereBegin"],
        }
    }
}

/// Feature switches for one simulated DBMS.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    pub dialect: Dialect,
    /// PostgreSQL query-rewrite rules (`CREATE RULE`).
    pub has_rules: bool,
    /// LISTEN/NOTIFY.
    pub has_notify: bool,
    pub has_triggers: bool,
    pub has_views: bool,
    pub has_matviews: bool,
    pub has_window_functions: bool,
    pub enforces_foreign_keys: bool,
    /// MySQL-family: DDL commits any open transaction.
    pub ddl_implicit_commit: bool,
    pub check_privileges: bool,
}

impl Profile {
    pub fn for_dialect(dialect: Dialect) -> Profile {
        match dialect {
            Dialect::Postgres => Profile {
                dialect,
                has_rules: true,
                has_notify: true,
                has_triggers: true,
                has_views: true,
                has_matviews: true,
                has_window_functions: true,
                enforces_foreign_keys: true,
                ddl_implicit_commit: false,
                check_privileges: true,
            },
            Dialect::MySql | Dialect::MariaDb => Profile {
                dialect,
                has_rules: false,
                has_notify: false,
                has_triggers: true,
                has_views: true,
                has_matviews: false,
                has_window_functions: true,
                enforces_foreign_keys: true,
                ddl_implicit_commit: true,
                check_privileges: true,
            },
            Dialect::Comdb2 => Profile {
                dialect,
                has_rules: false,
                has_notify: false,
                has_triggers: false,
                has_views: true,
                has_matviews: false,
                has_window_functions: false,
                enforces_foreign_keys: false,
                ddl_implicit_commit: true,
                check_privileges: true,
            },
        }
    }

    /// Components instrumented for this DBMS (Table I groups bugs by these).
    pub fn components(&self) -> &'static [Component] {
        match self.dialect {
            Dialect::Postgres => &[
                Component::Parser,
                Component::Rewriter,
                Component::Optimizer,
                Component::Dml,
                Component::Executor,
                Component::Storage,
            ],
            Dialect::MySql => &[
                Component::Parser,
                Component::Optimizer,
                Component::Dml,
                Component::Auth,
                Component::Storage,
                Component::Item,
            ],
            Dialect::MariaDb => &[
                Component::Parser,
                Component::Optimizer,
                Component::Dml,
                Component::Storage,
                Component::Item,
                Component::Lock,
            ],
            Dialect::Comdb2 => &[
                Component::Bdb,
                Component::Berkdb,
                Component::Csc2,
                Component::Db,
                Component::Mem,
                Component::Sqlite,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_it_matters() {
        let pg = Profile::for_dialect(Dialect::Postgres);
        let my = Profile::for_dialect(Dialect::MySql);
        let c2 = Profile::for_dialect(Dialect::Comdb2);
        assert!(pg.has_rules && pg.has_notify);
        assert!(!my.has_rules && my.ddl_implicit_commit);
        assert!(!c2.has_triggers && !c2.has_window_functions);
    }

    #[test]
    fn every_profile_has_six_components() {
        for d in Dialect::ALL {
            assert_eq!(Profile::for_dialect(d).components().len(), 6, "{d:?}");
        }
    }
}
