//! The bug-injection oracle.
//!
//! The paper's evaluation (Table I) reports 102 previously-unknown
//! memory-safety bugs across PostgreSQL (6), MySQL (21), MariaDB (42), and
//! Comdb2 (33), 22 of them CVEs. We plant one synthetic bug per Table I entry
//! with the same DBMS, component, bug type, and identifier. Each bug's
//! trigger is a *SQL Type Sequence pattern* — a contiguous subsequence of
//! statement types that must appear in the executed script — optionally plus
//! a structural predicate on the final statement and a database-state
//! predicate. This reproduces the paper's central detectability claim
//! mechanically: fuzzers that never change the type sequence of their seeds
//! cannot reach bugs whose trigger *is* a type sequence.

use crate::profile::Component;
use lego_sqlast::ast::{SetExpr, Statement, TableRef};
use lego_sqlast::kind::{DdlVerb, ObjectKind, StandaloneKind, StmtKind};
use lego_sqlast::visit;
use lego_sqlast::Dialect;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::OnceLock;

/// Memory-safety bug classes from Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BugType {
    /// Buffer overflow.
    Bof,
    /// Stack buffer overflow.
    Sbof,
    /// Heap buffer overflow.
    Hbof,
    /// Use-after-free.
    Uaf,
    /// Use-after-poison.
    Uap,
    /// Segmentation violation.
    Segv,
    /// Assertion failure.
    Af,
    /// Null-pointer dereference.
    Npd,
    /// Undefined behaviour.
    Ub,
}

impl BugType {
    pub fn name(self) -> &'static str {
        match self {
            BugType::Bof => "BOF",
            BugType::Sbof => "SBOF",
            BugType::Hbof => "HBOF",
            BugType::Uaf => "UAF",
            BugType::Uap => "UAP",
            BugType::Segv => "SEGV",
            BugType::Af => "AF",
            BugType::Npd => "NPD",
            BugType::Ub => "UB",
        }
    }

    /// Is this one of the classes the paper calls "very dangerous"?
    pub fn is_dangerous(self) -> bool {
        matches!(
            self,
            BugType::Bof
                | BugType::Sbof
                | BugType::Hbof
                | BugType::Uaf
                | BugType::Uap
                | BugType::Segv
        )
    }
}

/// Structural predicate on the final statement of a pattern.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Structural {
    Any,
    WindowFunction,
    GroupBy,
    OrderBy,
    WhereClause,
    InsertIgnore,
    Distinct,
    Join,
    SetOperation,
}

impl Structural {
    pub fn check(self, stmt: &Statement) -> bool {
        match self {
            Structural::Any => true,
            Structural::WindowFunction => visit::has_window_function(stmt),
            Structural::GroupBy => visit::has_group_by(stmt),
            Structural::OrderBy => match stmt {
                Statement::Select(s) => !s.query.order_by.is_empty(),
                Statement::With(w) => {
                    matches!(&*w.body, Statement::Select(s) if !s.query.order_by.is_empty())
                }
                _ => false,
            },
            Structural::WhereClause => match stmt {
                Statement::Update(u) => u.where_.is_some(),
                Statement::Delete(d) => d.where_.is_some(),
                Statement::Select(s) => match &s.query.body {
                    SetExpr::Select(sel) => sel.where_.is_some(),
                    _ => false,
                },
                _ => false,
            },
            Structural::InsertIgnore => matches!(stmt, Statement::Insert(i) if i.ignore),
            Structural::Distinct => match stmt {
                Statement::Select(s) => match &s.query.body {
                    SetExpr::Select(sel) => sel.distinct,
                    _ => false,
                },
                _ => false,
            },
            Structural::Join => match stmt {
                Statement::Select(s) => match &s.query.body {
                    SetExpr::Select(sel) => {
                        sel.from.iter().any(|t| matches!(t, TableRef::Join { .. }))
                    }
                    _ => false,
                },
                _ => false,
            },
            Structural::SetOperation => match stmt {
                Statement::Select(s) => matches!(&s.query.body, SetExpr::SetOp { .. }),
                _ => false,
            },
        }
    }

    /// Structural predicates compatible with a final statement kind.
    fn candidates_for(kind: StmtKind) -> &'static [Structural] {
        use StandaloneKind as K;
        match kind {
            StmtKind::Other(K::Select | K::SelectV) => &[
                Structural::WindowFunction,
                Structural::GroupBy,
                Structural::OrderBy,
                Structural::WhereClause,
                Structural::Distinct,
                Structural::Join,
                Structural::SetOperation,
            ],
            StmtKind::Other(K::Insert) => &[Structural::InsertIgnore, Structural::Any],
            StmtKind::Other(K::Update | K::Delete) => &[Structural::WhereClause, Structural::Any],
            _ => &[Structural::Any],
        }
    }
}

/// Database-state predicate checked when the pattern completes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StateReq {
    Any,
    TriggerExists,
    RuleExists,
    InTransaction,
    TableNonEmpty,
    IndexExists,
    ViewExists,
}

impl StateReq {
    pub fn check(self, st: &OracleState) -> bool {
        match self {
            StateReq::Any => true,
            StateReq::TriggerExists => st.any_trigger,
            StateReq::RuleExists => st.any_rule,
            StateReq::InTransaction => st.in_txn,
            StateReq::TableNonEmpty => st.any_nonempty_table,
            StateReq::IndexExists => st.any_index,
            StateReq::ViewExists => st.any_view,
        }
    }

    /// The statement kind that establishes this state (prepended to deep
    /// patterns so they are satisfiable from a fresh database).
    fn setup_kind(self) -> Option<StmtKind> {
        use StandaloneKind as K;
        match self {
            StateReq::Any => None,
            StateReq::TriggerExists => Some(StmtKind::Ddl(DdlVerb::Create, ObjectKind::Trigger)),
            StateReq::RuleExists => Some(StmtKind::Ddl(DdlVerb::Create, ObjectKind::Rule)),
            StateReq::InTransaction => Some(StmtKind::Other(K::Begin)),
            StateReq::TableNonEmpty => Some(StmtKind::Other(K::Insert)),
            StateReq::IndexExists => Some(StmtKind::Ddl(DdlVerb::Create, ObjectKind::Index)),
            StateReq::ViewExists => Some(StmtKind::Ddl(DdlVerb::Create, ObjectKind::View)),
        }
    }
}

/// A snapshot of the engine state relevant to state predicates.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleState {
    pub any_trigger: bool,
    pub any_rule: bool,
    pub in_txn: bool,
    pub any_nonempty_table: bool,
    pub any_index: bool,
    pub any_view: bool,
}

/// How hard a bug is to reach (drives Table I vs Table III dynamics).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Depth {
    /// Pattern occurs in initial-seed type sequences; reachable by
    /// within-statement mutation alone (the 11 bugs SQUIRREL also finds).
    Shallow,
    /// Short pattern with a structural/state predicate.
    Mid,
    /// Long pattern (3–4 types), typically with a state predicate.
    Deep,
}

/// Bugs fired from dedicated engine code paths rather than pattern matching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Special {
    /// The § V.B case study: a data-modifying CTE on a table with a
    /// `DO INSTEAD NOTIFY` rule crashes the planner
    /// (`replace_empty_jointree` on a NULL jointree).
    PgNotifyWithRewrite,
}

/// One planted bug.
#[derive(Clone, Debug)]
pub struct BugSpec {
    pub id: u32,
    pub dialect: Dialect,
    pub component: Component,
    pub bug_type: BugType,
    pub identifier: String,
    pub pattern: Vec<StmtKind>,
    pub structural: Structural,
    pub state: StateReq,
    pub depth: Depth,
    pub special: Option<Special>,
}

impl BugSpec {
    pub fn is_cve(&self) -> bool {
        self.identifier.starts_with("CVE-")
    }
}

/// A synthetic crash, deduplicatable by call stack like the paper does.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrashReport {
    pub bug_id: u32,
    pub identifier: String,
    pub bug_type: BugType,
    pub component: Component,
    pub dialect: Dialect,
    pub stack: Vec<String>,
}

impl CrashReport {
    pub fn for_bug(spec: &BugSpec) -> Self {
        let mut stack: Vec<String> =
            spec.component.stack_frames().iter().map(|s| s.to_string()).collect();
        stack.push(format!("{}_site_{}", spec.bug_type.name().to_ascii_lowercase(), spec.id));
        CrashReport {
            bug_id: spec.id,
            identifier: spec.identifier.clone(),
            bug_type: spec.bug_type,
            component: spec.component,
            dialect: spec.dialect,
            stack,
        }
    }

    /// Stack-hash used for crash deduplication (paper: "we first got them
    /// from unique crashes by comparing the call stack").
    pub fn stack_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for frame in &self.stack {
            for b in frame.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

// ---------------------------------------------------------------------------
// Manifest (Table I)
// ---------------------------------------------------------------------------

struct Row {
    dialect: Dialect,
    component: Component,
    bugs: &'static [(BugType, u8)],
    identifiers: &'static [&'static str],
}

/// Literal transcription of Table I.
const TABLE_I: &[Row] = &[
    Row {
        dialect: Dialect::Postgres,
        component: Component::Optimizer,
        bugs: &[(BugType::Bof, 1), (BugType::Af, 1), (BugType::Segv, 2)],
        identifiers: &["BUG #110303", "BUG #17152", "BUG #17097", "BUG #17151"],
    },
    Row {
        dialect: Dialect::Postgres,
        component: Component::Parser,
        bugs: &[(BugType::Af, 1)],
        identifiers: &["BUG #17094"],
    },
    Row {
        dialect: Dialect::Postgres,
        component: Component::Dml,
        bugs: &[(BugType::Af, 1)],
        identifiers: &["BUG #17067"],
    },
    Row {
        dialect: Dialect::MySql,
        component: Component::Optimizer,
        bugs: &[
            (BugType::Bof, 3),
            (BugType::Sbof, 1),
            (BugType::Npd, 4),
            (BugType::Hbof, 1),
            (BugType::Uaf, 1),
            (BugType::Af, 2),
        ],
        identifiers: &[
            "CVE-2021-2357",
            "CVE-2021-2055",
            "CVE-2021-2230",
            "CVE-2021-2169",
            "CVE-2021-2444",
        ],
    },
    Row {
        dialect: Dialect::MySql,
        component: Component::Dml,
        bugs: &[(BugType::Sbof, 1), (BugType::Segv, 2)],
        identifiers: &["CVE-2021-35645"],
    },
    Row {
        dialect: Dialect::MySql,
        component: Component::Auth,
        bugs: &[(BugType::Sbof, 1), (BugType::Segv, 2)],
        identifiers: &["CVE-2021-35643"],
    },
    Row {
        dialect: Dialect::MySql,
        component: Component::Storage,
        bugs: &[(BugType::Segv, 1), (BugType::Af, 2)],
        identifiers: &["CVE-2021-35641"],
    },
    Row {
        dialect: Dialect::MariaDb,
        component: Component::Optimizer,
        bugs: &[
            (BugType::Npd, 2),
            (BugType::Bof, 1),
            (BugType::Uap, 3),
            (BugType::Segv, 2),
            (BugType::Af, 1),
        ],
        identifiers: &[
            "CVE-2022-27376",
            "CVE-2022-27379",
            "CVE-2022-27380",
            "MDEV-26403",
            "MDEV-26432",
            "MDEV-26418",
            "MDEV-26416",
            "MDEV-26419",
            "MDEV-26430",
        ],
    },
    Row {
        dialect: Dialect::MariaDb,
        component: Component::Dml,
        bugs: &[(BugType::Bof, 1), (BugType::Uap, 1), (BugType::Af, 1), (BugType::Segv, 1)],
        identifiers: &["CVE-2022-27377", "CVE-2022-27378", "MDEV-26120", "MDEV-25994"],
    },
    Row {
        dialect: Dialect::MariaDb,
        component: Component::Parser,
        bugs: &[(BugType::Bof, 1), (BugType::Uaf, 2), (BugType::Segv, 1)],
        identifiers: &["CVE-2022-27383", "MDEV-26355", "MDEV-26313", "MDEV-26410"],
    },
    Row {
        dialect: Dialect::MariaDb,
        component: Component::Storage,
        bugs: &[(BugType::Segv, 7), (BugType::Uap, 2), (BugType::Uaf, 2), (BugType::Bof, 2)],
        identifiers: &[
            "CVE-2022-27385",
            "CVE-2022-27386",
            "MDEV-26404",
            "MDEV-26408",
            "MDEV-26412",
            "MDEV-26421",
            "MDEV-26434",
            "MDEV-26436",
            "MDEV-26420",
            "MDEV-26431",
            "MDEV-26433",
        ],
    },
    Row {
        dialect: Dialect::MariaDb,
        component: Component::Item,
        bugs: &[(BugType::Af, 4), (BugType::Segv, 3), (BugType::Uap, 2), (BugType::Uaf, 1)],
        identifiers: &[
            "MDEV-26405",
            "MDEV-26407",
            "MDEV-26411",
            "MDEV-26414",
            "MDEV-26438",
            "MDEV-26428",
            "MDEV-26417",
            "MDEV-26437",
            "MDEV-26427",
        ],
    },
    Row {
        dialect: Dialect::MariaDb,
        component: Component::Lock,
        bugs: &[(BugType::Segv, 2)],
        identifiers: &["MDEV-26425", "MDEV-26424"],
    },
    Row {
        dialect: Dialect::Comdb2,
        component: Component::Bdb,
        bugs: &[(BugType::Ub, 6)],
        identifiers: &["CVE-2020-26746"],
    },
    Row {
        dialect: Dialect::Comdb2,
        component: Component::Berkdb,
        bugs: &[(BugType::Bof, 1), (BugType::Ub, 7)],
        identifiers: &["CVE-2020-26745"],
    },
    Row {
        dialect: Dialect::Comdb2,
        component: Component::Csc2,
        bugs: &[(BugType::Bof, 1)],
        identifiers: &["CVE-2020-26744"],
    },
    Row {
        dialect: Dialect::Comdb2,
        component: Component::Db,
        bugs: &[(BugType::Ub, 4), (BugType::Uaf, 1), (BugType::Segv, 3)],
        identifiers: &["CVE-2020-26743"],
    },
    Row {
        dialect: Dialect::Comdb2,
        component: Component::Mem,
        bugs: &[(BugType::Bof, 1), (BugType::Hbof, 1), (BugType::Segv, 1)],
        identifiers: &["CVE-2020-26741", "CVE-2020-26742"],
    },
    Row {
        dialect: Dialect::Comdb2,
        component: Component::Sqlite,
        bugs: &[(BugType::Ub, 5), (BugType::Segv, 2)],
        identifiers: &[],
    },
];

/// Seed-corpus type pairs: shallow bugs use pairs that appear verbatim in
/// the built-in seeds with a structural predicate one within-statement
/// mutation away, so SQUIRREL-style mutation can reach them (and only them).
const SHALLOW_PATTERNS: &[(&[StmtKind], Structural)] = &[
    (
        &[StmtKind::Other(StandaloneKind::Insert), StmtKind::Other(StandaloneKind::Update)],
        Structural::WhereClause,
    ),
    (
        &[StmtKind::Other(StandaloneKind::Insert), StmtKind::Other(StandaloneKind::Select)],
        Structural::GroupBy,
    ),
    (
        &[StmtKind::Other(StandaloneKind::Insert), StmtKind::Other(StandaloneKind::Select)],
        Structural::Distinct,
    ),
    (
        &[StmtKind::Other(StandaloneKind::Insert), StmtKind::Other(StandaloneKind::Select)],
        Structural::OrderBy,
    ),
    (
        &[
            StmtKind::Ddl(DdlVerb::Create, ObjectKind::Index),
            StmtKind::Other(StandaloneKind::Insert),
        ],
        Structural::InsertIgnore,
    ),
    (
        &[StmtKind::Other(StandaloneKind::Begin), StmtKind::Other(StandaloneKind::Insert)],
        Structural::InsertIgnore,
    ),
    (
        &[StmtKind::Other(StandaloneKind::Commit), StmtKind::Other(StandaloneKind::Select)],
        Structural::OrderBy,
    ),
    (
        &[StmtKind::Other(StandaloneKind::Insert), StmtKind::Other(StandaloneKind::Select)],
        Structural::WindowFunction,
    ),
];

/// The universal setup vocabulary every template-based generator uses;
/// patterns drawn purely from it need an extra guard (see `pattern_ok`).
const TEMPLATE_KINDS: &[StmtKind] = &[
    StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table),
    StmtKind::Ddl(DdlVerb::Create, ObjectKind::Index),
    StmtKind::Ddl(DdlVerb::Create, ObjectKind::View),
    StmtKind::Ddl(DdlVerb::Drop, ObjectKind::Table),
    StmtKind::Other(StandaloneKind::Insert),
    StmtKind::Other(StandaloneKind::Update),
    StmtKind::Other(StandaloneKind::Delete),
    StmtKind::Other(StandaloneKind::Analyze),
    StmtKind::Other(StandaloneKind::Vacuum),
    StmtKind::Other(StandaloneKind::Set),
    StmtKind::Other(StandaloneKind::Select),
];

/// Structural predicates that template-based generators never produce on
/// their probes (SQLancer emits plain WHERE point queries; setup inserts are
/// plain) but which structure mutation *can* produce.
const RARE_STRUCTURAL: &[Structural] = &[
    Structural::WindowFunction,
    Structural::SetOperation,
    Structural::Join,
    Structural::Distinct,
    Structural::GroupBy,
    Structural::InsertIgnore,
];

/// Type sequences of the built-in seed corpus (mirrored from
/// `lego::seeds`, asserted equal by an integration test): generated
/// mid/deep patterns must not be contiguous subsequences of any of these,
/// otherwise SQUIRREL-style mutation could find non-shallow bugs.
fn seed_sequences() -> Vec<Vec<StmtKind>> {
    use StandaloneKind as K;
    const CT: StmtKind = StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table);
    const CI: StmtKind = StmtKind::Ddl(DdlVerb::Create, ObjectKind::Index);
    let o = |k: StandaloneKind| StmtKind::Other(k);
    vec![
        vec![CT, o(K::Insert), o(K::Insert), o(K::Select), o(K::Select)],
        vec![CT, CI, o(K::Insert), o(K::Insert), o(K::Select), o(K::Delete)],
        vec![CT, o(K::Begin), o(K::Insert), o(K::Update), o(K::Commit), o(K::Select)],
        vec![CT, o(K::Insert), o(K::Analyze), o(K::Explain), o(K::Vacuum)],
        vec![CT, o(K::Insert), o(K::Analyze), o(K::ShowTables), o(K::Select)],
        vec![CT, o(K::Insert), o(K::Analyze), o(K::SelectV)],
        vec![CT, o(K::Insert), o(K::Insert), o(K::Analyze), o(K::ShowTables), o(K::Select)],
    ]
}

/// Test-support accessor: the mirrored seed type sequences (checked against
/// the real seed corpus by an integration test).
pub fn seed_sequences_for_tests() -> Vec<Vec<StmtKind>> {
    seed_sequences()
}

fn is_subsequence_of_seeds(pattern: &[StmtKind]) -> bool {
    seed_sequences().iter().any(|seq| seq.windows(pattern.len()).any(|w| w == pattern))
}

/// Can the state predicate still hold after executing the pattern itself?
/// (A pattern containing COMMIT cannot require an open transaction at its
/// end; DROP TABLE cascades triggers/rules/indexes away; MySQL-family DDL
/// implicitly commits.)
fn state_consistent(pattern: &[StmtKind], state: StateReq, dialect: Dialect) -> bool {
    use lego_sqlast::kind::StmtCategory;
    use StandaloneKind as K;
    let has = |f: &dyn Fn(StmtKind) -> bool| pattern.iter().any(|&k| f(k));
    match state {
        StateReq::Any => true,
        StateReq::InTransaction => {
            let ends_txn = |k: StmtKind| {
                matches!(
                    k,
                    StmtKind::Other(
                        K::Commit | K::End | K::Rollback | K::Abort | K::PrepareTransaction
                    )
                )
            };
            let implicit_commit_ddl = |k: StmtKind| {
                matches!(dialect, Dialect::MySql | Dialect::MariaDb | Dialect::Comdb2)
                    && matches!(k.category(), StmtCategory::Ddl)
            };
            !has(&ends_txn) && !has(&implicit_commit_ddl)
        }
        StateReq::TriggerExists => !has(&|k| {
            matches!(k, StmtKind::Ddl(DdlVerb::Drop, ObjectKind::Table | ObjectKind::Trigger))
        }),
        StateReq::RuleExists => !has(&|k| {
            matches!(k, StmtKind::Ddl(DdlVerb::Drop, ObjectKind::Table | ObjectKind::Rule))
        }),
        StateReq::ViewExists => !has(&|k| {
            matches!(k, StmtKind::Ddl(DdlVerb::Drop, ObjectKind::Table | ObjectKind::View))
        }),
        StateReq::IndexExists => !has(&|k| {
            matches!(k, StmtKind::Ddl(DdlVerb::Drop, ObjectKind::Table | ObjectKind::Index))
        }),
        StateReq::TableNonEmpty => !has(&|k| {
            matches!(k, StmtKind::Ddl(DdlVerb::Drop, ObjectKind::Table))
                || matches!(k, StmtKind::Other(K::Truncate | K::Delete))
        }),
    }
}

/// Validity rules for generated (non-shallow) patterns.
fn pattern_ok(pattern: &[StmtKind], structural: Structural, state: StateReq) -> bool {
    // Same-kind adjacency is unreachable: Algorithm 2 never records (X, X)
    // affinities, so Algorithm 3 never synthesizes such sequences.
    if pattern.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    // Must not live inside the seed corpus (those slots belong to the
    // explicitly shallow bugs).
    if is_subsequence_of_seeds(pattern) {
        return false;
    }
    // Patterns drawn purely from the template vocabulary need a predicate
    // that template-based generators cannot satisfy.
    let all_template = pattern.iter().all(|k| TEMPLATE_KINDS.contains(k));
    if all_template {
        let protected_structural = RARE_STRUCTURAL.contains(&structural);
        let protected_state = matches!(
            state,
            StateReq::InTransaction
                | StateReq::TriggerExists
                | StateReq::RuleExists
                | StateReq::ViewExists
        );
        if !protected_structural && !protected_state {
            return false;
        }
    }
    true
}

fn shallow_count(d: Dialect) -> usize {
    // Table III: SQUIRREL found 3 MySQL and 8 MariaDB bugs.
    match d {
        Dialect::MySql => 3,
        Dialect::MariaDb => 8,
        _ => 0,
    }
}

/// A weighted pool of statement kinds for pattern generation: core relational
/// kinds dominate so patterns stay reachable, but the long tail appears too.
fn weighted_pool(d: Dialect) -> Vec<StmtKind> {
    use StandaloneKind as K;
    let supported = d.supported_kinds();
    let mut pool = Vec::new();
    for k in supported {
        let weight = match k {
            StmtKind::Other(
                K::Insert
                | K::Select
                | K::Update
                | K::Delete
                | K::Truncate
                | K::Begin
                | K::Commit
                | K::Rollback
                | K::Set
                | K::Analyze
                | K::Explain,
            ) => 4,
            StmtKind::Ddl(
                _,
                ObjectKind::Table | ObjectKind::View | ObjectKind::Index | ObjectKind::Trigger,
            ) => 5,
            StmtKind::Other(K::Grant | K::Revoke | K::With | K::Copy | K::Notify | K::Vacuum) => 3,
            StmtKind::Ddl(..) => 1,
            _ => 1,
        };
        for _ in 0..weight {
            pool.push(k);
        }
    }
    pool
}

fn gen_pattern(
    rng: &mut SmallRng,
    dialect: Dialect,
    pool: &[StmtKind],
    depth: Depth,
) -> (Vec<StmtKind>, Structural, StateReq) {
    match depth {
        Depth::Shallow => {
            let (p, s) = SHALLOW_PATTERNS[rng.gen_range(0..SHALLOW_PATTERNS.len())];
            (p.to_vec(), s, StateReq::Any)
        }
        Depth::Mid => {
            // Per-dialect length mix — calibrated so the budgeted-run bug
            // profile follows Table III (MariaDB richest, Comdb2 hardest
            // relative to its planted count).
            let p_len2 = match dialect {
                Dialect::Postgres => 0.9,
                Dialect::MySql => 0.7,
                Dialect::MariaDb => 0.8,
                Dialect::Comdb2 => 0.0,
            };
            let len = if rng.gen_bool(p_len2) { 2 } else { 3 };
            let mut pattern: Vec<StmtKind> =
                (0..len).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let last = *pattern.last().unwrap();
            let cands = Structural::candidates_for(last);
            let all_template = pattern.iter().all(|k| TEMPLATE_KINDS.contains(k));
            let structural = if len == 2 && (all_template || rng.gen_bool(0.4)) {
                // Length-2 patterns over the common template vocabulary need
                // an extra predicate so they aren't tripped by every trivial
                // script; pairs involving a rarer type are already guarded by
                // the type itself.
                let non_any: Vec<_> =
                    cands.iter().copied().filter(|s| *s != Structural::Any).collect();
                if non_any.is_empty() {
                    // Force length 3 instead.
                    pattern.insert(0, pool[rng.gen_range(0..pool.len())]);
                    Structural::Any
                } else {
                    non_any[rng.gen_range(0..non_any.len())]
                }
            } else {
                cands[rng.gen_range(0..cands.len())]
            };
            let state = if rng.gen_bool(0.15) { StateReq::TableNonEmpty } else { StateReq::Any };
            (pattern, structural, state)
        }
        Depth::Deep => {
            let p_short = match dialect {
                Dialect::Postgres => 0.95,
                Dialect::MySql => 0.7,
                Dialect::MariaDb => 0.8,
                Dialect::Comdb2 => 0.0,
            };
            let len = if rng.gen_bool(p_short) { 3 } else { 4 };
            let mut pattern: Vec<StmtKind> =
                (0..len).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let last = *pattern.last().unwrap();
            let cands = Structural::candidates_for(last);
            let structural = cands[rng.gen_range(0..cands.len())];
            let states: Vec<StateReq> = [
                StateReq::Any,
                StateReq::TableNonEmpty,
                StateReq::InTransaction,
                StateReq::IndexExists,
                StateReq::ViewExists,
                StateReq::TriggerExists,
            ]
            .into_iter()
            .filter(|s| s.setup_kind().is_none_or(|k| dialect.supports(k)))
            .collect();
            let state = states[rng.gen_range(0..states.len())];
            if let Some(setup) = state.setup_kind() {
                if !pattern.contains(&setup) {
                    pattern[0] = setup;
                }
            }
            (pattern, structural, state)
        }
    }
}

fn build_manifest() -> Vec<BugSpec> {
    let mut specs = Vec::with_capacity(102);
    let mut id: u32 = 0;
    // Pattern dedup must span every row of a dialect, otherwise two bugs
    // could share a trigger and one would shadow the other forever.
    let mut seen_by_dialect: std::collections::HashMap<
        Dialect,
        HashSet<(Vec<StmtKind>, Structural, StateReq)>,
    > = std::collections::HashMap::new();
    for row in TABLE_I {
        let pool = weighted_pool(row.dialect);
        let mut ident_iter = row.identifiers.iter();
        let seen = seen_by_dialect.entry(row.dialect).or_default();
        let mut per_dialect_index =
            specs.iter().filter(|s: &&BugSpec| s.dialect == row.dialect).count();
        for &(bug_type, count) in row.bugs {
            for _ in 0..count {
                id += 1;
                let identifier = ident_iter.next().map(|s| s.to_string()).unwrap_or_else(|| {
                    format!("{}-INT-{:03}", row.dialect.name().to_ascii_uppercase(), id)
                });
                let depth = if per_dialect_index < shallow_count(row.dialect) {
                    Depth::Shallow
                } else {
                    // Per-dialect Mid/Deep mix (see gen_pattern).
                    let deep = match row.dialect {
                        Dialect::MariaDb => per_dialect_index % 3 == 2,
                        Dialect::Comdb2 => per_dialect_index % 3 != 0,
                        _ => per_dialect_index % 2 == 1,
                    };
                    if deep {
                        Depth::Deep
                    } else {
                        Depth::Mid
                    }
                };
                per_dialect_index += 1;

                // Hand-written bugs matching the paper's narratives.
                if identifier == "BUG #17097" {
                    specs.push(BugSpec {
                        id,
                        dialect: row.dialect,
                        component: row.component,
                        bug_type,
                        identifier,
                        pattern: vec![],
                        structural: Structural::Any,
                        state: StateReq::RuleExists,
                        depth: Depth::Deep,
                        special: Some(Special::PgNotifyWithRewrite),
                    });
                    continue;
                }
                if identifier == "CVE-2021-35643" {
                    // Figure 3: … CREATE TRIGGER → SELECT with a window
                    // function crashes the server.
                    specs.push(BugSpec {
                        id,
                        dialect: row.dialect,
                        component: row.component,
                        bug_type,
                        identifier,
                        pattern: vec![
                            StmtKind::Ddl(DdlVerb::Create, ObjectKind::Trigger),
                            StmtKind::Other(StandaloneKind::Select),
                        ],
                        structural: Structural::WindowFunction,
                        state: StateReq::Any,
                        depth: Depth::Mid,
                        special: None,
                    });
                    continue;
                }

                let mut rng = SmallRng::seed_from_u64(0x1e60_0000 + id as u64 * 7919);
                let (pattern, structural, state) = loop {
                    let cand = gen_pattern(&mut rng, row.dialect, &pool, depth);
                    if depth != Depth::Shallow
                        && (!pattern_ok(&cand.0, cand.1, cand.2)
                            || !state_consistent(&cand.0, cand.2, row.dialect))
                    {
                        continue;
                    }
                    if seen.insert((cand.0.clone(), cand.1, cand.2)) {
                        break cand;
                    }
                };
                specs.push(BugSpec {
                    id,
                    dialect: row.dialect,
                    component: row.component,
                    bug_type,
                    identifier,
                    pattern,
                    structural,
                    state,
                    depth,
                    special: None,
                });
            }
        }
    }
    specs
}

/// The global bug manifest (102 entries).
pub fn manifest() -> &'static [BugSpec] {
    static M: OnceLock<Vec<BugSpec>> = OnceLock::new();
    M.get_or_init(build_manifest)
}

/// Bugs planted in one DBMS.
pub fn bugs_for(d: Dialect) -> Vec<&'static BugSpec> {
    manifest().iter().filter(|b| b.dialect == d).collect()
}

/// The pattern-matching oracle, consulted after every executed statement.
pub struct BugOracle {
    bugs: Vec<&'static BugSpec>,
}

impl BugOracle {
    pub fn new(dialect: Dialect) -> Self {
        Self { bugs: bugs_for(dialect) }
    }

    /// Check whether the just-executed statement completes any bug pattern.
    pub fn check(
        &self,
        trace: &[StmtKind],
        stmt: &Statement,
        st: &OracleState,
    ) -> Option<CrashReport> {
        // Prefer the most specific (longest-pattern) matching bug so a
        // shorter pattern that is a suffix of a deeper one cannot shadow it.
        let mut best: Option<&BugSpec> = None;
        for bug in &self.bugs {
            if bug.special.is_some() || bug.pattern.is_empty() {
                continue;
            }
            if trace.len() < bug.pattern.len() {
                continue;
            }
            let tail = &trace[trace.len() - bug.pattern.len()..];
            if tail == bug.pattern.as_slice()
                && bug.structural.check(stmt)
                && bug.state.check(st)
                && best.is_none_or(|b| bug.pattern.len() > b.pattern.len())
            {
                best = Some(bug);
            }
        }
        best.map(CrashReport::for_bug)
    }

    /// The special-cased bug with the given marker, if this DBMS has one.
    pub fn special(&self, marker: Special) -> Option<&'static BugSpec> {
        self.bugs.iter().copied().find(|b| b.special == Some(marker))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_has_exactly_102_bugs() {
        assert_eq!(manifest().len(), 102);
    }

    #[test]
    fn per_dbms_counts_match_table_i() {
        assert_eq!(bugs_for(Dialect::Postgres).len(), 6);
        assert_eq!(bugs_for(Dialect::MySql).len(), 21);
        assert_eq!(bugs_for(Dialect::MariaDb).len(), 42);
        assert_eq!(bugs_for(Dialect::Comdb2).len(), 33);
    }

    #[test]
    fn exactly_22_cves() {
        assert_eq!(manifest().iter().filter(|b| b.is_cve()).count(), 22);
    }

    #[test]
    fn dangerous_bug_census_matches_paper() {
        // Paper: 61 dangerous (17 BOF incl. S/H variants, 7 UAF, 29 SEGV,
        // 8 UAP).
        let dangerous = manifest().iter().filter(|b| b.bug_type.is_dangerous()).count();
        assert_eq!(dangerous, 61);
        let uaf = manifest().iter().filter(|b| b.bug_type == BugType::Uaf).count();
        assert_eq!(uaf, 7);
        let segv = manifest().iter().filter(|b| b.bug_type == BugType::Segv).count();
        assert_eq!(segv, 29);
        let uap = manifest().iter().filter(|b| b.bug_type == BugType::Uap).count();
        assert_eq!(uap, 8);
    }

    #[test]
    fn shallow_counts_match_table_iii() {
        let shallow = |d| bugs_for(d).iter().filter(|b| b.depth == Depth::Shallow).count();
        assert_eq!(shallow(Dialect::Postgres), 0);
        assert_eq!(shallow(Dialect::MySql), 3);
        assert_eq!(shallow(Dialect::MariaDb), 8);
        assert_eq!(shallow(Dialect::Comdb2), 0);
    }

    #[test]
    fn patterns_use_only_supported_kinds() {
        for bug in manifest() {
            for k in &bug.pattern {
                assert!(
                    bug.dialect.supports(*k),
                    "bug {} pattern uses unsupported kind {k:?}",
                    bug.identifier
                );
            }
        }
    }

    #[test]
    fn manifest_is_deterministic() {
        let a = build_manifest();
        let b = build_manifest();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pattern, y.pattern);
            assert_eq!(x.identifier, y.identifier);
        }
    }

    #[test]
    fn case_study_bug_exists() {
        let oracle = BugOracle::new(Dialect::Postgres);
        let bug = oracle.special(Special::PgNotifyWithRewrite).expect("case-study bug");
        assert_eq!(bug.identifier, "BUG #17097");
        assert_eq!(bug.component, Component::Optimizer);
    }

    #[test]
    fn oracle_fires_on_suffix_match() {
        use lego_sqlparser::parse_statement;
        let oracle = BugOracle::new(Dialect::MySql);
        // CVE-2021-35643: CREATE TRIGGER then SELECT with window function.
        let trace = vec![
            StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table),
            StmtKind::Other(StandaloneKind::Insert),
            StmtKind::Ddl(DdlVerb::Create, ObjectKind::Trigger),
            StmtKind::Other(StandaloneKind::Select),
        ];
        let stmt = parse_statement("SELECT LEAD(v1) OVER (ORDER BY v1) AS x FROM v0;").unwrap();
        let crash = oracle.check(&trace, &stmt, &OracleState::default());
        assert!(crash.is_some());
        assert_eq!(crash.unwrap().identifier, "CVE-2021-35643");
    }

    #[test]
    fn oracle_requires_the_full_pattern() {
        use lego_sqlparser::parse_statement;
        let oracle = BugOracle::new(Dialect::MySql);
        let trace = vec![StmtKind::Other(StandaloneKind::Select)];
        let stmt = parse_statement("SELECT LEAD(v1) OVER (ORDER BY v1) AS x FROM v0;").unwrap();
        assert!(oracle.check(&trace, &stmt, &OracleState::default()).is_none());
    }

    #[test]
    fn stack_hashes_are_unique_per_bug() {
        let mut hashes = HashSet::new();
        for bug in manifest() {
            assert!(hashes.insert(CrashReport::for_bug(bug).stack_hash()));
        }
    }
}
