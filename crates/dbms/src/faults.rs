//! Test-only logic-fault injection.
//!
//! The metamorphic oracles (`lego-oracle`) can only be integration-tested
//! against an engine that is actually wrong, so this module provides a
//! process-global switch that plants a *silent wrong-result* bug in the read
//! path: when enabled, the `WHERE` filter drops the last qualifying row —
//! the classic shape of an optimizer/scan bug that never crashes and never
//! errors, exactly the class TLP and NoREC exist to catch.
//!
//! The switch is off by default and is only meant to be flipped from tests
//! (keep fault-enabled tests in their own test binary: the flag is global to
//! the process and test binaries run their `#[test]`s on multiple threads).
//! The hot-path cost when disabled is one relaxed atomic load per filtered
//! scan.

use std::sync::atomic::{AtomicBool, Ordering};

static WHERE_DROPS_LAST_ROW: AtomicBool = AtomicBool::new(false);

/// Enable or disable the planted wrong-result fault (test-only).
pub fn set_where_drops_last_row(enabled: bool) {
    WHERE_DROPS_LAST_ROW.store(enabled, Ordering::Relaxed);
}

/// Is the planted wrong-result fault enabled?
pub(crate) fn where_drops_last_row() -> bool {
    WHERE_DROPS_LAST_ROW.load(Ordering::Relaxed)
}

/// RAII guard that enables the fault for a scope and always disables it on
/// drop, so a panicking test cannot leak the fault into later tests.
pub struct FaultGuard(());

impl FaultGuard {
    pub fn enable_where_drops_last_row() -> Self {
        set_where_drops_last_row(true);
        FaultGuard(())
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        set_where_drops_last_row(false);
    }
}
