//! Test-only fault injection.
//!
//! The metamorphic oracles (`lego-oracle`) can only be integration-tested
//! against an engine that is actually wrong, and the campaign supervisor's
//! panic-isolation/hang-guard paths can only be integration-tested against
//! an engine that actually panics or hangs. This module provides
//! process-global switches for these fault classes:
//!
//! - **wrong result** — the `WHERE` filter drops the last qualifying row:
//!   the classic shape of an optimizer/scan bug that never crashes and never
//!   errors, exactly the class TLP and NoREC exist to catch;
//! - **engine panic** — `CREATE TRIGGER` panics, modelling an engine bug
//!   that tears down the worker thread rather than tripping the bug oracle;
//! - **engine hang** — `CREATE TRIGGER` spins, burning the per-case row
//!   budget until the hang guard aborts the case (the deterministic analogue
//!   of the paper's 23-minute SQUIRREL hang, § II-C3);
//! - **torn write** — every WAL sync acknowledges the last pending record
//!   without writing its bytes: a lost committed write, the durability bug
//!   shape the recovery oracle (`lego-oracle`) exists to catch.
//!
//! The switches are off by default and are only meant to be flipped from
//! tests (keep fault-enabled tests in their own test binary: the flags are
//! global to the process and test binaries run their `#[test]`s on multiple
//! threads). The hot-path cost when disabled is one relaxed atomic load per
//! guarded site.

use std::sync::atomic::{AtomicBool, Ordering};

static WHERE_DROPS_LAST_ROW: AtomicBool = AtomicBool::new(false);
static PANIC_ON_CREATE_TRIGGER: AtomicBool = AtomicBool::new(false);
static SPIN_ON_CREATE_TRIGGER: AtomicBool = AtomicBool::new(false);
static WAL_DROPS_LAST_RECORD: AtomicBool = AtomicBool::new(false);

/// Enable or disable the planted wrong-result fault (test-only).
pub fn set_where_drops_last_row(enabled: bool) {
    WHERE_DROPS_LAST_ROW.store(enabled, Ordering::Relaxed);
}

/// Enable or disable the planted engine panic on `CREATE TRIGGER`
/// (test-only).
pub fn set_panic_on_create_trigger(enabled: bool) {
    PANIC_ON_CREATE_TRIGGER.store(enabled, Ordering::Relaxed);
}

/// Enable or disable the planted engine hang on `CREATE TRIGGER`
/// (test-only).
pub fn set_spin_on_create_trigger(enabled: bool) {
    SPIN_ON_CREATE_TRIGGER.store(enabled, Ordering::Relaxed);
}

/// Enable or disable the planted torn-write fault: on every WAL sync, the
/// last pending record is acknowledged as durable but its bytes never reach
/// the file — a lost write the recovery oracle must catch (test-only).
pub fn set_wal_drops_last_record(enabled: bool) {
    WAL_DROPS_LAST_RECORD.store(enabled, Ordering::Relaxed);
}

/// Is the planted wrong-result fault enabled?
pub(crate) fn where_drops_last_row() -> bool {
    WHERE_DROPS_LAST_ROW.load(Ordering::Relaxed)
}

/// Is the planted engine panic enabled?
pub(crate) fn panic_on_create_trigger() -> bool {
    PANIC_ON_CREATE_TRIGGER.load(Ordering::Relaxed)
}

/// Is the planted engine hang enabled?
pub(crate) fn spin_on_create_trigger() -> bool {
    SPIN_ON_CREATE_TRIGGER.load(Ordering::Relaxed)
}

/// Is the planted torn-write fault enabled?
pub(crate) fn wal_drops_last_record() -> bool {
    WAL_DROPS_LAST_RECORD.load(Ordering::Relaxed)
}

/// RAII guard that enables a fault for a scope and always disables every
/// fault on drop, so a panicking test cannot leak a fault into later tests.
pub struct FaultGuard(());

impl FaultGuard {
    pub fn enable_where_drops_last_row() -> Self {
        set_where_drops_last_row(true);
        FaultGuard(())
    }

    pub fn enable_panic_on_create_trigger() -> Self {
        set_panic_on_create_trigger(true);
        FaultGuard(())
    }

    pub fn enable_spin_on_create_trigger() -> Self {
        set_spin_on_create_trigger(true);
        FaultGuard(())
    }

    pub fn enable_wal_drops_last_record() -> Self {
        set_wal_drops_last_record(true);
        FaultGuard(())
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        set_where_drops_last_row(false);
        set_panic_on_create_trigger(false);
        set_spin_on_create_trigger(false);
        set_wal_drops_last_record(false);
    }
}
