//! The read path: FROM resolution (views, joins, subqueries), filtering,
//! grouping/aggregation, window functions, set operations, ordering.
//!
//! Structured as a straightforward interpreter rather than a physical plan
//! tree; the planner *decisions* a real optimizer would make (index vs. seq
//! scan, stats availability, join strategy) are still modelled as coverage
//! branches so that fuzzers see an optimizer-shaped search space.

use crate::catalog::Catalog;
use crate::ctx::ExecCtx;
use crate::eval::{contains_aggregate, eval, is_aggregate, Bindings, EvalEnv};
use crate::profile::Profile;
use crate::value::{Row, Value};
use lego_coverage::{cov, site_id};
use lego_sqlast::ast::*;
use lego_sqlast::expr::*;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Output of a query.
#[derive(Clone, Debug, Default)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// The rows in a deterministic canonical order (total order via
    /// [`Value::sort_cmp`], lexicographic across columns), independent of
    /// scan/evaluation order. Oracles compare result *multisets*, so two
    /// result sets are equivalent iff their canonical rows are equal.
    pub fn canonical_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.sort_cmp(y);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            a.len().cmp(&b.len())
        });
        rows
    }

    /// An order-insensitive 64-bit digest of the result multiset
    /// (FNV-1a over the canonical rows' [`Value::key_repr`] encodings plus
    /// the column count). Equal digests ⇒ equal multisets for oracle
    /// purposes; used for cross-dialect result comparison.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(&(self.columns.len() as u64).to_le_bytes());
        for row in self.canonical_rows() {
            mix(b"\x02");
            for v in &row {
                mix(b"\x01");
                mix(v.key_repr().as_bytes());
            }
        }
        h
    }

    /// How many rows are truthy in a single-column result (the NoREC scan
    /// count). Rows whose value is NULL or false do not count.
    pub fn truthy_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.first().map(|v| v.is_truthy()).unwrap_or(false)).count()
    }
}

/// Read-path environment.
pub struct QueryEnv<'a> {
    pub cat: &'a Catalog,
    pub prof: &'a Profile,
    pub user: &'a str,
    /// View-expansion recursion guard.
    pub view_depth: usize,
}

const MAX_VIEW_DEPTH: usize = 8;
const MAX_INTERMEDIATE_ROWS: usize = 20_000;

impl<'a> QueryEnv<'a> {
    pub fn new(cat: &'a Catalog, prof: &'a Profile, user: &'a str) -> Self {
        Self { cat, prof, user, view_depth: 0 }
    }
}

/// Intermediate relation: bindings + rows.
struct Rel {
    cols: Bindings,
    rows: Vec<Row>,
}

pub fn run_query(env: &QueryEnv, ctx: &mut ExecCtx, q: &Query) -> Result<ResultSet, String> {
    cov!(ctx);
    let mut out = run_set_expr(env, ctx, &q.body, Some(q))?;
    // LIMIT / OFFSET after ordering (ordering handled inside run_set_expr for
    // the plain-select case; set-ops order here).
    apply_limit_offset(ctx, q, &mut out)?;
    Ok(out)
}

fn apply_limit_offset(ctx: &mut ExecCtx, q: &Query, out: &mut ResultSet) -> Result<(), String> {
    let as_count = |e: &Expr, ctx: &mut ExecCtx| -> Result<usize, String> {
        let cols: Bindings = vec![];
        let row: Vec<Value> = vec![];
        let mut env = EvalEnv { cols: &cols, row: &row, ctx, subquery: None };
        let v = eval(e, &mut env)?;
        match v.as_int() {
            Some(n) if n >= 0 => Ok(n as usize),
            Some(_) => Err("LIMIT must not be negative".into()),
            None => Err("LIMIT requires an integer".into()),
        }
    };
    if let Some(off) = &q.offset {
        cov!(ctx);
        let n = as_count(off, ctx)?;
        if n < out.rows.len() {
            out.rows.drain(..n);
        } else {
            out.rows.clear();
        }
    }
    if let Some(lim) = &q.limit {
        cov!(ctx);
        let n = as_count(lim, ctx)?;
        out.rows.truncate(n);
    }
    Ok(())
}

fn run_set_expr(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    body: &SetExpr,
    order_ctx: Option<&Query>,
) -> Result<ResultSet, String> {
    match body {
        SetExpr::Select(sel) => run_select(env, ctx, sel, order_ctx),
        SetExpr::Values(rows) => {
            cov!(ctx);
            let mut out_rows = Vec::new();
            let cols: Bindings = vec![];
            let row: Vec<Value> = vec![];
            for r in rows {
                let mut out = Vec::with_capacity(r.len());
                for e in r {
                    let mut eenv = EvalEnv { cols: &cols, row: &row, ctx, subquery: None };
                    out.push(eval(e, &mut eenv)?);
                }
                out_rows.push(out);
            }
            let width = out_rows.first().map(|r| r.len()).unwrap_or(0);
            let columns = (1..=width).map(|i| format!("column{i}")).collect();
            let mut rs = ResultSet { columns, rows: out_rows };
            if let Some(q) = order_ctx {
                sort_output_rows(env, ctx, q, &mut rs)?;
            }
            Ok(rs)
        }
        SetExpr::SetOp { op, all, left, right } => {
            cov!(ctx);
            let l = run_set_expr(env, ctx, left, None)?;
            let r = run_set_expr(env, ctx, right, None)?;
            let key = |row: &Row| -> String {
                row.iter().map(|v| v.key_repr()).collect::<Vec<_>>().join("\u{1}")
            };
            let mut rows = Vec::new();
            match (op, all) {
                (SetOp::Union, true) => {
                    cov!(ctx);
                    rows.extend(l.rows);
                    rows.extend(r.rows);
                }
                (SetOp::Union, false) => {
                    cov!(ctx);
                    let mut seen = std::collections::HashSet::new();
                    for row in l.rows.into_iter().chain(r.rows) {
                        if seen.insert(key(&row)) {
                            rows.push(row);
                        }
                    }
                }
                (SetOp::Except, all) => {
                    cov!(ctx);
                    let mut counts: HashMap<String, usize> = HashMap::new();
                    for row in &r.rows {
                        *counts.entry(key(row)).or_default() += 1;
                    }
                    let mut emitted = std::collections::HashSet::new();
                    for row in l.rows {
                        let k = key(&row);
                        if let Some(c) = counts.get_mut(&k) {
                            if *c > 0 {
                                *c -= 1;
                                continue;
                            }
                        }
                        if *all || emitted.insert(k) {
                            rows.push(row);
                        }
                    }
                }
                (SetOp::Intersect, all) => {
                    cov!(ctx);
                    let mut counts: HashMap<String, usize> = HashMap::new();
                    for row in &r.rows {
                        *counts.entry(key(row)).or_default() += 1;
                    }
                    let mut emitted = std::collections::HashSet::new();
                    for row in l.rows {
                        let k = key(&row);
                        if let Some(c) = counts.get_mut(&k) {
                            if *c > 0 {
                                *c -= 1;
                                if *all || emitted.insert(k) {
                                    rows.push(row);
                                }
                            }
                        }
                    }
                }
            }
            let mut rs = ResultSet { columns: l.columns, rows };
            if let Some(q) = order_ctx {
                sort_output_rows(env, ctx, q, &mut rs)?;
            }
            Ok(rs)
        }
    }
}

// ---------------------------------------------------------------------------
// FROM resolution
// ---------------------------------------------------------------------------

fn base_relation(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    name: &str,
    alias: Option<&str>,
) -> Result<Rel, String> {
    let label = alias.unwrap_or(name).to_ascii_lowercase();
    if let Some(t) = env.cat.table(name) {
        cov!(ctx); // seq/index scan dispatch
        if env.prof.check_privileges
            && env.user != "admin"
            && !env.cat.has_privilege(env.user, name, "SELECT")
        {
            cov!(ctx); // permission-denied path
            return Err(format!("permission denied for table {name}"));
        }
        // Planner branches: statistics and index availability shape the
        // "plan" (and therefore coverage), even though row retrieval is the
        // same underneath.
        if t.analyzed {
            cov!(ctx);
        }
        if !env.cat.indexes_on(name).is_empty() {
            cov!(ctx);
            if t.rows.len() > 16 {
                cov!(ctx); // index considered profitable
            }
        }
        if t.clustered.is_some() {
            cov!(ctx);
        }
        let cols =
            t.columns.iter().map(|c| (Some(label.clone()), c.name.to_ascii_lowercase())).collect();
        ctx.charge_rows(t.rows.len())?;
        return Ok(Rel { cols, rows: t.rows.clone() });
    }
    if let Some(v) = env.cat.view(name) {
        cov!(ctx);
        if !env.prof.has_views {
            return Err("views are not supported by this engine".into());
        }
        if env.view_depth >= MAX_VIEW_DEPTH {
            cov!(ctx);
            return Err(format!("infinite recursion detected in view {name}"));
        }
        if v.materialized {
            cov!(ctx);
            if let Some((cols, rows)) = &v.snapshot {
                // Serve from the materialized snapshot.
                cov!(ctx);
                let bind =
                    cols.iter().map(|c| (Some(label.clone()), c.to_ascii_lowercase())).collect();
                return Ok(Rel { cols: bind, rows: rows.clone() });
            }
        }
        let mut sub_env = QueryEnv {
            cat: env.cat,
            prof: env.prof,
            user: env.user,
            view_depth: env.view_depth + 1,
        };
        // Views execute with the privileges of their owner (admin), as in
        // PostgreSQL's default security model.
        sub_env.user = "admin";
        let rs = run_query(&sub_env, ctx, &v.query)?;
        let cols =
            rs.columns.iter().map(|c| (Some(label.clone()), c.to_ascii_lowercase())).collect();
        return Ok(Rel { cols, rows: rs.rows });
    }
    cov!(ctx);
    Err(format!("relation \"{name}\" does not exist"))
}

fn resolve_table_ref(env: &QueryEnv, ctx: &mut ExecCtx, t: &TableRef) -> Result<Rel, String> {
    match t {
        TableRef::Named { name, alias } => base_relation(env, ctx, name, alias.as_deref()),
        TableRef::Subquery { query, alias } => {
            cov!(ctx);
            let rs = run_query(env, ctx, query)?;
            let cols = rs
                .columns
                .iter()
                .map(|c| (Some(alias.to_ascii_lowercase()), c.to_ascii_lowercase()))
                .collect();
            Ok(Rel { cols, rows: rs.rows })
        }
        TableRef::Join { left, right, kind, on } => {
            let l = resolve_table_ref(env, ctx, left)?;
            let r = resolve_table_ref(env, ctx, right)?;
            join_rels(env, ctx, l, r, *kind, on.as_ref())
        }
    }
}

fn join_rels(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    l: Rel,
    r: Rel,
    kind: JoinKind,
    on: Option<&Expr>,
) -> Result<Rel, String> {
    // One path per (strategy, build-side size bucket, probe-side size
    // bucket) — a real planner picks different physical joins by cardinality.
    let bucket = |n: usize| -> u64 {
        match n {
            0 => 0,
            1 => 1,
            2..=7 => 2,
            8..=63 => 3,
            _ => 4,
        }
    };
    ctx.hit_idx(site_id!(), (kind as u64) << 6 | bucket(l.rows.len()) << 3 | bucket(r.rows.len()));
    let mut cols = l.cols.clone();
    cols.extend(r.cols.iter().cloned());
    let mut rows = Vec::new();
    let null_right: Row = vec![Value::Null; r.cols.len()];
    let null_left: Row = vec![Value::Null; l.cols.len()];
    let mut matched_right = vec![false; r.rows.len()];
    let mut run_subq = |q: &Query, ctx: &mut ExecCtx| -> Result<Vec<Row>, String> {
        run_query(env, ctx, q).map(|rs| rs.rows)
    };
    for lrow in &l.rows {
        let mut matched = false;
        for (ri, rrow) in r.rows.iter().enumerate() {
            let mut combined = lrow.clone();
            combined.extend(rrow.iter().cloned());
            let ok = match on {
                None => true,
                Some(e) => {
                    let mut eenv =
                        EvalEnv { cols: &cols, row: &combined, ctx, subquery: Some(&mut run_subq) };
                    eval(e, &mut eenv)?.is_truthy()
                }
            };
            if ok {
                matched = true;
                matched_right[ri] = true;
                rows.push(combined);
                if rows.len() > MAX_INTERMEDIATE_ROWS {
                    cov!(ctx);
                    return Err("join result too large".into());
                }
            }
        }
        if !matched && kind == JoinKind::Left {
            cov!(ctx);
            let mut combined = lrow.clone();
            combined.extend(null_right.iter().cloned());
            rows.push(combined);
        }
    }
    if kind == JoinKind::Right {
        for (ri, rrow) in r.rows.iter().enumerate() {
            if !matched_right[ri] {
                cov!(ctx);
                let mut combined = null_left.clone();
                combined.extend(rrow.iter().cloned());
                rows.push(combined);
            }
        }
    }
    ctx.charge_rows(rows.len())?;
    Ok(Rel { cols, rows })
}

// ---------------------------------------------------------------------------
// SELECT core
// ---------------------------------------------------------------------------

fn run_select(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    sel: &Select,
    order_ctx: Option<&Query>,
) -> Result<ResultSet, String> {
    cov!(ctx);
    // FROM: cross product of the from-list items.
    let mut rel = match sel.from.split_first() {
        None => Rel { cols: vec![], rows: vec![vec![]] },
        Some((first, rest)) => {
            let mut rel = resolve_table_ref(env, ctx, first)?;
            for t in rest {
                let r = resolve_table_ref(env, ctx, t)?;
                rel = join_rels(env, ctx, rel, r, JoinKind::Cross, None)?;
            }
            rel
        }
    };

    // WHERE.
    if let Some(w) = &sel.where_ {
        cov!(ctx);
        let mut kept = Vec::new();
        let mut run_subq = |q: &Query, ctx: &mut ExecCtx| -> Result<Vec<Row>, String> {
            run_query(env, ctx, q).map(|rs| rs.rows)
        };
        for row in rel.rows {
            let mut eenv =
                EvalEnv { cols: &rel.cols, row: &row, ctx, subquery: Some(&mut run_subq) };
            if eval(w, &mut eenv)?.is_truthy() {
                kept.push(row);
            }
        }
        if crate::faults::where_drops_last_row() && !kept.is_empty() {
            // Planted wrong-result fault (test-only, see `crate::faults`):
            // the filtered scan silently loses its last qualifying row.
            kept.pop();
        }
        rel.rows = kept;
        if rel.rows.is_empty() {
            cov!(ctx); // empty-result short path (cf. Fig. 2 flowchart)
        }
    }

    let has_aggregates = sel
        .projection
        .iter()
        .any(|p| matches!(p, SelectItem::Expr { expr, .. } if contains_aggregate(expr)))
        || sel.having.as_ref().map(contains_aggregate).unwrap_or(false);

    if !sel.group_by.is_empty() || has_aggregates {
        cov!(ctx);
        let rs = run_grouped(env, ctx, sel, &rel)?;
        let mut rs = rs;
        if let Some(q) = order_ctx {
            sort_output_rows(env, ctx, q, &mut rs)?;
        }
        return Ok(rs);
    }

    // Window functions over the filtered rows.
    let window_values = compute_windows(env, ctx, sel, &rel)?;

    // Projection.
    let (columns, mut out_rows) = project(env, ctx, sel, &rel, &window_values)?;

    // ORDER BY may reference source columns not in the projection, so sort
    // (source, output) pairs together.
    if let Some(q) = order_ctx {
        if !q.order_by.is_empty() {
            cov!(ctx);
            let keys = order_keys(env, ctx, q, &rel.cols, &rel.rows, &columns, &out_rows)?;
            let mut idx: Vec<usize> = (0..out_rows.len()).collect();
            idx.sort_by(|&a, &b| compare_key_rows(&keys[a], &keys[b], &q.order_by));
            out_rows = idx.into_iter().map(|i| out_rows[i].clone()).collect();
        }
    }

    let mut rs = ResultSet { columns, rows: out_rows };

    if sel.distinct {
        cov!(ctx);
        let mut seen = std::collections::HashSet::new();
        rs.rows.retain(|row| {
            seen.insert(row.iter().map(|v| v.key_repr()).collect::<Vec<_>>().join("\u{1}"))
        });
    }
    Ok(rs)
}

fn project(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    sel: &Select,
    rel: &Rel,
    window_values: &HashMap<usize, Vec<Value>>,
) -> Result<(Vec<String>, Vec<Row>), String> {
    let mut columns: Vec<String> = Vec::new();
    for (pi, item) in sel.projection.iter().enumerate() {
        match item {
            SelectItem::Star => {
                for (_, c) in &rel.cols {
                    columns.push(c.clone());
                }
            }
            SelectItem::QualifiedStar(t) => {
                let tl = t.to_ascii_lowercase();
                let mut any = false;
                for (tab, c) in &rel.cols {
                    if tab.as_deref() == Some(tl.as_str()) {
                        columns.push(c.clone());
                        any = true;
                    }
                }
                if !any {
                    return Err(format!("missing FROM-clause entry for table \"{t}\""));
                }
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| default_column_name(expr, pi)));
            }
        }
    }
    let mut out_rows = Vec::with_capacity(rel.rows.len());
    let mut run_subq = |q: &Query, ctx: &mut ExecCtx| -> Result<Vec<Row>, String> {
        run_query(env, ctx, q).map(|rs| rs.rows)
    };
    for (ri, row) in rel.rows.iter().enumerate() {
        let mut out = Vec::with_capacity(columns.len());
        for (pi, item) in sel.projection.iter().enumerate() {
            match item {
                SelectItem::Star => out.extend(row.iter().cloned()),
                SelectItem::QualifiedStar(t) => {
                    let tl = t.to_ascii_lowercase();
                    for (ci, (tab, _)) in rel.cols.iter().enumerate() {
                        if tab.as_deref() == Some(tl.as_str()) {
                            out.push(row[ci].clone());
                        }
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    if let Expr::Window { .. } = expr {
                        let vals = window_values
                            .get(&pi)
                            .ok_or_else(|| "window value missing".to_string())?;
                        out.push(vals[ri].clone());
                    } else {
                        let mut eenv =
                            EvalEnv { cols: &rel.cols, row, ctx, subquery: Some(&mut run_subq) };
                        out.push(eval(expr, &mut eenv)?);
                    }
                }
            }
        }
        out_rows.push(out);
    }
    ctx.charge_rows(out_rows.len())?;
    Ok((columns, out_rows))
}

fn default_column_name(expr: &Expr, index: usize) -> String {
    match expr {
        Expr::Column(c) => c.column.to_ascii_lowercase(),
        Expr::Func(f) => f.name.to_ascii_lowercase(),
        Expr::Window { func, .. } => func.name.to_ascii_lowercase(),
        _ => format!("column{}", index + 1),
    }
}

// ---------------------------------------------------------------------------
// ORDER BY
// ---------------------------------------------------------------------------

/// Evaluate order keys preferring source bindings (`SELECT v2 … ORDER BY v1`)
/// and falling back to output columns / positional references.
#[allow(clippy::too_many_arguments)]
fn order_keys(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    q: &Query,
    src_cols: &Bindings,
    src_rows: &[Row],
    out_cols: &[String],
    out_rows: &[Row],
) -> Result<Vec<Vec<Value>>, String> {
    let n = out_rows.len();
    let mut keys: Vec<Vec<Value>> = vec![Vec::with_capacity(q.order_by.len()); n];
    let out_bindings: Bindings = out_cols.iter().map(|c| (None, c.to_ascii_lowercase())).collect();
    let mut run_subq = |sq: &Query, ctx: &mut ExecCtx| -> Result<Vec<Row>, String> {
        run_query(env, ctx, sq).map(|rs| rs.rows)
    };
    for item in &q.order_by {
        // Positional ORDER BY (e.g. `ORDER BY 2`).
        if let Expr::Integer(pos) = item.expr {
            cov!(ctx);
            let idx = pos - 1;
            if idx < 0 || idx as usize >= out_cols.len() {
                cov!(ctx);
                return Err(format!("ORDER BY position {pos} is not in select list"));
            }
            for (i, row) in out_rows.iter().enumerate() {
                keys[i].push(row[idx as usize].clone());
            }
            continue;
        }
        for i in 0..n {
            // Try source bindings first (they include unprojected columns).
            let v = if src_rows.len() == n {
                let mut eenv = EvalEnv {
                    cols: src_cols,
                    row: &src_rows[i],
                    ctx,
                    subquery: Some(&mut run_subq),
                };
                eval(&item.expr, &mut eenv)
            } else {
                Err("no source rows".into())
            };
            let v = match v {
                Ok(v) => v,
                Err(_) => {
                    let mut eenv = EvalEnv {
                        cols: &out_bindings,
                        row: &out_rows[i],
                        ctx,
                        subquery: Some(&mut run_subq),
                    };
                    eval(&item.expr, &mut eenv)?
                }
            };
            keys[i].push(v);
        }
    }
    Ok(keys)
}

fn compare_key_rows(a: &[Value], b: &[Value], items: &[OrderItem]) -> Ordering {
    for (i, item) in items.iter().enumerate() {
        let ord = a[i].sort_cmp(&b[i]);
        let ord = if item.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a result set by its own output columns (set-ops / VALUES).
fn sort_output_rows(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    q: &Query,
    rs: &mut ResultSet,
) -> Result<(), String> {
    if q.order_by.is_empty() {
        return Ok(());
    }
    cov!(ctx);
    let keys = order_keys(env, ctx, q, &vec![], &[], &rs.columns, &rs.rows)?;
    let mut idx: Vec<usize> = (0..rs.rows.len()).collect();
    idx.sort_by(|&a, &b| compare_key_rows(&keys[a], &keys[b], &q.order_by));
    rs.rows = idx.into_iter().map(|i| rs.rows[i].clone()).collect();
    Ok(())
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

fn run_grouped(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    sel: &Select,
    rel: &Rel,
) -> Result<ResultSet, String> {
    if sel
        .projection
        .iter()
        .any(|p| matches!(p, SelectItem::Expr { expr, .. } if matches!(expr, Expr::Window { .. })))
    {
        cov!(ctx);
        return Err("window functions with GROUP BY are not supported".into());
    }
    // Group rows by the GROUP BY key (single group when absent).
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut run_subq = |q: &Query, ctx: &mut ExecCtx| -> Result<Vec<Row>, String> {
        run_query(env, ctx, q).map(|rs| rs.rows)
    };
    for (ri, row) in rel.rows.iter().enumerate() {
        let mut key_parts = Vec::with_capacity(sel.group_by.len());
        for g in &sel.group_by {
            // Positional GROUP BY like the paper's `GROUP BY 89, 34`: an
            // out-of-range position is a semantic error (a distinct branch).
            if let Expr::Integer(pos) = g {
                cov!(ctx);
                let idx = *pos - 1;
                if idx < 0 || idx as usize >= rel.cols.len() {
                    cov!(ctx);
                    return Err(format!("GROUP BY position {pos} is not in select list"));
                }
                key_parts.push(row[idx as usize].key_repr());
                continue;
            }
            let mut eenv = EvalEnv { cols: &rel.cols, row, ctx, subquery: Some(&mut run_subq) };
            key_parts.push(eval(g, &mut eenv)?.key_repr());
        }
        let key = key_parts.join("\u{1}");
        match index.get(&key) {
            Some(&gi) => groups[gi].1.push(ri),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![ri]));
            }
        }
    }
    // Aggregates over zero rows with no GROUP BY still yield one group.
    if groups.is_empty() && sel.group_by.is_empty() {
        cov!(ctx);
        groups.push((String::new(), vec![]));
    }

    let mut columns: Vec<String> = Vec::new();
    for (pi, item) in sel.projection.iter().enumerate() {
        match item {
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| default_column_name(expr, pi)));
            }
            SelectItem::Star | SelectItem::QualifiedStar(_) => {
                // `SELECT * … GROUP BY` is accepted leniently: star expands
                // to the first row of each group (MySQL's permissive mode).
                cov!(ctx);
                for (_, c) in &rel.cols {
                    columns.push(c.clone());
                }
            }
        }
    }

    let mut out_rows = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        // HAVING.
        if let Some(h) = &sel.having {
            cov!(ctx);
            let keep = eval_agg(env, ctx, h, rel, members)?;
            if !keep.is_truthy() {
                continue;
            }
        }
        let mut out = Vec::with_capacity(columns.len());
        for item in &sel.projection {
            match item {
                SelectItem::Expr { expr, .. } => {
                    out.push(eval_agg(env, ctx, expr, rel, members)?);
                }
                SelectItem::Star | SelectItem::QualifiedStar(_) => match members.first() {
                    Some(&ri) => out.extend(rel.rows[ri].iter().cloned()),
                    None => out.extend(std::iter::repeat_n(Value::Null, rel.cols.len())),
                },
            }
        }
        out_rows.push(out);
    }
    Ok(ResultSet { columns, rows: out_rows })
}

/// Evaluate an expression in aggregate context: aggregate calls compute over
/// the group; other column references resolve against the group's first row.
fn eval_agg(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    expr: &Expr,
    rel: &Rel,
    members: &[usize],
) -> Result<Value, String> {
    if let Expr::Func(call) = expr {
        if is_aggregate(call) {
            return eval_aggregate_call(env, ctx, call, rel, members);
        }
    }
    if !contains_aggregate(expr) {
        let empty_row: Row = vec![];
        let row: &Row = match members.first() {
            Some(&ri) => &rel.rows[ri],
            None => &empty_row,
        };
        let mut run_subq = |q: &Query, ctx: &mut ExecCtx| -> Result<Vec<Row>, String> {
            run_query(env, ctx, q).map(|rs| rs.rows)
        };
        let cols = if row.is_empty() { vec![] } else { rel.cols.clone() };
        let mut eenv = EvalEnv { cols: &cols, row, ctx, subquery: Some(&mut run_subq) };
        return eval(expr, &mut eenv);
    }
    // Mixed expression: recurse structurally, computing aggregate leaves.
    match expr {
        Expr::Unary(op, e) => {
            let inner = eval_agg(env, ctx, e, rel, members)?;
            let tmp = Expr::Unary(*op, Box::new(value_to_expr(&inner)));
            eval_const(ctx, &tmp)
        }
        Expr::Binary(l, op, r) => {
            let lv = eval_agg(env, ctx, l, rel, members)?;
            let rv = eval_agg(env, ctx, r, rel, members)?;
            let tmp = Expr::Binary(Box::new(value_to_expr(&lv)), *op, Box::new(value_to_expr(&rv)));
            eval_const(ctx, &tmp)
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_agg(env, ctx, expr, rel, members)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Cast { expr, ty } => {
            let v = eval_agg(env, ctx, expr, rel, members)?;
            Ok(v.cast_to(*ty))
        }
        _ => Err("unsupported aggregate expression shape".into()),
    }
}

fn value_to_expr(v: &Value) -> Expr {
    match v {
        Value::Null => Expr::Null,
        Value::Int(i) => Expr::Integer(*i),
        Value::Float(f) => Expr::Float(*f),
        Value::Text(s) => Expr::Str(s.clone()),
        Value::Bool(b) => Expr::Bool(*b),
        Value::Blob(b) => Expr::Str(String::from_utf8_lossy(b).into_owned()),
    }
}

fn eval_const(ctx: &mut ExecCtx, e: &Expr) -> Result<Value, String> {
    let cols: Bindings = vec![];
    let row: Vec<Value> = vec![];
    let mut eenv = EvalEnv { cols: &cols, row: &row, ctx, subquery: None };
    eval(e, &mut eenv)
}

fn eval_aggregate_call(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    call: &FuncCall,
    rel: &Rel,
    members: &[usize],
) -> Result<Value, String> {
    let name = call.name.to_ascii_uppercase();
    // Per-(aggregate, group-size bucket) transition function.
    let mut name_code: u64 = 0;
    for b in name.bytes() {
        name_code = name_code.wrapping_mul(31).wrapping_add(b as u64);
    }
    let gb = match members.len() {
        0 => 0u64,
        1 => 1,
        2..=7 => 2,
        _ => 3,
    };
    ctx.hit_idx(site_id!(), (name_code % 32) << 2 | gb);
    if call.star {
        if name != "COUNT" {
            return Err(format!("{name}(*) is not valid"));
        }
        return Ok(Value::Int(members.len() as i64));
    }
    let arg = call.args.first().ok_or_else(|| format!("{name} requires an argument"))?;
    let mut values = Vec::with_capacity(members.len());
    let mut run_subq = |q: &Query, ctx: &mut ExecCtx| -> Result<Vec<Row>, String> {
        run_query(env, ctx, q).map(|rs| rs.rows)
    };
    for &ri in members {
        let mut eenv =
            EvalEnv { cols: &rel.cols, row: &rel.rows[ri], ctx, subquery: Some(&mut run_subq) };
        let v = eval(arg, &mut eenv)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if call.distinct {
        cov!(ctx);
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| seen.insert(v.key_repr()));
    }
    Ok(match name.as_str() {
        "COUNT" => Value::Int(values.len() as i64),
        "SUM" | "AVG" => {
            if values.is_empty() {
                cov!(ctx);
                Value::Null
            } else {
                let all_int = values.iter().all(|v| matches!(v, Value::Int(_) | Value::Bool(_)));
                let sum: f64 = values.iter().filter_map(|v| v.as_float()).sum();
                if name == "AVG" {
                    Value::Float(sum / values.len() as f64)
                } else if all_int {
                    Value::Int(sum as i64)
                } else {
                    Value::Float(sum)
                }
            }
        }
        "MIN" => values.into_iter().min_by(|a, b| a.sort_cmp(b)).unwrap_or(Value::Null),
        "MAX" => values.into_iter().max_by(|a, b| a.sort_cmp(b)).unwrap_or(Value::Null),
        other => return Err(format!("unknown aggregate {other}")),
    })
}

// ---------------------------------------------------------------------------
// Window functions
// ---------------------------------------------------------------------------

/// Compute window values for each window-expression projection item.
/// Returns map: projection index -> per-row values.
fn compute_windows(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    sel: &Select,
    rel: &Rel,
) -> Result<HashMap<usize, Vec<Value>>, String> {
    let mut out = HashMap::new();
    for (pi, item) in sel.projection.iter().enumerate() {
        if let SelectItem::Expr { expr: Expr::Window { func, spec }, .. } = item {
            cov!(ctx);
            if !env.prof.has_window_functions {
                cov!(ctx);
                return Err("window functions are not supported by this engine".into());
            }
            out.insert(pi, compute_one_window(env, ctx, func, spec, rel)?);
        }
    }
    Ok(out)
}

fn compute_one_window(
    env: &QueryEnv,
    ctx: &mut ExecCtx,
    func: &FuncCall,
    spec: &WindowSpec,
    rel: &Rel,
) -> Result<Vec<Value>, String> {
    let n = rel.rows.len();
    let mut run_subq = |q: &Query, ctx: &mut ExecCtx| -> Result<Vec<Row>, String> {
        run_query(env, ctx, q).map(|rs| rs.rows)
    };
    // Partition keys.
    let mut partitions: HashMap<String, Vec<usize>> = HashMap::new();
    for ri in 0..n {
        let mut key = String::new();
        for p in &spec.partition_by {
            let mut eenv =
                EvalEnv { cols: &rel.cols, row: &rel.rows[ri], ctx, subquery: Some(&mut run_subq) };
            key.push_str(&eval(p, &mut eenv)?.key_repr());
            key.push('\u{1}');
        }
        partitions.entry(key).or_default().push(ri);
    }
    if !spec.partition_by.is_empty() {
        cov!(ctx);
    }
    // Frame clause validation branches (RANGE with offsets requires exactly
    // one numeric ORDER BY key — mirroring real planner checks).
    if let Some(frame) = &spec.frame {
        cov!(ctx);
        if frame.unit == FrameUnit::Range {
            cov!(ctx);
            let offset_bound =
                |b: &FrameBound| matches!(b, FrameBound::Preceding(_) | FrameBound::Following(_));
            let has_offset =
                offset_bound(&frame.start) || frame.end.as_ref().map(offset_bound).unwrap_or(false);
            if has_offset && spec.order_by.len() != 1 {
                cov!(ctx);
                return Err("RANGE with offset requires exactly one ORDER BY column".into());
            }
        }
    }

    let name = func.name.to_ascii_uppercase();
    {
        // Per-window-function entry path.
        let mut name_code: u64 = 0;
        for b in name.bytes() {
            name_code = name_code.wrapping_mul(31).wrapping_add(b as u64);
        }
        ctx.hit_idx(site_id!(), name_code % 32);
    }
    let mut results = vec![Value::Null; n];
    let mut sorted_parts: Vec<(&String, &Vec<usize>)> = partitions.iter().collect();
    sorted_parts.sort_by(|a, b| a.0.cmp(b.0));
    for (_, members) in sorted_parts {
        // Order within the partition.
        let mut order: Vec<usize> = members.clone();
        if !spec.order_by.is_empty() {
            cov!(ctx);
            let mut keys: HashMap<usize, Vec<Value>> = HashMap::new();
            for &ri in members {
                let mut key = Vec::new();
                for o in &spec.order_by {
                    let mut eenv = EvalEnv {
                        cols: &rel.cols,
                        row: &rel.rows[ri],
                        ctx,
                        subquery: Some(&mut run_subq),
                    };
                    key.push(eval(&o.expr, &mut eenv)?);
                }
                keys.insert(ri, key);
            }
            order.sort_by(|&a, &b| compare_key_rows(&keys[&a], &keys[&b], &spec.order_by));
        }
        match name.as_str() {
            "ROW_NUMBER" => {
                for (i, &ri) in order.iter().enumerate() {
                    results[ri] = Value::Int(i as i64 + 1);
                }
            }
            "RANK" | "DENSE_RANK" => {
                cov!(ctx);
                let mut rank = 0i64;
                let mut dense = 0i64;
                let mut prev_key: Option<Vec<String>> = None;
                for (i, &ri) in order.iter().enumerate() {
                    let key: Vec<String> = spec
                        .order_by
                        .iter()
                        .map(|o| {
                            let mut eenv = EvalEnv {
                                cols: &rel.cols,
                                row: &rel.rows[ri],
                                ctx,
                                subquery: None,
                            };
                            eval(&o.expr, &mut eenv).map(|v| v.key_repr()).unwrap_or_default()
                        })
                        .collect();
                    if prev_key.as_ref() != Some(&key) {
                        rank = i as i64 + 1;
                        dense += 1;
                        prev_key = Some(key);
                    }
                    results[ri] = Value::Int(if name == "RANK" { rank } else { dense });
                }
            }
            "LEAD" | "LAG" => {
                cov!(ctx);
                let arg = func.args.first();
                for (i, &ri) in order.iter().enumerate() {
                    let j = if name == "LEAD" { i.checked_add(1) } else { i.checked_sub(1) };
                    results[ri] = match j.and_then(|j| order.get(j)) {
                        Some(&src) => match arg {
                            Some(a) => {
                                let mut eenv = EvalEnv {
                                    cols: &rel.cols,
                                    row: &rel.rows[src],
                                    ctx,
                                    subquery: Some(&mut run_subq),
                                };
                                eval(a, &mut eenv)?
                            }
                            None => Value::Null,
                        },
                        None => Value::Null,
                    };
                }
            }
            "COUNT" | "SUM" | "MIN" | "MAX" | "AVG" => {
                cov!(ctx);
                match &spec.frame {
                    None => {
                        // No frame: aggregate over the whole partition.
                        let v = eval_aggregate_call(env, ctx, func, rel, &order)?;
                        for &ri in &order {
                            results[ri] = v.clone();
                        }
                    }
                    Some(frame) => {
                        cov!(ctx);
                        // Materialize the frame per row. ROWS counts
                        // physical neighbours; RANGE measures distance on
                        // the single numeric ORDER BY key (validated above).
                        let key_of = |ctx: &mut ExecCtx, ri: usize| -> Result<Value, String> {
                            match spec.order_by.first() {
                                Some(o) => {
                                    let mut eenv = EvalEnv {
                                        cols: &rel.cols,
                                        row: &rel.rows[ri],
                                        ctx,
                                        subquery: None,
                                    };
                                    eval(&o.expr, &mut eenv)
                                }
                                None => Ok(Value::Null),
                            }
                        };
                        let bound_offset = |ctx: &mut ExecCtx,
                                            b: &FrameBound|
                         -> Result<Option<f64>, String> {
                            Ok(match b {
                                FrameBound::UnboundedPreceding | FrameBound::UnboundedFollowing => {
                                    None
                                }
                                FrameBound::CurrentRow => Some(0.0),
                                FrameBound::Preceding(e) | FrameBound::Following(e) => {
                                    let cols2: crate::eval::Bindings = vec![];
                                    let row2: Vec<Value> = vec![];
                                    let mut eenv =
                                        EvalEnv { cols: &cols2, row: &row2, ctx, subquery: None };
                                    eval(e, &mut eenv)?.as_float()
                                }
                            })
                        };
                        let start_off = bound_offset(ctx, &frame.start)?;
                        let end_off = match &frame.end {
                            Some(b) => bound_offset(ctx, b)?,
                            None => Some(0.0), // single-bound frame: start .. CURRENT ROW
                        };
                        for (pos, &ri) in order.iter().enumerate() {
                            let members: Vec<usize> = match frame.unit {
                                FrameUnit::Rows => {
                                    let lo = match (&frame.start, start_off) {
                                        (FrameBound::Following(_), Some(k)) => pos + k as usize,
                                        (_, Some(k)) => pos.saturating_sub(k as usize),
                                        (_, None) => 0,
                                    };
                                    let hi = match (frame.end.as_ref(), end_off) {
                                        (Some(FrameBound::Preceding(_)), Some(k)) => {
                                            pos.saturating_sub(k as usize)
                                        }
                                        (_, Some(k)) => (pos + k as usize).min(order.len() - 1),
                                        (_, None) => order.len() - 1,
                                    };
                                    if lo > hi || lo >= order.len() {
                                        vec![]
                                    } else {
                                        order[lo..=hi].to_vec()
                                    }
                                }
                                FrameUnit::Range => {
                                    let center = key_of(ctx, ri)?.as_float();
                                    match center {
                                        None => vec![ri],
                                        Some(c) => {
                                            let lo = start_off.map(|k| match frame.start {
                                                FrameBound::Following(_) => c + k,
                                                _ => c - k,
                                            });
                                            let hi = end_off.map(|k| match frame.end.as_ref() {
                                                Some(FrameBound::Preceding(_)) => c - k,
                                                _ => c + k,
                                            });
                                            let mut m = Vec::new();
                                            for &rj in &order {
                                                let kv = key_of(ctx, rj)?.as_float();
                                                if let Some(v) = kv {
                                                    let ge = lo.is_none_or(|l| v >= l);
                                                    let le = hi.is_none_or(|h| v <= h);
                                                    if ge && le {
                                                        m.push(rj);
                                                    }
                                                }
                                            }
                                            m
                                        }
                                    }
                                }
                            };
                            results[ri] = if members.is_empty() {
                                cov!(ctx); // empty-frame path
                                if name == "COUNT" {
                                    Value::Int(0)
                                } else {
                                    Value::Null
                                }
                            } else {
                                eval_aggregate_call(env, ctx, func, rel, &members)?
                            };
                        }
                    }
                }
            }
            other => {
                cov!(ctx);
                return Err(format!("unknown window function {other}"));
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnMeta, TableMeta};
    use lego_sqlast::Dialect;
    use lego_sqlparser::parse_statement;

    fn setup() -> (Catalog, Profile) {
        let mut cat = Catalog::new();
        cat.add_table(TableMeta {
            name: "t1".into(),
            temporary: false,
            columns: vec![
                ColumnMeta {
                    name: "v1".into(),
                    ty: DataType::Int,
                    not_null: false,
                    unique: false,
                    primary_key: false,
                    default: None,
                    check: None,
                    references: None,
                },
                ColumnMeta {
                    name: "v2".into(),
                    ty: DataType::Int,
                    not_null: false,
                    unique: false,
                    primary_key: false,
                    default: None,
                    check: None,
                    references: None,
                },
            ],
            checks: vec![],
            foreign_keys: vec![],
            rows: vec![
                vec![Value::Int(2), Value::Int(20)],
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(3), Value::Int(10)],
            ],
            analyzed: false,
            clustered: None,
        })
        .unwrap();
        (cat, Profile::for_dialect(Dialect::Postgres))
    }

    fn query(cat: &Catalog, prof: &Profile, sql: &str) -> ResultSet {
        let stmt = parse_statement(sql).unwrap();
        let q = match stmt {
            lego_sqlast::ast::Statement::Select(s) => s.query,
            other => panic!("not a select: {other:?}"),
        };
        let env = QueryEnv::new(cat, prof, "admin");
        let mut ctx = ExecCtx::new();
        run_query(&env, &mut ctx, &q).unwrap()
    }

    #[test]
    fn select_star() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT * FROM t1;");
        assert_eq!(rs.columns, vec!["v1", "v2"]);
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn where_and_order_by_unprojected_column() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT v2 FROM t1 WHERE v2 = 10 ORDER BY v1;");
        assert_eq!(rs.rows, vec![vec![Value::Int(10)], vec![Value::Int(10)]]);
        let rs = query(&cat, &prof, "SELECT v2 FROM t1 ORDER BY v1 DESC;");
        assert_eq!(rs.rows[0], vec![Value::Int(10)]); // v1=3 row first
    }

    #[test]
    fn limit_offset() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT v1 FROM t1 ORDER BY v1 LIMIT 1 OFFSET 1;");
        assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn aggregates() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT COUNT(*), SUM(v2), MIN(v1), MAX(v1), AVG(v2) FROM t1;");
        assert_eq!(
            rs.rows,
            vec![vec![
                Value::Int(3),
                Value::Int(40),
                Value::Int(1),
                Value::Int(3),
                Value::Float(40.0 / 3.0)
            ]]
        );
    }

    #[test]
    fn group_by_and_having() {
        let (cat, prof) = setup();
        let rs = query(
            &cat,
            &prof,
            "SELECT v2, COUNT(*) FROM t1 GROUP BY v2 HAVING COUNT(*) > 1 ORDER BY v2;",
        );
        assert_eq!(rs.rows, vec![vec![Value::Int(10), Value::Int(2)]]);
    }

    #[test]
    fn aggregate_on_empty_table_yields_one_row() {
        let (mut cat, prof) = setup();
        cat.table_mut("t1").unwrap().rows.clear();
        let rs = query(&cat, &prof, "SELECT COUNT(*) FROM t1;");
        assert_eq!(rs.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn distinct_dedups() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT DISTINCT v2 FROM t1;");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn joins() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT * FROM t1 AS a JOIN t1 AS b ON a.v1 = b.v1;");
        assert_eq!(rs.rows.len(), 3);
        let rs = query(&cat, &prof, "SELECT * FROM t1 AS a CROSS JOIN t1 AS b;");
        assert_eq!(rs.rows.len(), 9);
        let rs = query(&cat, &prof, "SELECT * FROM t1 AS a LEFT JOIN t1 AS b ON a.v1 = b.v1 + 10;");
        assert_eq!(rs.rows.len(), 3); // all null-extended
        assert_eq!(rs.rows[0][2], Value::Null);
    }

    #[test]
    fn set_operations() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT 32 EXCEPT SELECT v2 + 16 FROM t1;");
        // 32 is excluded: one of the v2+16 values is 26/36? v2 in {20,10,10}
        // -> {36,26,26}; 32 not excluded.
        assert_eq!(rs.rows, vec![vec![Value::Int(32)]]);
        let rs = query(&cat, &prof, "SELECT 1 UNION ALL SELECT 1;");
        assert_eq!(rs.rows.len(), 2);
        let rs = query(&cat, &prof, "SELECT 1 UNION SELECT 1;");
        assert_eq!(rs.rows.len(), 1);
        let rs = query(&cat, &prof, "SELECT v2 FROM t1 INTERSECT SELECT 10;");
        assert_eq!(rs.rows, vec![vec![Value::Int(10)]]);
    }

    #[test]
    fn subqueries_scalar_and_exists() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT (SELECT MAX(v1) FROM t1) FROM t1 LIMIT 1;");
        assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
        let rs = query(
            &cat,
            &prof,
            "SELECT v1 FROM t1 WHERE EXISTS (SELECT 1 FROM t1 WHERE v2 = 20) ORDER BY v1;",
        );
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn window_row_number_and_rank() {
        let (cat, prof) = setup();
        let rs =
            query(&cat, &prof, "SELECT v1, ROW_NUMBER() OVER (ORDER BY v1) FROM t1 ORDER BY v1;");
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(1)]);
        assert_eq!(rs.rows[2], vec![Value::Int(3), Value::Int(3)]);
        let rs =
            query(&cat, &prof, "SELECT v2, RANK() OVER (ORDER BY v2) FROM t1 ORDER BY v2, v1;");
        // v2 values sorted: 10,10,20 -> ranks 1,1,3
        let ranks: Vec<_> = rs.rows.iter().map(|r| r[1].clone()).collect();
        assert_eq!(ranks, vec![Value::Int(1), Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn window_lead_lag() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT v1, LEAD(v1) OVER (ORDER BY v1) FROM t1 ORDER BY v1;");
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(rs.rows[2], vec![Value::Int(3), Value::Null]);
    }

    #[test]
    fn rows_frame_sums_physical_neighbours() {
        let (cat, prof) = setup();
        // t1 rows sorted by v1: (1,10), (2,20), (3,10); running SUM(v1) over
        // ROWS BETWEEN 1 PRECEDING AND 0 FOLLOWING = [1, 3, 5].
        let rs = query(
            &cat,
            &prof,
            "SELECT v1, SUM(v1) OVER (ORDER BY v1 ROWS BETWEEN 1 PRECEDING AND 0 FOLLOWING) FROM t1 ORDER BY v1;",
        );
        let sums: Vec<_> = rs.rows.iter().map(|r| r[1].clone()).collect();
        assert_eq!(sums, vec![Value::Int(1), Value::Int(3), Value::Int(5)]);
    }

    #[test]
    fn range_frame_measures_key_distance() {
        let (cat, prof) = setup();
        // v1 values 1,2,3; RANGE BETWEEN 1 PRECEDING AND 1 FOLLOWING around
        // each: {1,2}=3, {1,2,3}=6, {2,3}=5.
        let rs = query(
            &cat,
            &prof,
            "SELECT v1, SUM(v1) OVER (ORDER BY v1 RANGE BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM t1 ORDER BY v1;",
        );
        let sums: Vec<_> = rs.rows.iter().map(|r| r[1].clone()).collect();
        assert_eq!(sums, vec![Value::Int(3), Value::Int(6), Value::Int(5)]);
    }

    #[test]
    fn empty_rows_frame_counts_zero() {
        let (cat, prof) = setup();
        // A frame strictly in the future of the last row is empty there.
        let rs = query(
            &cat,
            &prof,
            "SELECT v1, COUNT(v1) OVER (ORDER BY v1 ROWS BETWEEN 1 FOLLOWING AND 2 FOLLOWING) FROM t1 ORDER BY v1;",
        );
        let counts: Vec<_> = rs.rows.iter().map(|r| r[1].clone()).collect();
        assert_eq!(counts, vec![Value::Int(2), Value::Int(1), Value::Int(0)]);
    }

    #[test]
    fn range_frame_with_offset_requires_single_order_key() {
        let (cat, prof) = setup();
        let stmt = parse_statement(
            "SELECT SUM(v1) OVER (RANGE BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM t1;",
        )
        .unwrap();
        let q = match stmt {
            lego_sqlast::ast::Statement::Select(s) => s.query,
            _ => unreachable!(),
        };
        let env = QueryEnv::new(&cat, &prof, "admin");
        let mut ctx = ExecCtx::new();
        assert!(run_query(&env, &mut ctx, &q).is_err());
    }

    #[test]
    fn unknown_table_errors() {
        let (cat, prof) = setup();
        let stmt = parse_statement("SELECT * FROM nope;").unwrap();
        let q = match stmt {
            lego_sqlast::ast::Statement::Select(s) => s.query,
            _ => unreachable!(),
        };
        let env = QueryEnv::new(&cat, &prof, "admin");
        let mut ctx = ExecCtx::new();
        assert!(run_query(&env, &mut ctx, &q).is_err());
    }

    #[test]
    fn privilege_enforced_for_non_admin() {
        let (cat, prof) = setup();
        let stmt = parse_statement("SELECT * FROM t1;").unwrap();
        let q = match stmt {
            lego_sqlast::ast::Statement::Select(s) => s.query,
            _ => unreachable!(),
        };
        let env = QueryEnv::new(&cat, &prof, "eve");
        let mut ctx = ExecCtx::new();
        assert!(run_query(&env, &mut ctx, &q).is_err());
    }

    #[test]
    fn positional_order_and_group_by_bounds() {
        let (cat, prof) = setup();
        let rs = query(&cat, &prof, "SELECT v1, v2 FROM t1 ORDER BY 2, 1;");
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(10)]);
        let stmt = parse_statement("SELECT v1 FROM t1 GROUP BY 89;").unwrap();
        let q = match stmt {
            lego_sqlast::ast::Statement::Select(s) => s.query,
            _ => unreachable!(),
        };
        let env = QueryEnv::new(&cat, &prof, "admin");
        let mut ctx = ExecCtx::new();
        assert!(run_query(&env, &mut ctx, &q).is_err());
    }

    #[test]
    fn coverage_differs_between_query_shapes() {
        let (cat, prof) = setup();
        let shapes = [
            "SELECT * FROM t1;",
            "SELECT DISTINCT v1 FROM t1;",
            "SELECT COUNT(*) FROM t1;",
            "SELECT * FROM t1 AS a JOIN t1 AS b ON a.v1 = b.v1;",
        ];
        let mut digests = std::collections::HashSet::new();
        for sql in shapes {
            let stmt = parse_statement(sql).unwrap();
            let q = match stmt {
                lego_sqlast::ast::Statement::Select(s) => s.query,
                _ => unreachable!(),
            };
            let env = QueryEnv::new(&cat, &prof, "admin");
            let mut ctx = ExecCtx::new();
            run_query(&env, &mut ctx, &q).unwrap();
            digests.insert(ctx.cov.map().digest());
        }
        assert_eq!(digests.len(), shapes.len());
    }
}
