//! Row-level expression evaluation with SQL NULL semantics.

use crate::ctx::ExecCtx;
use crate::value::{Row, Value};
use lego_coverage::{cov, site_id};
use lego_sqlast::ast::Query;
use lego_sqlast::expr::*;
use std::cmp::Ordering;

/// Column bindings available to an expression: `(table alias, column name)`,
/// both lowercased, positionally matching the row.
pub type Bindings = Vec<(Option<String>, String)>;

/// Callback that executes a correlated-free subquery and yields its rows.
pub type SubqueryExec<'a> = dyn FnMut(&Query, &mut ExecCtx) -> Result<Vec<Row>, String> + 'a;

/// Everything an expression needs at evaluation time.
pub struct EvalEnv<'a> {
    pub cols: &'a Bindings,
    pub row: &'a [Value],
    pub ctx: &'a mut ExecCtx,
    /// Executes correlated-free subqueries; `None` where subqueries are
    /// disallowed (e.g. CHECK constraints).
    pub subquery: Option<&'a mut SubqueryExec<'a>>,
}

impl<'a> EvalEnv<'a> {
    fn lookup(&self, table: &Option<String>, column: &str) -> Result<Value, String> {
        let col_l = column.to_ascii_lowercase();
        let tab_l = table.as_ref().map(|t| t.to_ascii_lowercase());
        let mut found = None;
        for (i, (t, c)) in self.cols.iter().enumerate() {
            if *c == col_l && (tab_l.is_none() || *t == tab_l) {
                if found.is_some() && tab_l.is_none() {
                    return Err(format!("column reference \"{column}\" is ambiguous"));
                }
                found = Some(i);
                if tab_l.is_some() {
                    break;
                }
            }
        }
        match found {
            Some(i) => Ok(self.row.get(i).cloned().unwrap_or(Value::Null)),
            None => Err(format!("column \"{column}\" does not exist")),
        }
    }
}

/// Coverage class of a runtime value (NULL / numeric / text / bool / blob) —
/// real engines take different code for each operand-type combination.
fn vclass(v: &Value) -> u64 {
    match v {
        Value::Null => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Text(_) => 3,
        Value::Bool(_) => 4,
        Value::Blob(_) => 5,
    }
}

/// Evaluate an expression against one row.
///
/// Every recursive step re-enters through here, so the per-case
/// expression-depth budget ([`ExecCtx::enter_eval`]) sees the true
/// evaluation depth, including subqueries and nested function calls.
pub fn eval(expr: &Expr, env: &mut EvalEnv) -> Result<Value, String> {
    env.ctx.enter_eval()?;
    let r = eval_inner(expr, env);
    env.ctx.exit_eval();
    r
}

fn eval_inner(expr: &Expr, env: &mut EvalEnv) -> Result<Value, String> {
    match expr {
        Expr::Null => Ok(Value::Null),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Integer(v) => Ok(Value::Int(*v)),
        Expr::Float(v) => Ok(Value::Float(*v)),
        Expr::Str(s) => Ok(Value::Text(s.clone())),
        Expr::Column(c) => env.lookup(&c.table, &c.column),
        Expr::Unary(op, e) => {
            let v = eval(e, env)?;
            env.ctx.hit_idx(site_id!(), (*op as u64) << 3 | vclass(&v));
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                    other => Ok(other.as_float().map(|f| Value::Float(-f)).unwrap_or(Value::Null)),
                },
                UnaryOp::Plus => Ok(v),
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    other => Ok(Value::Bool(!other.is_truthy())),
                },
            }
        }
        Expr::Binary(l, op, r) => eval_binary(l, *op, r, env),
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, env)?;
            let p = eval(pattern, env)?;
            cov!(env.ctx);
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let text = match &v {
                Value::Text(s) => s.clone(),
                other => other.to_string(),
            };
            let pat = match &p {
                Value::Text(s) => s.clone(),
                other => other.to_string(),
            };
            // Pattern shape selects different matcher paths.
            let shape = (pat.contains('%') as u64) << 1 | pat.contains('_') as u64;
            env.ctx.hit_idx(site_id!(), shape << 1 | m_negated_flag(*negated));
            let m = like_match(&text, &pat);
            Ok(Value::Bool(m != *negated))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, env)?;
            cov!(env.ctx);
            let mut saw_null = v.is_null();
            let mut found = false;
            for item in list {
                let iv = eval(item, env)?;
                match v.sql_eq(&iv) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if found {
                Ok(Value::Bool(!*negated))
            } else if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, env)?;
            let lo = eval(low, env)?;
            let hi = eval(high, env)?;
            cov!(env.ctx);
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env)?;
            cov!(env.ctx);
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Case { operand, whens, else_ } => {
            cov!(env.ctx);
            let op_v = operand.as_ref().map(|o| eval(o, env)).transpose()?;
            for (w, t) in whens {
                let wv = eval(w, env)?;
                let hit = match &op_v {
                    Some(o) => o.sql_eq(&wv) == Some(true),
                    None => wv.is_truthy(),
                };
                if hit {
                    cov!(env.ctx);
                    return eval(t, env);
                }
            }
            match else_ {
                Some(e) => eval(e, env),
                None => Ok(Value::Null),
            }
        }
        Expr::Func(call) => eval_scalar_func(call, env),
        Expr::Window { .. } => Err("window functions are not allowed here".into()),
        Expr::Cast { expr, ty } => {
            let v = eval(expr, env)?;
            // One conversion routine per (source class, target type).
            env.ctx.hit_idx(site_id!(), vclass(&v) << 8 | cast_ty_code(*ty));
            Ok(v.cast_to(*ty))
        }
        Expr::Subquery(q) => {
            cov!(env.ctx);
            let rows = run_subquery(q, env)?;
            match rows.first() {
                Some(r) => Ok(r.first().cloned().unwrap_or(Value::Null)),
                None => Ok(Value::Null),
            }
        }
        Expr::Exists { query, negated } => {
            cov!(env.ctx);
            let rows = run_subquery(query, env)?;
            Ok(Value::Bool(rows.is_empty() == *negated))
        }
    }
}

fn m_negated_flag(n: bool) -> u64 {
    n as u64
}

fn cast_ty_code(ty: lego_sqlast::expr::DataType) -> u64 {
    use lego_sqlast::expr::DataType as D;
    match ty {
        D::Int => 0,
        D::BigInt => 1,
        D::SmallInt => 2,
        D::Float => 3,
        D::Double => 4,
        D::Decimal(..) => 5,
        D::Text => 6,
        D::VarChar(_) => 7,
        D::Char(_) => 8,
        D::Bool => 9,
        D::Blob => 10,
        D::Date => 11,
        D::Time => 12,
        D::Timestamp => 13,
        D::Year => 14,
    }
}

fn run_subquery(q: &Query, env: &mut EvalEnv) -> Result<Vec<Row>, String> {
    match env.subquery.as_mut() {
        Some(f) => f(q, &mut *env.ctx),
        None => Err("subqueries are not allowed in this context".into()),
    }
}

fn eval_binary(l: &Expr, op: BinOp, r: &Expr, env: &mut EvalEnv) -> Result<Value, String> {
    // AND/OR get SQL three-valued logic with short-circuiting.
    if matches!(op, BinOp::And | BinOp::Or) {
        let lv = eval(l, env)?;
        cov!(env.ctx);
        let short = match (op, &lv) {
            (BinOp::And, v) if !v.is_null() && !v.is_truthy() => Some(Value::Bool(false)),
            (BinOp::Or, v) if !v.is_null() && v.is_truthy() => Some(Value::Bool(true)),
            _ => None,
        };
        if let Some(v) = short {
            return Ok(v);
        }
        let rv = eval(r, env)?;
        let combine = |a: Option<bool>, b: Option<bool>| -> Option<bool> {
            match op {
                BinOp::And => match (a, b) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                _ => match (a, b) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
            }
        };
        let tri = |v: &Value| if v.is_null() { None } else { Some(v.is_truthy()) };
        return Ok(match combine(tri(&lv), tri(&rv)) {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        });
    }

    let lv = eval(l, env)?;
    let rv = eval(r, env)?;
    // Each (operator, left class, right class) combination is its own
    // dispatch path, like an engine's per-type operator implementations.
    env.ctx.hit_idx(site_id!(), (op as u64) << 6 | vclass(&lv) << 3 | vclass(&rv));
    if op.is_comparison() {
        return Ok(match (op, lv.sql_cmp(&rv), lv.sql_eq(&rv)) {
            (_, None, _) => Value::Null,
            (BinOp::Eq, _, Some(e)) => Value::Bool(e),
            (BinOp::Ne, _, Some(e)) => Value::Bool(!e),
            (BinOp::Lt, Some(c), _) => Value::Bool(c == Ordering::Less),
            (BinOp::Le, Some(c), _) => Value::Bool(c != Ordering::Greater),
            (BinOp::Gt, Some(c), _) => Value::Bool(c == Ordering::Greater),
            (BinOp::Ge, Some(c), _) => Value::Bool(c != Ordering::Less),
            _ => Value::Null,
        });
    }
    if lv.is_null() || rv.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Concat => {
            cov!(env.ctx);
            let mut s = match &lv {
                Value::Text(s) => s.clone(),
                other => other.to_string(),
            };
            match &rv {
                Value::Text(t) => s.push_str(t),
                other => s.push_str(&other.to_string()),
            }
            Ok(Value::Text(s))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            // Integer arithmetic when both sides are integral, else float.
            if let (Value::Int(a), Value::Int(b)) = (&lv, &rv) {
                cov!(env.ctx);
                return Ok(match op {
                    BinOp::Add => Value::Int(a.wrapping_add(*b)),
                    BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
                    BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
                    BinOp::Div => {
                        if *b == 0 {
                            cov!(env.ctx); // division-by-zero path
                            Value::Null
                        } else {
                            Value::Int(a.wrapping_div(*b))
                        }
                    }
                    BinOp::Mod => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a.wrapping_rem(*b))
                        }
                    }
                    _ => unreachable!(),
                });
            }
            let (a, b) = match (lv.as_float(), rv.as_float()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Ok(Value::Null),
            };
            cov!(env.ctx);
            Ok(match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a % b)
                    }
                }
                _ => unreachable!(),
            })
        }
        _ => unreachable!("comparison handled above"),
    }
}

fn eval_scalar_func(call: &FuncCall, env: &mut EvalEnv) -> Result<Value, String> {
    let name = call.name.to_ascii_uppercase();
    let mut args = Vec::with_capacity(call.args.len());
    for a in &call.args {
        args.push(eval(a, env)?);
    }
    let mut name_code: u64 = 0;
    for b in name.bytes() {
        name_code = name_code.wrapping_mul(31).wrapping_add(b as u64);
    }
    let c0 = args.first().map(vclass).unwrap_or(0);
    env.ctx.hit_idx(site_id!(), (name_code % 64) << 3 | c0);
    let arg0 = || args.first().cloned().unwrap_or(Value::Null);
    match name.as_str() {
        "ABS" => Ok(match arg0() {
            Value::Null => Value::Null,
            Value::Int(v) => Value::Int(v.wrapping_abs()),
            other => other.as_float().map(|f| Value::Float(f.abs())).unwrap_or(Value::Null),
        }),
        "LENGTH" | "CHAR_LENGTH" => Ok(match arg0() {
            Value::Null => Value::Null,
            Value::Text(s) => Value::Int(s.len() as i64),
            other => Value::Int(other.to_string().len() as i64),
        }),
        "UPPER" => Ok(match arg0() {
            Value::Null => Value::Null,
            Value::Text(s) => Value::Text(s.to_ascii_uppercase()),
            other => Value::Text(other.to_string().to_ascii_uppercase()),
        }),
        "LOWER" => Ok(match arg0() {
            Value::Null => Value::Null,
            Value::Text(s) => Value::Text(s.to_ascii_lowercase()),
            other => Value::Text(other.to_string().to_ascii_lowercase()),
        }),
        "COALESCE" => Ok(args.into_iter().find(|v| !v.is_null()).unwrap_or(Value::Null)),
        "NULLIF" => {
            if args.len() != 2 {
                return Err("NULLIF takes two arguments".into());
            }
            if args[0].sql_eq(&args[1]) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(args.into_iter().next().unwrap())
            }
        }
        "ROUND" => Ok(match arg0().as_float() {
            Some(f) => Value::Float(f.round()),
            None => Value::Null,
        }),
        "SUBSTR" | "SUBSTRING" => {
            let text = match arg0() {
                Value::Null => return Ok(Value::Null),
                Value::Text(s) => s,
                other => other.to_string(),
            };
            let start = args.get(1).and_then(|v| v.as_int()).unwrap_or(1).max(1) as usize;
            let len = args.get(2).and_then(|v| v.as_int()).map(|v| v.max(0) as usize);
            let chars: Vec<char> = text.chars().collect();
            let from = (start - 1).min(chars.len());
            let to = match len {
                Some(l) => (from + l).min(chars.len()),
                None => chars.len(),
            };
            Ok(Value::Text(chars[from..to].iter().collect()))
        }
        "REPLACE" => {
            let (s0, s1, s2) = (
                args.first().cloned().unwrap_or(Value::Null),
                args.get(1).cloned().unwrap_or(Value::Null),
                args.get(2).cloned().unwrap_or(Value::Null),
            );
            if s0.is_null() || s1.is_null() || s2.is_null() {
                return Ok(Value::Null);
            }
            let text = match s0 {
                Value::Text(t) => t,
                other => other.to_string(),
            };
            let from = match s1 {
                Value::Text(t) => t,
                other => other.to_string(),
            };
            let to = match s2 {
                Value::Text(t) => t,
                other => other.to_string(),
            };
            if from.is_empty() {
                return Ok(Value::Text(text));
            }
            Ok(Value::Text(text.replace(&from, &to)))
        }
        "TRIM" => Ok(match arg0() {
            Value::Null => Value::Null,
            Value::Text(s) => Value::Text(s.trim().to_string()),
            other => Value::Text(other.to_string().trim().to_string()),
        }),
        "HEX" => Ok(match arg0() {
            Value::Null => Value::Null,
            Value::Int(v) => Value::Text(format!("{v:X}")),
            Value::Text(s) => {
                Value::Text(s.bytes().map(|b| format!("{b:02X}")).collect::<String>())
            }
            other => Value::Text(other.to_string()),
        }),
        "INSTR" => {
            let hay = arg0();
            let needle = args.get(1).cloned().unwrap_or(Value::Null);
            if hay.is_null() || needle.is_null() {
                return Ok(Value::Null);
            }
            let h = match hay {
                Value::Text(s) => s,
                other => other.to_string(),
            };
            let n = match needle {
                Value::Text(s) => s,
                other => other.to_string(),
            };
            Ok(Value::Int(h.find(&n).map(|p| p as i64 + 1).unwrap_or(0)))
        }
        "GREATEST" | "LEAST" => {
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let picked = if name == "GREATEST" {
                args.iter().max_by(|a, b| a.sort_cmp(b))
            } else {
                args.iter().min_by(|a, b| a.sort_cmp(b))
            };
            Ok(picked.cloned().unwrap_or(Value::Null))
        }
        "CONCAT" => {
            let mut out = String::new();
            for a in &args {
                if a.is_null() {
                    return Ok(Value::Null);
                }
                match a {
                    Value::Text(s) => out.push_str(s),
                    other => out.push_str(&other.to_string()),
                }
            }
            Ok(Value::Text(out))
        }
        "SIGN" => Ok(match arg0().as_float() {
            Some(f) => Value::Int(if f > 0.0 {
                1
            } else if f < 0.0 {
                -1
            } else {
                0
            }),
            None => Value::Null,
        }),
        "MOD" => {
            let (a, b) = (arg0().as_int(), args.get(1).and_then(|v| v.as_int()));
            Ok(match (a, b) {
                (Some(_), Some(0)) => Value::Null,
                (Some(a), Some(b)) => Value::Int(a.wrapping_rem(b)),
                _ => Value::Null,
            })
        }
        "TYPEOF" => Ok(Value::Text(
            match arg0() {
                Value::Null => "null",
                Value::Int(_) => "integer",
                Value::Float(_) => "real",
                Value::Text(_) => "text",
                Value::Bool(_) => "boolean",
                Value::Blob(_) => "blob",
            }
            .into(),
        )),
        // Aggregates appearing in a scalar context without GROUP BY are
        // resolved by the executor before row-level evaluation, so reaching
        // here is a semantic error.
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => {
            Err(format!("aggregate function {name} is not allowed here"))
        }
        other => Err(format!("unknown function {other}")),
    }
}

/// Case-insensitive SQL LIKE with `%` and `_`.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn inner(t: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => (0..=t.len()).any(|i| inner(&t[i..], &p[1..])),
            Some(b'_') => !t.is_empty() && inner(&t[1..], &p[1..]),
            Some(&c) => !t.is_empty() && t[0].eq_ignore_ascii_case(&c) && inner(&t[1..], &p[1..]),
        }
    }
    inner(text.as_bytes(), pattern.as_bytes())
}

/// Is the call an aggregate function?
pub fn is_aggregate(call: &FuncCall) -> bool {
    matches!(call.name.to_ascii_uppercase().as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
}

/// Does the expression contain an aggregate call (outside subqueries)?
pub fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Func(c) => is_aggregate(c) || c.args.iter().any(contains_aggregate),
        Expr::Unary(_, x) | Expr::IsNull { expr: x, .. } | Expr::Cast { expr: x, .. } => {
            contains_aggregate(x)
        }
        Expr::Binary(l, _, r) => contains_aggregate(l) || contains_aggregate(r),
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        Expr::Case { operand, whens, else_ } => {
            operand.as_deref().map(contains_aggregate).unwrap_or(false)
                || whens.iter().any(|(w, t)| contains_aggregate(w) || contains_aggregate(t))
                || else_.as_deref().map(contains_aggregate).unwrap_or(false)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ExecCtx;
    use lego_sqlast::expr::Expr;

    fn eval_const(e: &Expr) -> Value {
        let mut ctx = ExecCtx::new_detached();
        let cols: Bindings = vec![];
        let row: Vec<Value> = vec![];
        let mut env = EvalEnv { cols: &cols, row: &row, ctx: &mut ctx, subquery: None };
        eval(e, &mut env).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            eval_const(&Expr::binary(Expr::int(2), BinOp::Add, Expr::int(3))),
            Value::Int(5)
        );
        assert_eq!(
            eval_const(&Expr::binary(Expr::int(7), BinOp::Div, Expr::int(2))),
            Value::Int(3)
        );
        assert_eq!(
            eval_const(&Expr::binary(Expr::Float(7.0), BinOp::Div, Expr::int(2))),
            Value::Float(3.5)
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(eval_const(&Expr::binary(Expr::int(1), BinOp::Div, Expr::int(0))), Value::Null);
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(eval_const(&Expr::binary(Expr::Null, BinOp::Add, Expr::int(1))), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
        assert_eq!(
            eval_const(&Expr::binary(Expr::Null, BinOp::And, Expr::Bool(false))),
            Value::Bool(false)
        );
        assert_eq!(
            eval_const(&Expr::binary(Expr::Null, BinOp::Or, Expr::Bool(true))),
            Value::Bool(true)
        );
        assert_eq!(
            eval_const(&Expr::binary(Expr::Bool(true), BinOp::And, Expr::Null)),
            Value::Null
        );
    }

    #[test]
    fn like_matching() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("HELLO", "hello"));
        assert!(like_match("", "%"));
    }

    #[test]
    fn in_list_with_null_semantics() {
        let e = Expr::InList {
            expr: Box::new(Expr::int(3)),
            list: vec![Expr::int(1), Expr::Null],
            negated: false,
        };
        assert_eq!(eval_const(&e), Value::Null);
        let e2 = Expr::InList {
            expr: Box::new(Expr::int(1)),
            list: vec![Expr::int(1), Expr::Null],
            negated: false,
        };
        assert_eq!(eval_const(&e2), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new("ABS", vec![Expr::int(-5)]))),
            Value::Int(5)
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new("UPPER", vec![Expr::str("ab")]))),
            Value::Text("AB".into())
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new(
                "COALESCE",
                vec![Expr::Null, Expr::int(2), Expr::int(3)]
            ))),
            Value::Int(2)
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new(
                "SUBSTR",
                vec![Expr::str("hello"), Expr::int(2), Expr::int(3)]
            ))),
            Value::Text("ell".into())
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new(
                "REPLACE",
                vec![Expr::str("aXbX"), Expr::str("X"), Expr::str("-")]
            ))),
            Value::Text("a-b-".into())
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new("TRIM", vec![Expr::str("  hi ")]))),
            Value::Text("hi".into())
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new(
                "INSTR",
                vec![Expr::str("water"), Expr::str("ter")]
            ))),
            Value::Int(3)
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new("HEX", vec![Expr::int(255)]))),
            Value::Text("FF".into())
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new(
                "CONCAT",
                vec![Expr::str("a"), Expr::int(1), Expr::str("b")]
            ))),
            Value::Text("a1b".into())
        );
    }

    #[test]
    fn math_functions() {
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new(
                "GREATEST",
                vec![Expr::int(3), Expr::int(9), Expr::int(5)]
            ))),
            Value::Int(9)
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new(
                "LEAST",
                vec![Expr::int(3), Expr::Null, Expr::int(5)]
            ))),
            Value::Null
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new("SIGN", vec![Expr::int(-5)]))),
            Value::Int(-1)
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new("MOD", vec![Expr::int(7), Expr::int(3)]))),
            Value::Int(1)
        );
        assert_eq!(
            eval_const(&Expr::Func(FuncCall::new("MOD", vec![Expr::int(7), Expr::int(0)]))),
            Value::Null
        );
    }

    #[test]
    fn concat() {
        assert_eq!(
            eval_const(&Expr::binary(Expr::str("a"), BinOp::Concat, Expr::str("b"))),
            Value::Text("ab".into())
        );
    }

    #[test]
    fn case_expression() {
        let e = Expr::Case {
            operand: Some(Box::new(Expr::int(2))),
            whens: vec![(Expr::int(1), Expr::str("one")), (Expr::int(2), Expr::str("two"))],
            else_: None,
        };
        assert_eq!(eval_const(&e), Value::Text("two".into()));
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Func(FuncCall::star("COUNT"));
        assert!(contains_aggregate(&agg));
        assert!(!contains_aggregate(&Expr::int(1)));
        let nested = Expr::binary(
            Expr::Func(FuncCall::new("SUM", vec![Expr::col("a")])),
            BinOp::Gt,
            Expr::int(1),
        );
        assert!(contains_aggregate(&nested));
    }
}
