//! WAL recovery: scan the log's longest valid prefix and replay it.
//!
//! The reader is deliberately forgiving about the *tail* and strict about
//! everything else: records are consumed while they decode cleanly, and the
//! first malformed byte ends the log. Trailing garbage — a torn final
//! record from a crash mid-write — is reported via [`RecoveredLog::torn`]
//! rather than as an error, because a torn tail is an expected crash
//! artifact while a corrupt *interior* record would simply end the valid
//! prefix early (and the recovery oracle would flag the divergence).

use crate::engine::{Dbms, ExecReport};
use crate::wal::{decode_record, DecodeError, WAL_MAGIC};
use lego_sqlast::{Dialect, TestCase};
use std::io;
use std::path::Path;

/// What a WAL scan found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredLog {
    /// Statements of the longest valid prefix, in log order.
    pub records: Vec<String>,
    /// Byte offset one past the last valid record (= magic length for an
    /// empty log, 0 for a file without a valid magic).
    pub valid_len: u64,
    /// Bytes remained beyond the valid prefix (torn tail or corruption).
    pub torn: bool,
}

/// Scan an in-memory WAL image. Never fails: a file that is not a WAL at
/// all recovers zero records with `torn` set.
pub fn scan_wal(buf: &[u8]) -> RecoveredLog {
    if buf.len() < WAL_MAGIC.len() || buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        return RecoveredLog { records: Vec::new(), valid_len: 0, torn: !buf.is_empty() };
    }
    let mut pos = WAL_MAGIC.len();
    let mut records = Vec::new();
    loop {
        match decode_record(&buf[pos..]) {
            Ok((sql, used)) => {
                records.push(sql);
                pos += used;
            }
            Err(DecodeError::Clean) => break,
            Err(_) => break,
        }
    }
    RecoveredLog { records, valid_len: pos as u64, torn: pos < buf.len() }
}

/// Read and scan the WAL file at `path`.
pub fn read_wal(path: &Path) -> io::Result<RecoveredLog> {
    Ok(scan_wal(&std::fs::read(path)?))
}

/// Replay recovered records into `db` as one test case (so the statement
/// trace matches the original execution's prefix and the pattern-based
/// crash oracle sees the same history it already cleared). Returns a parse
/// error if a record is not a statement — impossible for records our own
/// writer produced, but the log on disk is untrusted input.
pub fn replay_into(db: &mut Dbms, records: &[String]) -> Result<ExecReport, String> {
    let mut statements = Vec::with_capacity(records.len());
    for (i, sql) in records.iter().enumerate() {
        let stmt = lego_sqlparser::parse_statement(sql)
            .map_err(|e| format!("WAL record {i} does not parse: {e}"))?;
        statements.push(stmt);
    }
    Ok(db.execute_case(&TestCase::new(statements)))
}

/// Replay-on-open: scan the WAL at `path` and reconstruct a fresh engine
/// from its valid prefix.
pub fn reopen(dialect: Dialect, path: &Path) -> io::Result<(Dbms, RecoveredLog)> {
    let log = read_wal(path)?;
    let mut db = Dbms::new(dialect);
    replay_into(&mut db, &log.records)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok((db, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::encode_record;

    fn image(records: &[&str]) -> Vec<u8> {
        let mut buf = WAL_MAGIC.to_vec();
        for r in records {
            buf.extend_from_slice(&encode_record(r));
        }
        buf
    }

    #[test]
    fn scan_empty_log() {
        let log = scan_wal(&image(&[]));
        assert_eq!(log.records.len(), 0);
        assert!(!log.torn);
        assert_eq!(log.valid_len, WAL_MAGIC.len() as u64);
    }

    #[test]
    fn scan_recovers_records_in_order() {
        let log = scan_wal(&image(&["CREATE TABLE t (a INT);", "INSERT INTO t VALUES (1);"]));
        assert_eq!(log.records, vec!["CREATE TABLE t (a INT);", "INSERT INTO t VALUES (1);"]);
        assert!(!log.torn);
    }

    #[test]
    fn scan_flags_torn_tail_and_keeps_prefix() {
        let mut buf = image(&["SELECT 1;", "SELECT 2;"]);
        let full = buf.len();
        buf.truncate(full - 3);
        let log = scan_wal(&buf);
        assert_eq!(log.records, vec!["SELECT 1;"]);
        assert!(log.torn);
    }

    #[test]
    fn scan_without_magic_recovers_nothing() {
        let log = scan_wal(b"not a wal");
        assert!(log.records.is_empty());
        assert!(log.torn);
        assert_eq!(log.valid_len, 0);
    }
}
