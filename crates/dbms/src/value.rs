//! Runtime values and SQL coercion semantics.

use lego_sqlast::expr::DataType;
use std::cmp::Ordering;
use std::fmt;

/// A runtime cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
    Blob(Vec<u8>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL truthiness: NULL is unknown (treated as false in filters).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Text(s) => !s.is_empty(),
            Value::Blob(b) => !b.is_empty(),
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64 as f64),
            Value::Text(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(*b as i64),
            Value::Text(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    /// Total order used for ORDER BY / index keys: NULLs first, then by type
    /// class, then by value (mirrors SQLite's type ordering).
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) | Value::Bool(_) => 1,
                Value::Text(_) => 2,
                Value::Blob(_) => 3,
            }
        }
        match class(self).cmp(&class(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Text(a), Value::Text(b)) => a.cmp(b),
                (Value::Blob(a), Value::Blob(b)) => a.cmp(b),
                (a, b) => {
                    let (x, y) = (a.as_float().unwrap_or(0.0), b.as_float().unwrap_or(0.0));
                    x.partial_cmp(&y).unwrap_or(Ordering::Equal)
                }
            },
            o => o,
        }
    }

    /// SQL `=` comparison with NULL semantics: returns `None` when either
    /// side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Blob(a), Value::Blob(b)) => a == b,
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        })
    }

    /// SQL ordering comparison; `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.sort_cmp(other))
    }

    /// Coerce for storage into a column of declared type (type affinity, like
    /// SQLite/MySQL silently converting on insert).
    pub fn coerce_to(&self, ty: DataType) -> Value {
        if self.is_null() {
            return Value::Null;
        }
        match ty {
            t if t.is_numeric() => {
                if matches!(t, DataType::Float | DataType::Double | DataType::Decimal(..)) {
                    self.as_float().map(Value::Float).unwrap_or(Value::Null)
                } else if matches!(t, DataType::Year) {
                    // YEAR clamps into [1901, 2155], MySQL-style; 0 allowed.
                    match self.as_int() {
                        Some(0) => Value::Int(0),
                        Some(v) => Value::Int(v.clamp(1901, 2155)),
                        None => Value::Null,
                    }
                } else {
                    self.as_int().map(Value::Int).unwrap_or(Value::Null)
                }
            }
            t if t.is_textual() => {
                let mut s = self.render_text();
                if let DataType::VarChar(n) | DataType::Char(n) = t {
                    s.truncate(n as usize);
                }
                Value::Text(s)
            }
            DataType::Bool => Value::Bool(self.is_truthy()),
            DataType::Blob => match self {
                Value::Blob(b) => Value::Blob(b.clone()),
                other => Value::Blob(other.render_text().into_bytes()),
            },
            // Temporal types store their textual form.
            _ => Value::Text(self.render_text()),
        }
    }

    /// CAST semantics (slightly stricter than storage coercion).
    pub fn cast_to(&self, ty: DataType) -> Value {
        self.coerce_to(ty)
    }

    fn render_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => v.to_string(),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => if *b { "1" } else { "0" }.to_string(),
            Value::Blob(b) => String::from_utf8_lossy(b).into_owned(),
        }
    }

    /// Key encoding for unique/index comparisons (NULLs are distinct, as in
    /// SQL unique constraints).
    pub fn key_repr(&self) -> String {
        match self {
            Value::Null => "\u{0}N".into(),
            Value::Int(v) => format!("i{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && *v < 1e15 && *v > -1e15 {
                    format!("i{}", *v as i64)
                } else {
                    format!("f{v}")
                }
            }
            Value::Text(s) => format!("t{s}"),
            Value::Bool(b) => format!("i{}", *b as i64),
            Value::Blob(b) => format!("b{}", String::from_utf8_lossy(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Value::Blob(b) => write!(f, "x'{}'", b.len()),
        }
    }
}

/// A row of values.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagation_in_eq() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(Value::Bool(true).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn text_and_numbers_do_not_collide_in_sort() {
        assert_eq!(Value::Int(5).sort_cmp(&Value::Text("5".into())), Ordering::Less);
        assert_eq!(Value::Null.sort_cmp(&Value::Int(0)), Ordering::Less);
    }

    #[test]
    fn year_coercion_clamps() {
        assert_eq!(Value::Int(22471185).coerce_to(DataType::Year), Value::Int(2155));
        assert_eq!(Value::Int(1000).coerce_to(DataType::Year), Value::Int(1901));
        assert_eq!(Value::Int(2021).coerce_to(DataType::Year), Value::Int(2021));
        assert_eq!(Value::Int(0).coerce_to(DataType::Year), Value::Int(0));
    }

    #[test]
    fn varchar_truncates() {
        assert_eq!(
            Value::Text("hello world".into()).coerce_to(DataType::VarChar(5)),
            Value::Text("hello".into())
        );
    }

    #[test]
    fn text_to_int_coercion() {
        assert_eq!(Value::Text("42".into()).coerce_to(DataType::Int), Value::Int(42));
        assert_eq!(Value::Text("x".into()).coerce_to(DataType::Int), Value::Null);
    }

    #[test]
    fn key_repr_unifies_int_and_integral_float() {
        assert_eq!(Value::Int(3).key_repr(), Value::Float(3.0).key_repr());
        assert_ne!(Value::Int(3).key_repr(), Value::Text("3".into()).key_repr());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(Value::Int(2).is_truthy());
        assert!(!Value::Text(String::new()).is_truthy());
    }
}
