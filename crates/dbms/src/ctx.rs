//! Per-script execution context: coverage recorder, type trace, crash slot.

use crate::bugs::CrashReport;
use lego_coverage::{CovRecorder, SiteId};
use lego_sqlast::StmtKind;

/// Carried through one test-case execution. The edge chain is *not* reset
/// between statements: as in AFL++'s whole-process execution, edges spanning
/// statement boundaries exist, which is precisely what makes coverage
/// sensitive to SQL Type Sequences.
pub struct ExecCtx {
    pub cov: CovRecorder,
    /// Statement kinds executed so far (the observed SQL Type Sequence).
    pub trace: Vec<StmtKind>,
    /// Trigger/rule recursion depth guard.
    pub depth: usize,
    /// Set when the bug oracle fires; aborts the script.
    pub crash: Option<CrashReport>,
    /// Rows produced by the last query statement.
    pub last_row_count: usize,
}

impl ExecCtx {
    pub fn new() -> Self {
        Self::from_recorder(CovRecorder::new())
    }

    /// Build a context around a recycled coverage map (allocation reuse on
    /// the per-case hot path).
    pub fn reusing(map: lego_coverage::CovMap) -> Self {
        Self::from_recorder(CovRecorder::from_recycled(map))
    }

    fn from_recorder(cov: CovRecorder) -> Self {
        Self { cov, trace: Vec::new(), depth: 0, crash: None, last_row_count: 0 }
    }

    /// Context for unit tests that only need coverage plumbing.
    pub fn new_detached() -> Self {
        Self::new()
    }

    #[inline]
    pub fn hit(&mut self, id: SiteId) {
        self.cov.hit(id);
    }

    /// Hit a site derived from a base location and a dynamic index (e.g. one
    /// per statement kind at a dispatch point).
    #[inline]
    pub fn hit_idx(&mut self, id: SiteId, idx: u64) {
        self.cov.hit(id.with_index(idx));
    }

    pub fn crashed(&self) -> bool {
        self.crash.is_some()
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_coverage::site_id;

    #[test]
    fn hits_accumulate_across_statements() {
        let mut ctx = ExecCtx::new();
        ctx.hit(site_id!());
        ctx.hit(site_id!());
        assert!(ctx.cov.map().edge_count() >= 2);
    }

    #[test]
    fn hit_idx_distinguishes_indices() {
        let mut a = ExecCtx::new();
        let mut b = ExecCtx::new();
        let base = site_id!();
        a.hit_idx(base, 1);
        b.hit_idx(base, 2);
        assert_ne!(a.cov.map().digest(), b.cov.map().digest());
    }
}
