//! Per-script execution context: coverage recorder, type trace, crash slot,
//! and the per-case execution budgets.

use crate::bugs::CrashReport;
use crate::limits::{AbortReason, Limits};
use lego_coverage::{CovRecorder, SiteId};
use lego_sqlast::StmtKind;

/// Carried through one test-case execution. The edge chain is *not* reset
/// between statements: as in AFL++'s whole-process execution, edges spanning
/// statement boundaries exist, which is precisely what makes coverage
/// sensitive to SQL Type Sequences.
pub struct ExecCtx {
    pub cov: CovRecorder,
    /// Statement kinds executed so far (the observed SQL Type Sequence).
    pub trace: Vec<StmtKind>,
    /// Trigger/rule recursion depth guard.
    pub depth: usize,
    /// Set when the bug oracle fires; aborts the script.
    pub crash: Option<CrashReport>,
    /// Rows produced by the last query statement.
    pub last_row_count: usize,
    /// Per-case execution budgets (the deterministic stand-in for AFL's
    /// per-exec timeout).
    pub limits: Limits,
    /// Rows materialized so far, across all operators.
    pub rows_materialized: usize,
    /// Statements charged so far, including trigger/rule cascades.
    pub stmts_charged: usize,
    /// Current expression-evaluation recursion depth.
    pub eval_depth: usize,
    /// Set (sticky) when any budget trips; aborts the case.
    pub abort: Option<AbortReason>,
}

impl ExecCtx {
    pub fn new() -> Self {
        Self::from_recorder(CovRecorder::new())
    }

    /// Build a context around a recycled coverage map (allocation reuse on
    /// the per-case hot path).
    pub fn reusing(map: lego_coverage::CovMap) -> Self {
        Self::from_recorder(CovRecorder::from_recycled(map))
    }

    fn from_recorder(cov: CovRecorder) -> Self {
        Self {
            cov,
            trace: Vec::new(),
            depth: 0,
            crash: None,
            last_row_count: 0,
            limits: Limits::default(),
            rows_materialized: 0,
            stmts_charged: 0,
            eval_depth: 0,
            abort: None,
        }
    }

    /// Context for unit tests that only need coverage plumbing.
    pub fn new_detached() -> Self {
        Self::new()
    }

    #[inline]
    pub fn hit(&mut self, id: SiteId) {
        self.cov.hit(id);
    }

    /// Hit a site derived from a base location and a dynamic index (e.g. one
    /// per statement kind at a dispatch point).
    #[inline]
    pub fn hit_idx(&mut self, id: SiteId, idx: u64) {
        self.cov.hit(id.with_index(idx));
    }

    pub fn crashed(&self) -> bool {
        self.crash.is_some()
    }

    /// Record a budget trip. The first reason sticks; the returned error
    /// unwinds the current statement quickly (it reads as a semantic error
    /// to intermediate layers, but [`execute_case`](crate::Dbms::execute_case)
    /// checks `abort` and surfaces [`Outcome::Aborted`](crate::Outcome)).
    pub fn trip(&mut self, reason: AbortReason) -> String {
        self.abort.get_or_insert(reason);
        format!("case aborted: {} limit exceeded", reason.name())
    }

    /// Charge one executed statement (top-level or cascaded) against the
    /// per-case statement budget.
    #[inline]
    pub fn charge_statement(&mut self) -> Result<(), String> {
        self.stmts_charged += 1;
        if self.stmts_charged > self.limits.max_statements {
            return Err(self.trip(AbortReason::StatementBudget));
        }
        Ok(())
    }

    /// Charge `n` materialized rows against the per-case row budget.
    #[inline]
    pub fn charge_rows(&mut self, n: usize) -> Result<(), String> {
        self.rows_materialized = self.rows_materialized.saturating_add(n);
        if self.rows_materialized > self.limits.max_rows {
            return Err(self.trip(AbortReason::RowBudget));
        }
        Ok(())
    }

    /// Enter one level of expression evaluation; trips the depth budget.
    #[inline]
    pub fn enter_eval(&mut self) -> Result<(), String> {
        self.eval_depth += 1;
        if self.eval_depth > self.limits.max_eval_depth {
            return Err(self.trip(AbortReason::EvalDepth));
        }
        Ok(())
    }

    #[inline]
    pub fn exit_eval(&mut self) {
        self.eval_depth -= 1;
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_coverage::site_id;

    #[test]
    fn hits_accumulate_across_statements() {
        let mut ctx = ExecCtx::new();
        ctx.hit(site_id!());
        ctx.hit(site_id!());
        assert!(ctx.cov.map().edge_count() >= 2);
    }

    #[test]
    fn row_budget_trips_and_sticks() {
        let mut ctx = ExecCtx::new();
        ctx.limits.max_rows = 10;
        assert!(ctx.charge_rows(10).is_ok());
        assert!(ctx.charge_rows(1).is_err());
        assert_eq!(ctx.abort, Some(AbortReason::RowBudget));
        // A later depth trip must not overwrite the first reason.
        ctx.limits.max_eval_depth = 0;
        assert!(ctx.enter_eval().is_err());
        assert_eq!(ctx.abort, Some(AbortReason::RowBudget));
    }

    #[test]
    fn eval_depth_is_balanced() {
        let mut ctx = ExecCtx::new();
        ctx.limits.max_eval_depth = 2;
        assert!(ctx.enter_eval().is_ok());
        assert!(ctx.enter_eval().is_ok());
        assert!(ctx.enter_eval().is_err());
        ctx.exit_eval();
        ctx.exit_eval();
        ctx.exit_eval();
        assert_eq!(ctx.eval_depth, 0);
    }

    #[test]
    fn hit_idx_distinguishes_indices() {
        let mut a = ExecCtx::new();
        let mut b = ExecCtx::new();
        let base = site_id!();
        a.hit_idx(base, 1);
        b.hit_idx(base, 2);
        assert_ne!(a.cov.map().digest(), b.cov.map().digest());
    }
}
