//! The DBMS façade the fuzzers talk to: execute a test case, get back an
//! outcome plus an AFL-style coverage map.

use crate::bugs::{CrashReport, OracleState};
use crate::ctx::ExecCtx;
use crate::exec::Session;
use crate::limits::{AbortReason, Limits};
use crate::profile::Profile;
use crate::wal::Wal;
use lego_coverage::map::CovMap;
use lego_coverage::site_id;
use lego_sqlast::{Dialect, TestCase};
use std::path::Path;

/// Final outcome of executing one test case.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// All statements were attempted (individual semantic errors are
    /// recorded in [`ExecReport::errors`], as real fuzzing harnesses do).
    Ok,
    /// The script did not parse at all.
    ParseError(String),
    /// A planted memory-safety bug fired; the "server" died here.
    Crash(CrashReport),
    /// A per-case execution budget tripped (the deterministic analogue of an
    /// AFL timeout kill). The case must never be retained in a corpus.
    Aborted(AbortReason),
}

/// Everything observed while executing one test case.
pub struct ExecReport {
    pub outcome: Outcome,
    pub coverage: CovMap,
    pub statements_executed: usize,
    pub errors: Vec<String>,
    /// Statement indices of the entries in [`ExecReport::errors`], parallel
    /// to it: `stmt_errors[k]` is the 0-based position (within the executed
    /// prefix) of the statement that produced `errors[k]`. Conformance
    /// oracles need the per-statement mapping, not just the count.
    pub stmt_errors: Vec<usize>,
    /// Rows returned by the last query statement.
    pub last_rows: usize,
    /// Statements the binder/executor accepted (the semantic-validity
    /// numerator; `stmts_ok + stmts_err == statements_executed`).
    pub stmts_ok: usize,
    /// Statements the binder/executor rejected with a semantic error.
    pub stmts_err: usize,
}

impl ExecReport {
    pub fn crash(&self) -> Option<&CrashReport> {
        match &self.outcome {
            Outcome::Crash(c) => Some(c),
            _ => None,
        }
    }

    pub fn is_parse_error(&self) -> bool {
        matches!(self.outcome, Outcome::ParseError(_))
    }

    pub fn aborted(&self) -> Option<AbortReason> {
        match self.outcome {
            Outcome::Aborted(r) => Some(r),
            _ => None,
        }
    }

    /// Synthesize the report for a case whose execution *panicked* and was
    /// caught at the harness isolation boundary (`catch_unwind`). The panic
    /// becomes an ordinary deduplicatable crash finding: the stack is built
    /// from the panic message, so distinct panics dedup to distinct bugs and
    /// re-running the same case reproduces the same report. Coverage is
    /// empty — a panicked case is never retained as a seed.
    pub fn engine_panic(dialect: Dialect, message: &str) -> Self {
        let crash = CrashReport {
            bug_id: PANIC_BUG_ID,
            identifier: format!("{}-PANIC", dialect.name().to_ascii_uppercase()),
            bug_type: crate::bugs::BugType::Af,
            component: crate::profile::Component::Executor,
            dialect,
            stack: vec!["harness_catch_unwind".to_string(), format!("panic: {message}")],
        };
        ExecReport {
            outcome: Outcome::Crash(crash),
            coverage: CovMap::new(),
            statements_executed: 0,
            errors: vec![format!("engine panic: {message}")],
            stmt_errors: vec![0],
            last_rows: 0,
            stmts_ok: 0,
            stmts_err: 0,
        }
    }
}

/// Sentinel `bug_id` for crash reports synthesized from a caught engine
/// panic ([`ExecReport::engine_panic`]). Harness code must not re-execute
/// such cases for reduction — they would panic again.
pub const PANIC_BUG_ID: u32 = u32::MAX;

/// One simulated DBMS instance (fresh database + session).
///
/// Fuzzers get a fresh *state* per test case, mirroring AFL++'s forkserver
/// reset. Campaign loops keep one instance per worker and call [`Dbms::reset`]
/// between cases instead of constructing a new instance, which skips the
/// oracle-pattern derivation and reuses the session's allocations; a spare
/// [`CovMap`] can be handed back with [`Dbms::recycle`] so the per-case
/// 64 KiB coverage buffer is reused too. The instance stays poisoned once it
/// crashes (until the next `reset`).
pub struct Dbms {
    session: Session,
    poisoned: Option<CrashReport>,
    spare_map: Option<CovMap>,
    limits: Limits,
    wal: Option<Wal>,
}

impl Dbms {
    pub fn new(dialect: Dialect) -> Self {
        Self {
            session: Session::new(Profile::for_dialect(dialect)),
            poisoned: None,
            spare_map: None,
            limits: Limits::default(),
            wal: None,
        }
    }

    /// Override the per-case execution budgets applied to every subsequent
    /// execution (survives [`Dbms::reset`]).
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Reset to the fresh-instance state in place: empty catalog, default
    /// session, not poisoned, no WAL. Equivalent to `*self = Dbms::new(dialect)`
    /// but without re-deriving the bug oracle or dropping reusable allocations.
    pub fn reset(&mut self) {
        self.session.reset();
        self.poisoned = None;
        self.wal = None;
    }

    /// Attach a write-ahead log at `path` (truncating any existing file).
    /// Every subsequently executed statement is journaled and synced at
    /// commit boundaries; see [`crate::wal`].
    pub fn wal_attach(&mut self, path: &Path) -> std::io::Result<()> {
        self.wal = Some(Wal::create(path)?);
        Ok(())
    }

    /// Detach the WAL, leaving the file on disk as-is.
    pub fn wal_detach(&mut self) {
        self.wal = None;
    }

    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Simulate a crash of this instance: the WAL's unsynced pending tail
    /// is lost. The in-memory state is left untouched so oracles can still
    /// compute the expected post-recovery fingerprint from it.
    pub fn wal_crash(&mut self) {
        if let Some(wal) = self.wal.as_mut() {
            wal.crash();
        }
    }

    /// FNV-1a fingerprint of the *committed* database state: the catalog as
    /// of the last commit boundary (the transaction snapshot while a
    /// transaction is open, the live catalog otherwise). This is exactly the
    /// state a correct engine must reproduce by replaying its synced WAL, so
    /// it is the recovery oracle's comparison key. Deterministic: every
    /// catalog container is a `BTreeMap` and the hash walks the derived
    /// `Debug` rendering.
    pub fn durable_fingerprint(&self) -> u64 {
        use std::fmt::Write;
        struct Fnv(u64);
        impl std::fmt::Write for Fnv {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for b in s.bytes() {
                    self.0 ^= b as u64;
                    self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
                }
                Ok(())
            }
        }
        let committed = self.session.txn.as_ref().unwrap_or(&self.session.cat);
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        let _ = write!(h, "{committed:?}");
        h.0
    }

    /// Hand back a previously returned coverage map for reuse by the next
    /// execution.
    pub fn recycle(&mut self, map: CovMap) {
        self.spare_map = Some(map);
    }

    fn fresh_ctx(&mut self) -> ExecCtx {
        let mut ctx = match self.spare_map.take() {
            Some(map) => ExecCtx::reusing(map),
            None => ExecCtx::new(),
        };
        ctx.limits = self.limits;
        ctx
    }

    pub fn dialect(&self) -> Dialect {
        self.session.prof.dialect
    }

    pub fn session(&self) -> &Session {
        &self.session
    }

    fn oracle_state(&self) -> OracleState {
        OracleState {
            any_trigger: !self.session.cat.triggers.is_empty(),
            any_rule: !self.session.cat.rules.is_empty(),
            in_txn: self.session.in_txn(),
            any_nonempty_table: self.session.cat.total_rows() > 0,
            any_index: !self.session.cat.indexes.is_empty(),
            any_view: !self.session.cat.views.is_empty(),
        }
    }

    /// Execute an already-parsed test case.
    pub fn execute_case(&mut self, case: &TestCase) -> ExecReport {
        let mut ctx = self.fresh_ctx();
        if let Some(crash) = &self.poisoned {
            return ExecReport {
                outcome: Outcome::Crash(crash.clone()),
                coverage: ctx.cov.into_map(),
                statements_executed: 0,
                errors: vec!["server is down".into()],
                stmt_errors: vec![0],
                last_rows: 0,
                stmts_ok: 0,
                stmts_err: 0,
            };
        }
        let mut errors = Vec::new();
        let mut stmt_errors = Vec::new();
        let mut executed = 0usize;
        let mut ok_count = 0usize;
        for stmt in &case.statements {
            // Every statement re-enters through the same command dispatcher,
            // so the AFL edge chain re-synchronizes at the statement
            // boundary; cross-statement effects flow through session state
            // and the explicit interaction sites instead of hash noise.
            ctx.cov.reset_edge_chain();
            let kind = stmt.kind();
            ctx.trace.push(kind);
            match self.session.exec_statement(&mut ctx, stmt) {
                Ok(_) => ok_count += 1,
                Err(e) => {
                    errors.push(e);
                    stmt_errors.push(executed);
                }
            }
            executed += 1;
            if let Some(wal) = self.wal.as_mut() {
                // Journal verbatim (Ok and Err alike — failed statements can
                // leave partial state); durable only at commit boundaries.
                // A crashing or aborting statement leaves its record pending,
                // exactly like a crash before fsync.
                wal.append(&format!("{stmt};"));
                if ctx.abort.is_none() && ctx.crash.is_none() && !self.session.in_txn() {
                    wal.sync();
                }
            }
            if let Some(reason) = ctx.abort {
                // A budget tripped: the harness kills the case (AFL timeout
                // analogue). The server is *not* poisoned — the next case
                // gets a reset instance as usual.
                return ExecReport {
                    outcome: Outcome::Aborted(reason),
                    last_rows: ctx.last_row_count,
                    coverage: ctx.cov.into_map(),
                    statements_executed: executed,
                    stmts_ok: ok_count,
                    stmts_err: executed - ok_count,
                    errors,
                    stmt_errors,
                };
            }
            if ctx.crash.is_none() {
                // Pattern-based oracle check on the observed type sequence.
                let st = self.oracle_state();
                if let Some(crash) = self.session.oracle.check(&ctx.trace, stmt, &st) {
                    ctx.crash = Some(crash);
                }
            }
            if let Some(crash) = ctx.crash.clone() {
                self.poisoned = Some(crash.clone());
                return ExecReport {
                    outcome: Outcome::Crash(crash),
                    last_rows: ctx.last_row_count,
                    coverage: ctx.cov.into_map(),
                    statements_executed: executed,
                    stmts_ok: ok_count,
                    stmts_err: executed - ok_count,
                    errors,
                    stmt_errors,
                };
            }
        }
        ExecReport {
            outcome: Outcome::Ok,
            last_rows: ctx.last_row_count,
            coverage: ctx.cov.into_map(),
            statements_executed: executed,
            stmts_ok: ok_count,
            stmts_err: executed - ok_count,
            errors,
            stmt_errors,
        }
    }

    /// Execute a read-only query against the current database state,
    /// outside the fuzzing pipeline: no coverage accounting, no trace, no
    /// crash-oracle check. This is the oracle layer's window into actual
    /// result sets (the normal execution path only reports row counts).
    pub fn run_query(
        &mut self,
        q: &lego_sqlast::ast::Query,
    ) -> Result<crate::query::ResultSet, String> {
        if self.poisoned.is_some() {
            return Err("server is down".into());
        }
        let mut ctx = ExecCtx::new();
        self.session.run_query(&mut ctx, q)
    }

    /// Parse and execute a SQL script.
    pub fn execute_script(&mut self, sql: &str) -> ExecReport {
        match lego_sqlparser::parse_script(sql) {
            Ok(case) => self.execute_case(&case),
            Err(e) => {
                // Parse failures still exercise parser branches: one site per
                // error-message bucket, so fuzzers get parser coverage too.
                let mut ctx = self.fresh_ctx();
                let mut h: u64 = 0;
                for b in e.message.bytes().take(24) {
                    h = h.wrapping_mul(31).wrapping_add(b as u64);
                }
                ctx.hit_idx(site_id!(), h % 64);
                ExecReport {
                    outcome: Outcome::ParseError(e.to_string()),
                    coverage: ctx.cov.into_map(),
                    statements_executed: 0,
                    errors: vec![e.to_string()],
                    stmt_errors: vec![0],
                    last_rows: 0,
                    stmts_ok: 0,
                    stmts_err: 0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(d: Dialect) -> Dbms {
        Dbms::new(d)
    }

    #[test]
    fn figure_1_script_executes_cleanly() {
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script(
            "CREATE TABLE t1(v1 INT, v2 INT);\n\
             INSERT INTO t1 VALUES(1, 1);\n\
             INSERT INTO t1 VALUES(2, 1);\n\
             SELECT * FROM t1 ORDER BY v1;\n\
             SELECT v2 FROM t1 WHERE v1=1;",
        );
        assert!(matches!(r.outcome, Outcome::Ok), "{:?}", r.errors);
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(r.statements_executed, 5);
        assert_eq!(r.last_rows, 1);
        assert!(r.coverage.edge_count() > 12);
    }

    #[test]
    fn reset_matches_fresh_instance() {
        // A reset + recycled-map instance must behave byte-identically to a
        // brand-new one: same catalog visibility, same coverage digest, and
        // poisoning must not survive the reset.
        let crash_script = "CREATE TABLE v0( v4 INT, v3 INT UNIQUE, v2 INT , v1 INT UNIQUE ) ;\n\
             CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY COMPRESSION;\n\
             COPY ( SELECT 32 EXCEPT SELECT v3 + 16 FROM v0 ) TO STDOUT CSV HEADER ;\n\
             WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = - - - 48;";
        let probe = "CREATE TABLE t (a INT);\nINSERT INTO t VALUES(1);\nSELECT * FROM t;";

        let mut reused = fresh(Dialect::Postgres);
        let r = reused.execute_script(crash_script);
        assert!(r.crash().is_some());
        reused.recycle(r.coverage);
        reused.reset();

        let r_reused = reused.execute_script(probe);
        let r_fresh = fresh(Dialect::Postgres).execute_script(probe);
        assert!(matches!(r_reused.outcome, Outcome::Ok), "{:?}", r_reused.errors);
        assert_eq!(r_reused.errors, r_fresh.errors);
        assert_eq!(r_reused.statements_executed, r_fresh.statements_executed);
        assert_eq!(r_reused.last_rows, r_fresh.last_rows);
        assert_eq!(r_reused.coverage.digest(), r_fresh.coverage.digest());
    }

    #[test]
    fn figure_2_order_sensitivity() {
        // Q1: insert before select -> sorted data; Q2: select before insert
        // -> empty result. Coverage must differ (the whole premise of the
        // paper).
        let q1 = "CREATE TABLE t1 (a INT, b VARCHAR(100));\n\
                  INSERT INTO t1 VALUES(1,'name1');\n\
                  INSERT INTO t1 VALUES(3,'name1');\n\
                  SELECT * FROM t1 ORDER BY a DESC;";
        let q2 = "CREATE TABLE t1 (a INT, b VARCHAR(100));\n\
                  SELECT * FROM t1 ORDER BY a DESC;\n\
                  INSERT INTO t1 VALUES(1,'name1');\n\
                  INSERT INTO t1 VALUES(3,'name1');";
        let r1 = fresh(Dialect::Postgres).execute_script(q1);
        let r2 = fresh(Dialect::Postgres).execute_script(q2);
        assert!(matches!(r1.outcome, Outcome::Ok));
        assert!(matches!(r2.outcome, Outcome::Ok));
        assert_ne!(r1.coverage.digest(), r2.coverage.digest());
    }

    #[test]
    fn case_study_script_crashes_postgres() {
        // Figure 7 verbatim.
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script(
            "CREATE TABLE v0( v4 INT, v3 INT UNIQUE, v2 INT , v1 INT UNIQUE ) ;\n\
             CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY COMPRESSION;\n\
             COPY ( SELECT 32 EXCEPT SELECT v3 + 16 FROM v0 ) TO STDOUT CSV HEADER ;\n\
             WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = - - - 48;",
        );
        let crash = r.crash().expect("the case-study sequence must crash");
        assert_eq!(crash.identifier, "BUG #17097");
        assert!(crash.stack.iter().any(|f| f.contains("replace_empty_jointree")));
    }

    #[test]
    fn case_study_without_the_rule_does_not_crash() {
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script(
            "CREATE TABLE v0( v4 INT, v3 INT UNIQUE, v2 INT , v1 INT UNIQUE ) ;\n\
             COPY ( SELECT 32 EXCEPT SELECT v3 + 16 FROM v0 ) TO STDOUT CSV HEADER ;\n\
             WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = - - - 48;",
        );
        assert!(r.crash().is_none());
    }

    #[test]
    fn cve_2021_35643_sequence_crashes_mysql() {
        let mut db = fresh(Dialect::MySql);
        let r = db.execute_script(
            "CREATE TABLE v0 (v1 YEAR);\n\
             INSERT IGNORE INTO v0 VALUES (NULL), (22471185.0), (2021);\n\
             CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0;\n\
             SELECT LEAD (v1) OVER (ORDER BY v1) AS v1 FROM v0;",
        );
        let crash = r.crash().expect("CVE-2021-35643 sequence must crash");
        assert_eq!(crash.identifier, "CVE-2021-35643");
    }

    #[test]
    fn crashed_server_stays_down() {
        let mut db = fresh(Dialect::MySql);
        db.execute_script(
            "CREATE TABLE v0 (v1 INT);\n\
             CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0;\n\
             SELECT RANK() OVER (ORDER BY v1) FROM v0;",
        );
        let r = db.execute_script("SELECT 1;");
        assert!(r.crash().is_some());
        assert_eq!(r.statements_executed, 0);
    }

    #[test]
    fn row_budget_aborts_without_poisoning() {
        let mut db = fresh(Dialect::Postgres);
        db.set_limits(Limits { max_rows: 4, ..Limits::default() });
        let r = db.execute_script(
            "CREATE TABLE t (a INT);\n\
             INSERT INTO t VALUES (1),(2),(3),(4),(5),(6);\n\
             SELECT 1;",
        );
        assert_eq!(r.aborted(), Some(AbortReason::RowBudget));
        assert!(r.statements_executed < 3, "aborts before the script ends");
        // Not poisoned: after the usual between-case reset the instance works.
        db.reset();
        db.set_limits(Limits::default());
        let r2 = db.execute_script("SELECT 1;");
        assert!(matches!(r2.outcome, Outcome::Ok));
    }

    #[test]
    fn statement_budget_aborts_long_scripts() {
        let mut db = fresh(Dialect::Postgres);
        db.set_limits(Limits { max_statements: 2, ..Limits::default() });
        let r = db.execute_script("SELECT 1;\nSELECT 2;\nSELECT 3;");
        assert_eq!(r.aborted(), Some(AbortReason::StatementBudget));
    }

    #[test]
    fn eval_depth_budget_aborts_deep_expressions() {
        let mut db = fresh(Dialect::Postgres);
        db.set_limits(Limits { max_eval_depth: 4, ..Limits::default() });
        let r = db.execute_script("SELECT 1+1+1+1+1+1+1+1+1+1;");
        assert_eq!(r.aborted(), Some(AbortReason::EvalDepth));
    }

    #[test]
    fn default_limits_do_not_fire_on_normal_scripts() {
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script(
            "CREATE TABLE t (a INT, b INT);\n\
             INSERT INTO t VALUES (1, 2), (3, 4);\n\
             SELECT t.a FROM t JOIN t AS u ON 1=1;",
        );
        assert!(matches!(r.outcome, Outcome::Ok), "{:?}", r.errors);
    }

    #[test]
    fn engine_panic_report_is_a_dedupable_crash() {
        let a = ExecReport::engine_panic(Dialect::Postgres, "boom at stmt 3");
        let b = ExecReport::engine_panic(Dialect::Postgres, "boom at stmt 3");
        let c = ExecReport::engine_panic(Dialect::Postgres, "different panic");
        let (ca, cb, cc) = (a.crash().unwrap(), b.crash().unwrap(), c.crash().unwrap());
        assert_eq!(ca.bug_id, PANIC_BUG_ID);
        assert_eq!(ca.stack_hash(), cb.stack_hash(), "same panic dedups");
        assert_ne!(ca.stack_hash(), cc.stack_hash(), "distinct panics are distinct bugs");
        assert_eq!(a.statements_executed, 0);
        assert!(a.aborted().is_none());
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script("FROBNICATE;");
        assert!(r.is_parse_error());
        assert!(r.coverage.edge_count() >= 1);
        // The instance is still usable.
        let r2 = db.execute_script("SELECT 1;");
        assert!(matches!(r2.outcome, Outcome::Ok));
    }

    #[test]
    fn semantic_errors_do_not_stop_the_script() {
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script(
            "SELECT * FROM missing;\n\
             CREATE TABLE t (a INT);\n\
             INSERT INTO t VALUES (1);",
        );
        assert!(matches!(r.outcome, Outcome::Ok));
        assert_eq!(r.errors.len(), 1);
        assert_eq!(r.statements_executed, 3);
        assert_eq!(db.session().cat.total_rows(), 1);
    }

    #[test]
    fn unsupported_statements_error_per_dialect() {
        let mut db = fresh(Dialect::MySql);
        let r = db.execute_script("NOTIFY ch;");
        // MySQL has no NOTIFY: it parses (union grammar) but errors.
        assert!(matches!(r.outcome, Outcome::Ok));
        assert_eq!(r.errors.len(), 1);
        assert!(r.errors[0].contains("not supported"));
    }

    #[test]
    fn transactions_roll_back() {
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script(
            "CREATE TABLE t (a INT);\n\
             BEGIN;\n\
             INSERT INTO t VALUES (1);\n\
             ROLLBACK;",
        );
        assert!(matches!(r.outcome, Outcome::Ok), "{:?}", r.errors);
        assert!(r.errors.is_empty());
        assert_eq!(db.session().cat.total_rows(), 0);
    }

    #[test]
    fn savepoints_partial_rollback() {
        let mut db = fresh(Dialect::Postgres);
        db.execute_script(
            "CREATE TABLE t (a INT);\n\
             BEGIN;\n\
             INSERT INTO t VALUES (1);\n\
             SAVEPOINT s1;\n\
             INSERT INTO t VALUES (2);\n\
             ROLLBACK TO SAVEPOINT s1;\n\
             COMMIT;",
        );
        assert_eq!(db.session().cat.total_rows(), 1);
    }

    #[test]
    fn triggers_fire_and_cascade() {
        let mut db = fresh(Dialect::MariaDb);
        let r = db.execute_script(
            "CREATE TABLE a (x INT);\n\
             CREATE TABLE b (y INT);\n\
             CREATE TRIGGER tg AFTER INSERT ON a FOR EACH ROW INSERT INTO b VALUES (1);\n\
             INSERT INTO a VALUES (10), (20);",
        );
        assert!(matches!(r.outcome, Outcome::Ok), "{:?}", r.errors);
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(db.session().cat.table("b").unwrap().rows.len(), 2);
    }

    #[test]
    fn generic_ddl_is_order_sensitive() {
        // ALTER before CREATE errors; after CREATE succeeds — and covers
        // differently, which is what affinity analysis latches onto.
        let r1 = fresh(Dialect::Postgres).execute_script("ALTER SEQUENCE s1;");
        let r2 = fresh(Dialect::Postgres).execute_script("CREATE SEQUENCE s1; ALTER SEQUENCE s1;");
        assert_eq!(r1.errors.len(), 1);
        assert!(r2.errors.is_empty());
        assert_ne!(r1.coverage.digest(), r2.coverage.digest());
    }

    #[test]
    fn views_expand_on_read() {
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script(
            "CREATE TABLE t (a INT);\n\
             INSERT INTO t VALUES (1), (2);\n\
             CREATE VIEW w AS SELECT a FROM t WHERE a > 1;\n\
             SELECT * FROM w;",
        );
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(r.last_rows, 1);
    }

    #[test]
    fn grant_then_set_role_then_select_is_a_meaningful_sequence() {
        let mut db = fresh(Dialect::Postgres);
        let r = db.execute_script(
            "CREATE TABLE t (a INT);\n\
             GRANT SELECT ON t TO alice;\n\
             SET ROLE alice;\n\
             SELECT * FROM t;",
        );
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        // Without the GRANT the SELECT fails.
        let mut db2 = fresh(Dialect::Postgres);
        let r2 = db2.execute_script(
            "CREATE TABLE t (a INT);\n\
             SET ROLE alice;\n\
             SELECT * FROM t;",
        );
        assert_eq!(r2.errors.len(), 1);
    }

    #[test]
    fn comdb2_rejects_windows_and_triggers() {
        let mut db = fresh(Dialect::Comdb2);
        let r = db.execute_script(
            "CREATE TABLE t (a INT);\n\
             INSERT INTO t VALUES (1);\n\
             SELECT RANK() OVER (ORDER BY a) FROM t;",
        );
        assert_eq!(r.errors.len(), 1);
    }
}
