//! Write-ahead log: a durable journal of executed statements.
//!
//! The engine is in-memory, so "durability" is simulated: every statement a
//! case executes is appended to an in-memory pending buffer, and the buffer
//! is flushed to the WAL file at **commit boundaries** (whenever the session
//! is not inside an open transaction after the statement). A simulated crash
//! loses exactly the unsynced pending tail — the open-transaction suffix —
//! which is precisely what a real engine may lose.
//!
//! The journal is *verbatim*: statements are logged whether they succeeded
//! or failed, including `BEGIN`/`COMMIT`/`ROLLBACK` themselves. This is the
//! soundness-critical choice for the recovery oracle: failed statements can
//! leave partial catalog effects (multi-row `INSERT` errors mid-loop), and
//! session state set inside a rolled-back transaction survives the rollback,
//! so an Ok-only or committed-only log could not reproduce the live state
//! and would produce false divergences.
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic record*
//! magic  := "LEGOWAL1"                      (8 bytes)
//! record := len:u32le crc:u32le sql:bytes   (len = sql byte length,
//!                                            crc  = CRC-32/IEEE of sql)
//! ```
//!
//! The format is pinned by golden fixtures under `tests/golden/wal/`; any
//! change requires regenerating them (and, for compatibility, a migration —
//! see the engine-snapshot v1→v2 precedent).

use crate::faults;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a LEGO WAL, version 1.
pub const WAL_MAGIC: [u8; 8] = *b"LEGOWAL1";

/// Bytes of `len` + `crc` preceding each record's payload.
pub const RECORD_HEADER_LEN: usize = 8;

/// Upper bound on a single record's payload; longer lengths in a header are
/// treated as corruption by the reader.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the same
/// polynomial as zlib's `crc32`. Hand-rolled because the workspace vendors
/// its dependencies; bitwise is plenty fast for WAL-record sizes.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encode one statement as a length-prefixed, checksummed WAL record.
pub fn encode_record(sql: &str) -> Vec<u8> {
    let bytes = sql.as_bytes();
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(bytes).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Why a record failed to decode. The reader treats every variant the same
/// way — the log's valid prefix ends here — but tests distinguish them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Zero bytes remain: a clean end, not corruption.
    Clean,
    /// Fewer bytes remain than a header, or than the header's length claims.
    Truncated,
    /// The header's length field exceeds [`MAX_RECORD_LEN`].
    BadLength,
    /// The payload's CRC does not match the header.
    BadChecksum,
    /// The payload is not valid UTF-8.
    BadUtf8,
}

/// Decode the record at the start of `buf`. Returns the statement text and
/// the total bytes consumed (header + payload).
pub fn decode_record(buf: &[u8]) -> Result<(String, usize), DecodeError> {
    if buf.is_empty() {
        return Err(DecodeError::Clean);
    }
    if buf.len() < RECORD_HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_RECORD_LEN {
        return Err(DecodeError::BadLength);
    }
    let len = len as usize;
    if buf.len() < RECORD_HEADER_LEN + len {
        return Err(DecodeError::Truncated);
    }
    let payload = &buf[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
    if crc32(payload) != crc {
        return Err(DecodeError::BadChecksum);
    }
    match std::str::from_utf8(payload) {
        Ok(sql) => Ok((sql.to_string(), RECORD_HEADER_LEN + len)),
        Err(_) => Err(DecodeError::BadUtf8),
    }
}

/// The write-ahead log attached to one [`crate::Dbms`] instance.
///
/// `append` buffers; `sync` makes the buffered records durable (writes their
/// bytes and moves them to the synced list). A simulated crash simply stops
/// using the instance: unsynced records were never written, so the file is
/// already the post-crash disk image.
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Appended but not yet synced (lost on crash).
    pending: Vec<String>,
    /// Records the engine considers durable, in append order.
    synced: Vec<String>,
    /// Records whose bytes actually reached the file. Diverges from
    /// `synced` only under the injected torn-write fault.
    written: Vec<String>,
    /// `(offset, len)` of each written record within the file.
    written_spans: Vec<(u64, u64)>,
    /// Bytes written so far (magic + records).
    len: u64,
    /// First write error, if any; the log stops writing once set.
    io_error: Option<String>,
}

impl Wal {
    /// Create (or truncate) the WAL file at `path` and write the magic.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.flush()?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            pending: Vec::new(),
            synced: Vec::new(),
            written: Vec::new(),
            written_spans: Vec::new(),
            len: WAL_MAGIC.len() as u64,
            io_error: None,
        })
    }

    /// Buffer one executed statement. Not durable until [`Wal::sync`].
    pub fn append(&mut self, sql: &str) {
        self.pending.push(sql.to_string());
    }

    /// Flush the pending buffer: write each record's bytes and mark it
    /// synced. Under the injected torn-write fault
    /// ([`faults::set_wal_drops_last_record`]), the final pending record is
    /// marked synced but its bytes are silently dropped — the lost-write
    /// bug shape the recovery oracle exists to catch.
    pub fn sync(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let drop_last = faults::wal_drops_last_record();
        let n = self.pending.len();
        for (i, sql) in std::mem::take(&mut self.pending).into_iter().enumerate() {
            let lose_bytes = drop_last && i + 1 == n;
            if !lose_bytes && self.io_error.is_none() {
                let rec = encode_record(&sql);
                match self.file.write_all(&rec).and_then(|_| self.file.flush()) {
                    Ok(()) => {
                        self.written_spans.push((self.len, rec.len() as u64));
                        self.len += rec.len() as u64;
                        self.written.push(sql.clone());
                    }
                    Err(e) => self.io_error = Some(e.to_string()),
                }
            }
            self.synced.push(sql);
        }
    }

    /// Simulate a crash: the unsynced pending tail is lost.
    pub fn crash(&mut self) {
        self.pending.clear();
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records the engine believes are durable.
    pub fn synced_records(&self) -> &[String] {
        &self.synced
    }

    /// Records whose bytes are actually in the file (differs from
    /// [`Wal::synced_records`] only under the injected fault).
    pub fn written_records(&self) -> &[String] {
        &self.written
    }

    /// `(offset, len)` of the last record physically written, if any — the
    /// span the torn-write variant truncates inside.
    pub fn last_written_span(&self) -> Option<(u64, u64)> {
        self.written_spans.last().copied()
    }

    /// Unsynced statements currently buffered.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Bytes written so far (magic + records).
    pub fn file_len(&self) -> u64 {
        self.len
    }

    /// First write error, if the log hit one.
    pub fn io_error(&self) -> Option<&str> {
        self.io_error.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_layout_is_len_crc_payload() {
        let rec = encode_record("SELECT 1;");
        assert_eq!(&rec[..4], &(9u32).to_le_bytes());
        assert_eq!(&rec[4..8], &crc32(b"SELECT 1;").to_le_bytes());
        assert_eq!(&rec[8..], b"SELECT 1;");
        let (sql, used) = decode_record(&rec).unwrap();
        assert_eq!(sql, "SELECT 1;");
        assert_eq!(used, rec.len());
    }

    #[test]
    fn decode_rejects_length_beyond_cap() {
        let mut rec = encode_record("SELECT 1;");
        rec[..4].copy_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        assert_eq!(decode_record(&rec), Err(DecodeError::BadLength));
    }
}
