#![forbid(unsafe_code)]

//! `lego-dbms` — the simulated DBMS substrate for the LEGO reproduction.
//!
//! A real (small) relational engine — parser (via `lego-sqlparser`), binder,
//! rewriter (views / PostgreSQL rules / triggers), a planner-shaped read
//! path, a volcano-style executor, in-memory storage with indexes and
//! constraints, transactions with savepoints, access control, and the long
//! tail of session statements — compiled into four dialect profiles
//! (PostgreSQL, MySQL, MariaDB, Comdb2).
//!
//! Two properties make it a faithful stand-in for the paper's targets:
//!
//! 1. **Order-sensitive coverage.** Every component self-instruments with
//!    AFL-style edge coverage ([`lego_coverage`]), and a large share of
//!    branches only execute when earlier statements set up state (triggers,
//!    rules, views, grants, transactions, cursors, prepared statements…).
//!    SQL Type Sequences therefore genuinely matter to coverage, which is
//!    the signal LEGO exploits.
//! 2. **A planted-bug oracle** ([`bugs`]) with one synthetic memory-safety
//!    bug per Table I entry of the paper (102 bugs, 22 CVE identifiers),
//!    each triggered by a type-sequence pattern plus optional structural and
//!    state predicates.

//! ```
//! use lego_dbms::{Dbms, Outcome};
//! use lego_sqlast::Dialect;
//!
//! let mut db = Dbms::new(Dialect::Postgres);
//! let report = db.execute_script(
//!     "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); SELECT * FROM t;",
//! );
//! assert!(matches!(report.outcome, Outcome::Ok));
//! assert_eq!(report.last_rows, 2);
//! assert!(report.coverage.edge_count() > 0);
//! ```

pub mod bugs;
pub mod catalog;
pub mod ctx;
pub mod engine;
pub mod eval;
pub mod exec;
pub mod faults;
pub mod limits;
pub mod profile;
pub mod query;
pub mod recovery;
pub mod value;
pub mod wal;

pub use bugs::{BugSpec, BugType, CrashReport};
pub use engine::{Dbms, ExecReport, Outcome, PANIC_BUG_ID};
pub use limits::{AbortReason, Limits};
pub use profile::{Component, Profile};
pub use query::ResultSet;
pub use recovery::RecoveredLog;
pub use value::{Row, Value};
pub use wal::Wal;

/// Commonly used items.
pub mod prelude {
    pub use crate::bugs::{BugType, CrashReport};
    pub use crate::engine::{Dbms, ExecReport, Outcome};
    pub use crate::profile::Component;
    pub use crate::value::Value;
    pub use lego_sqlast::Dialect;
}
