//! System catalog: tables, views, triggers, rules, indexes, generic objects,
//! users and privileges.

use crate::value::{Row, Value};
use lego_sqlast::ast::{CreateRule, CreateTrigger, Query};
use lego_sqlast::expr::{DataType, Expr};
use lego_sqlast::kind::ObjectKind;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
pub struct ColumnMeta {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
    pub unique: bool,
    pub primary_key: bool,
    pub default: Option<Expr>,
    pub check: Option<Expr>,
    pub references: Option<(String, Option<String>)>,
}

#[derive(Clone, Debug)]
pub struct IndexMeta {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
}

#[derive(Clone, Debug)]
pub struct TableMeta {
    pub name: String,
    pub temporary: bool,
    pub columns: Vec<ColumnMeta>,
    /// Table-level CHECK expressions.
    pub checks: Vec<Expr>,
    /// Table-level FOREIGN KEY constraints: (cols, ref table, ref cols).
    pub foreign_keys: Vec<(Vec<String>, String, Vec<String>)>,
    pub rows: Vec<Row>,
    /// ANALYZE has run since the last write (drives planner branches).
    pub analyzed: bool,
    /// Clustered by which column (CLUSTER).
    pub clustered: Option<String>,
}

impl TableMeta {
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

#[derive(Clone, Debug)]
pub struct ViewMeta {
    pub name: String,
    pub materialized: bool,
    pub query: Query,
    /// Materialized contents (refreshed by REFRESH MATERIALIZED VIEW).
    pub snapshot: Option<(Vec<String>, Vec<Row>)>,
}

#[derive(Clone, Debug)]
pub struct TriggerMeta {
    pub def: CreateTrigger,
}

#[derive(Clone, Debug)]
pub struct RuleMeta {
    pub def: CreateRule,
}

/// Catalog entry for the statement long tail (sequences, extensions, …).
#[derive(Clone, Debug)]
pub struct GenericObject {
    pub kind: ObjectKind,
    pub name: String,
    /// Bumped by ALTER; lets repeated DDL hit different branches.
    pub version: u32,
}

#[derive(Clone, Debug, Default)]
pub struct UserMeta {
    /// `privileges[table]` = set of privilege names (SELECT, INSERT, ALL, …).
    pub privileges: BTreeMap<String, Vec<String>>,
}

/// The whole database state. Cloned wholesale for transaction snapshots —
/// fuzzing databases stay tiny, so this is cheaper than undo logging.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    pub tables: BTreeMap<String, TableMeta>,
    pub views: BTreeMap<String, ViewMeta>,
    pub indexes: BTreeMap<String, IndexMeta>,
    pub triggers: BTreeMap<String, TriggerMeta>,
    pub rules: BTreeMap<String, RuleMeta>,
    pub generic: BTreeMap<(ObjectKind, String), GenericObject>,
    pub users: BTreeMap<String, UserMeta>,
    pub sequences_values: BTreeMap<String, i64>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every object, returning to the freshly-initialized state without
    /// replacing the catalog value itself.
    pub fn clear(&mut self) {
        self.tables.clear();
        self.views.clear();
        self.indexes.clear();
        self.triggers.clear();
        self.rules.clear();
        self.generic.clear();
        self.users.clear();
        self.sequences_values.clear();
    }

    fn norm(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(&Self::norm(name))
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut TableMeta> {
        self.tables.get_mut(&Self::norm(name))
    }

    pub fn add_table(&mut self, meta: TableMeta) -> Result<(), String> {
        let key = Self::norm(&meta.name);
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(format!("relation \"{}\" already exists", meta.name));
        }
        self.tables.insert(key, meta);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<TableMeta, String> {
        let key = Self::norm(name);
        let meta =
            self.tables.remove(&key).ok_or_else(|| format!("table \"{name}\" does not exist"))?;
        self.indexes.retain(|_, ix| !ix.table.eq_ignore_ascii_case(name));
        self.triggers.retain(|_, t| !t.def.table.eq_ignore_ascii_case(name));
        self.rules.retain(|_, r| !r.def.table.eq_ignore_ascii_case(name));
        Ok(meta)
    }

    pub fn view(&self, name: &str) -> Option<&ViewMeta> {
        self.views.get(&Self::norm(name))
    }

    pub fn view_mut(&mut self, name: &str) -> Option<&mut ViewMeta> {
        self.views.get_mut(&Self::norm(name))
    }

    pub fn add_view(&mut self, meta: ViewMeta, or_replace: bool) -> Result<(), String> {
        let key = Self::norm(&meta.name);
        if self.tables.contains_key(&key) {
            return Err(format!("relation \"{}\" already exists", meta.name));
        }
        if self.views.contains_key(&key) && !or_replace {
            return Err(format!("view \"{}\" already exists", meta.name));
        }
        self.views.insert(key, meta);
        Ok(())
    }

    pub fn indexes_on(&self, table: &str) -> Vec<&IndexMeta> {
        self.indexes.values().filter(|ix| ix.table.eq_ignore_ascii_case(table)).collect()
    }

    pub fn triggers_on(&self, table: &str, event: lego_sqlast::ast::DmlEvent) -> Vec<&TriggerMeta> {
        self.triggers
            .values()
            .filter(|t| t.def.table.eq_ignore_ascii_case(table) && t.def.event == event)
            .collect()
    }

    pub fn rules_on(&self, table: &str, event: lego_sqlast::ast::DmlEvent) -> Vec<&RuleMeta> {
        self.rules
            .values()
            .filter(|r| r.def.table.eq_ignore_ascii_case(table) && r.def.event == event)
            .collect()
    }

    pub fn user_mut(&mut self, name: &str) -> &mut UserMeta {
        self.users.entry(Self::norm(name)).or_default()
    }

    pub fn has_privilege(&self, user: &str, table: &str, privilege: &str) -> bool {
        self.users
            .get(&Self::norm(user))
            .and_then(|u| u.privileges.get(&Self::norm(table)))
            .map(|ps| {
                ps.iter()
                    .any(|p| p.eq_ignore_ascii_case(privilege) || p.eq_ignore_ascii_case("ALL"))
            })
            .unwrap_or(false)
    }

    /// Total number of stored rows across tables (used by SHOW/engine stats).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }
}

/// Helper to build a `Value` default for a column with no DEFAULT expression.
pub fn null_default() -> Value {
    Value::Null
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlast::expr::DataType;

    fn table(name: &str) -> TableMeta {
        TableMeta {
            name: name.into(),
            temporary: false,
            columns: vec![ColumnMeta {
                name: "a".into(),
                ty: DataType::Int,
                not_null: false,
                unique: false,
                primary_key: false,
                default: None,
                check: None,
                references: None,
            }],
            checks: vec![],
            foreign_keys: vec![],
            rows: vec![],
            analyzed: false,
            clustered: None,
        }
    }

    #[test]
    fn add_and_lookup_is_case_insensitive() {
        let mut c = Catalog::new();
        c.add_table(table("T1")).unwrap();
        assert!(c.table("t1").is_some());
        assert!(c.table("T1").is_some());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.add_table(table("t")).unwrap();
        assert!(c.add_table(table("T")).is_err());
    }

    #[test]
    fn drop_table_cascades_indexes() {
        let mut c = Catalog::new();
        c.add_table(table("t")).unwrap();
        c.indexes.insert(
            "i1".into(),
            IndexMeta {
                name: "i1".into(),
                table: "t".into(),
                columns: vec!["a".into()],
                unique: false,
            },
        );
        c.drop_table("t").unwrap();
        assert!(c.indexes.is_empty());
    }

    #[test]
    fn privileges() {
        let mut c = Catalog::new();
        c.user_mut("alice").privileges.insert("t".into(), vec!["SELECT".into()]);
        assert!(c.has_privilege("alice", "t", "select"));
        assert!(!c.has_privilege("alice", "t", "INSERT"));
        c.user_mut("bob").privileges.insert("t".into(), vec!["ALL".into()]);
        assert!(c.has_privilege("bob", "t", "DELETE"));
    }
}
