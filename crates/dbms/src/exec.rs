//! The write path and statement dispatcher: DDL, DML with triggers and
//! rules, transactions, access control, session state machines.

use crate::bugs::{BugOracle, CrashReport, Special};
use crate::catalog::{
    Catalog, ColumnMeta, GenericObject, IndexMeta, RuleMeta, TableMeta, TriggerMeta, ViewMeta,
};
use crate::ctx::ExecCtx;
use crate::eval::{eval, Bindings, EvalEnv};
use crate::profile::Profile;
use crate::query::{run_query, QueryEnv, ResultSet};
use crate::value::{Row, Value};
use lego_coverage::{cov, site_id};
use lego_sqlast::ast::*;
use lego_sqlast::expr::DataType;
use lego_sqlast::kind::{DdlVerb, ObjectKind, StandaloneKind, StmtKind};
use std::collections::{BTreeMap, BTreeSet};

// Work bounds: real AFL harnesses kill executions that exceed a time budget
// (the paper's SQUIRREL anecdote: one 945-statement seed hung it for 23
// minutes). We bound data volume instead, which bounds wall time.
const MAX_TABLE_ROWS: usize = 1024;
const MAX_TRIGGER_DEPTH: usize = 4;
const MAX_TRIGGER_FIRES: usize = 8;

/// One client session against one database.
pub struct Session {
    pub cat: Catalog,
    pub prof: Profile,
    pub user: String,
    pub settings: BTreeMap<String, String>,
    /// Transaction snapshot (whole-catalog copy; tiny DBs).
    pub txn: Option<Catalog>,
    pub savepoints: Vec<(String, Catalog)>,
    pub listening: BTreeSet<String>,
    pub notifications: Vec<String>,
    pub locks: BTreeMap<String, String>,
    pub cursors: BTreeSet<String>,
    pub prepared: BTreeSet<String>,
    pub prepared_txns: BTreeSet<String>,
    pub xa_active: bool,
    pub handler_open: bool,
    pub current_db: String,
    /// Kinds of the recently executed top-level statements: shared session
    /// state (plan cache, pending invalidations, buffer status) makes the
    /// execution path of a statement depend on what ran before it.
    pub recent_kinds: Vec<StmtKind>,
    pub oracle: BugOracle,
}

impl Session {
    pub fn new(prof: Profile) -> Self {
        Session {
            cat: Catalog::new(),
            prof,
            user: "admin".into(),
            settings: BTreeMap::new(),
            txn: None,
            savepoints: Vec::new(),
            listening: BTreeSet::new(),
            notifications: Vec::new(),
            locks: BTreeMap::new(),
            cursors: BTreeSet::new(),
            prepared: BTreeSet::new(),
            prepared_txns: BTreeSet::new(),
            xa_active: false,
            handler_open: false,
            current_db: "main".into(),
            recent_kinds: Vec::new(),
            oracle: BugOracle::new(prof.dialect),
        }
    }

    /// Return to the just-connected state in place.
    ///
    /// Keeps `prof` and `oracle` — the oracle's bug patterns are derived from
    /// a seeded RNG at construction, which is the expensive part of
    /// `Session::new` — and clears everything else while retaining the
    /// containers' allocations where the collection types allow it.
    pub fn reset(&mut self) {
        self.cat.clear();
        self.user.clear();
        self.user.push_str("admin");
        self.settings.clear();
        self.txn = None;
        self.savepoints.clear();
        self.listening.clear();
        self.notifications.clear();
        self.locks.clear();
        self.cursors.clear();
        self.prepared.clear();
        self.prepared_txns.clear();
        self.xa_active = false;
        self.handler_open = false;
        self.current_db.clear();
        self.current_db.push_str("main");
        self.recent_kinds.clear();
    }

    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    fn qenv(&self) -> QueryEnv<'_> {
        QueryEnv::new(&self.cat, &self.prof, &self.user)
    }

    /// Run a query against the session's current state and hand back the
    /// actual result set (the statement dispatcher only reports row counts).
    /// Used by the oracle layer via [`crate::Dbms::run_query`].
    pub fn run_query(
        &self,
        ctx: &mut ExecCtx,
        q: &lego_sqlast::ast::Query,
    ) -> Result<crate::query::ResultSet, String> {
        run_query(&self.qenv(), ctx, q)
    }

    fn check_privilege(
        &mut self,
        ctx: &mut ExecCtx,
        table: &str,
        privilege: &str,
    ) -> Result<(), String> {
        if !self.prof.check_privileges || self.user == "admin" {
            return Ok(());
        }
        cov!(ctx);
        if self.cat.has_privilege(&self.user, table, privilege) {
            cov!(ctx);
            Ok(())
        } else {
            cov!(ctx);
            Err(format!("permission denied: {privilege} on {table}"))
        }
    }

    /// Execute one statement. Returns affected/returned row count; semantic
    /// errors are `Err`. A planted-bug crash sets `ctx.crash`.
    pub fn exec_statement(&mut self, ctx: &mut ExecCtx, stmt: &Statement) -> Result<usize, String> {
        let kind = stmt.kind();
        // Per-case statement budget: every entry — top-level or trigger/rule
        // cascade — charges one unit, so a runaway cascade trips it too.
        ctx.charge_statement()?;
        // Test-only fault hooks (see `faults`): an injected engine panic and
        // an injected infinite loop, both keyed to CREATE TRIGGER so the
        // resilience tests can plant them behind a specific statement type.
        if matches!(stmt, Statement::CreateTrigger(_)) {
            if crate::faults::panic_on_create_trigger() {
                panic!("injected fault: engine panic on CREATE TRIGGER");
            }
            if crate::faults::spin_on_create_trigger() {
                // A "hang" the budget guard can catch deterministically: burn
                // row budget until the per-case limit aborts the case.
                loop {
                    ctx.charge_rows(4096)?;
                }
            }
        }
        // Per-kind dispatch site: every statement type has its own entry
        // branch, and AFL edges between consecutive statements' sites encode
        // type pairs — the substrate LEGO's affinity analysis feeds on.
        ctx.hit_idx(site_id!(), kind.code() as u64);
        // Cross-statement interaction branches. Only *meaningful* adjacencies
        // take distinct paths: a statement running right after one that
        // touched related session state (the plan cache was invalidated by
        // DDL, buffers dirtied by DML, privileges changed by DCL, …) goes
        // through extra re-validation code. Unrelated adjacencies share the
        // fast path, exactly like a real engine — this is what makes most
        // random type sequences "meaningless" (paper § II, challenge C2).
        if ctx.depth == 0 {
            if let Some(&prev) = self.recent_kinds.last() {
                if let Some(class) = meaningful_interaction(prev, kind) {
                    ctx.hit_idx(site_id!(), (class as u64) << 10 | kind.code() as u64);
                    // Longer-range histories select yet deeper paths, but
                    // only along *chains* of meaningful interactions — the
                    // paper's "some code logic must be reached by executing
                    // some specific sequences" (§ II, Fig. 2). A chained
                    // trigram like CREATE TABLE → INSERT → SELECT walks the
                    // dirty-buffer + fresh-plan combination; an arbitrary
                    // interleaving does not.
                    if self.recent_kinds.len() >= 2 {
                        let prev2 = self.recent_kinds[self.recent_kinds.len() - 2];
                        if meaningful_interaction(prev2, prev).is_some() {
                            let h = (prev2.code() as u64) << 32
                                | (prev.code() as u64) << 16
                                | kind.code() as u64;
                            ctx.hit_idx(site_id!(), h);
                            // Four-statement chains (the § V.B case study is
                            // one) reach yet deeper combination logic.
                            if self.recent_kinds.len() >= 3 {
                                let prev3 = self.recent_kinds[self.recent_kinds.len() - 3];
                                if meaningful_interaction(prev3, prev2).is_some() {
                                    let h4 = h
                                        ^ (prev3.code() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                                    ctx.hit_idx(site_id!(), h4);
                                }
                            }
                        }
                    }
                }
            }
            self.recent_kinds.push(kind);
            if self.recent_kinds.len() > 8 {
                self.recent_kinds.remove(0);
            }
        }
        // Deep-state combination paths: the shape of the accumulated session
        // state selects different code in the core executor. Reaching a new
        // combination requires a multi-statement setup chain.
        if ctx.depth == 0 {
            let state_bits = (!self.cat.triggers.is_empty() as u64)
                | (!self.cat.views.is_empty() as u64) << 1
                | (!self.cat.indexes.is_empty() as u64) << 2
                | (!self.cat.rules.is_empty() as u64) << 3
                | (self.txn.is_some() as u64) << 4
                | (!self.cat.users.is_empty() as u64) << 5;
            if state_bits != 0 {
                if let StmtKind::Other(
                    StandaloneKind::Select
                    | StandaloneKind::Insert
                    | StandaloneKind::Update
                    | StandaloneKind::Delete
                    | StandaloneKind::With
                    | StandaloneKind::Copy,
                ) = kind
                {
                    ctx.hit_idx(site_id!(), state_bits << 8 | kind.code() as u64 & 0xff);
                }
            }
        }
        if !self.prof.dialect.supports(kind) {
            cov!(ctx);
            return Err(format!(
                "{} is not supported by {}",
                kind.name(),
                self.prof.dialect.name()
            ));
        }
        // MySQL-family implicit commit on DDL.
        if self.prof.ddl_implicit_commit && matches!(kind, StmtKind::Ddl(..)) && self.txn.is_some()
        {
            cov!(ctx);
            self.txn = None;
            self.savepoints.clear();
        }
        match stmt {
            Statement::CreateTable(c) => self.exec_create_table(ctx, c),
            Statement::CreateView(v) => self.exec_create_view(ctx, v),
            Statement::CreateIndex(i) => self.exec_create_index(ctx, i),
            Statement::CreateTrigger(t) => self.exec_create_trigger(ctx, t),
            Statement::CreateRule(r) => self.exec_create_rule(ctx, r),
            Statement::CreateTableAs { name, query } => {
                cov!(ctx);
                let rs = run_query(&self.qenv(), ctx, query)?;
                let columns = rs
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| ColumnMeta {
                        name: if c.is_empty() { format!("column{}", i + 1) } else { c.clone() },
                        ty: infer_type(rs.rows.first().and_then(|r| r.get(i))),
                        not_null: false,
                        unique: false,
                        primary_key: false,
                        default: None,
                        check: None,
                        references: None,
                    })
                    .collect();
                let n = rs.rows.len();
                self.cat.add_table(TableMeta {
                    name: name.clone(),
                    temporary: false,
                    columns,
                    checks: vec![],
                    foreign_keys: vec![],
                    rows: rs.rows,
                    analyzed: false,
                    clustered: None,
                })?;
                Ok(n)
            }
            Statement::AlterTable(a) => self.exec_alter_table(ctx, a),
            Statement::Drop(d) => self.exec_drop(ctx, d),
            Statement::GenericDdl(g) => self.exec_generic_ddl(ctx, g),
            Statement::Select(s) => {
                cov!(ctx);
                let rs = run_query(&self.qenv(), ctx, &s.query)?;
                if let SelectVariant::Into(target) = &s.variant {
                    cov!(ctx);
                    let stmt =
                        Statement::CreateTableAs { name: target.clone(), query: s.query.clone() };
                    return self.exec_statement(ctx, &stmt);
                }
                ctx.last_row_count = rs.rows.len();
                Ok(rs.rows.len())
            }
            Statement::Insert(i) => self.exec_insert(ctx, i),
            Statement::Update(u) => self.exec_update(ctx, u),
            Statement::Delete(d) => self.exec_delete(ctx, d),
            Statement::With(w) => self.exec_with(ctx, w),
            Statement::Values(rows) => {
                cov!(ctx);
                Ok(rows.len())
            }
            Statement::Truncate { table } => {
                cov!(ctx);
                self.check_privilege(ctx, table, "DELETE")?;
                let t = self
                    .cat
                    .table_mut(table)
                    .ok_or_else(|| format!("table \"{table}\" does not exist"))?;
                let n = t.rows.len();
                t.rows.clear();
                t.analyzed = false;
                Ok(n)
            }
            Statement::Copy(c) => self.exec_copy(ctx, c),
            Statement::Grant(g) => {
                cov!(ctx);
                self.cat
                    .user_mut(&g.grantee)
                    .privileges
                    .entry(g.object.to_ascii_lowercase())
                    .or_default()
                    .push(g.privilege.to_ascii_uppercase());
                Ok(0)
            }
            Statement::Revoke(g) => {
                cov!(ctx);
                let user = self.cat.user_mut(&g.grantee);
                match user.privileges.get_mut(&g.object.to_ascii_lowercase()) {
                    Some(ps) => {
                        cov!(ctx);
                        ps.retain(|p| !p.eq_ignore_ascii_case(&g.privilege));
                        Ok(0)
                    }
                    None => {
                        cov!(ctx);
                        Err(format!("no privileges to revoke on {}", g.object))
                    }
                }
            }
            Statement::Begin | Statement::StartTransaction => {
                if self.txn.is_some() {
                    cov!(ctx);
                    return Err("there is already a transaction in progress".into());
                }
                cov!(ctx);
                self.txn = Some(self.cat.clone());
                Ok(0)
            }
            Statement::Commit | Statement::End => {
                if self.txn.take().is_none() {
                    cov!(ctx);
                    return Err("there is no transaction in progress".into());
                }
                cov!(ctx);
                self.savepoints.clear();
                self.locks.clear();
                Ok(0)
            }
            Statement::Rollback | Statement::Abort => match self.txn.take() {
                Some(snapshot) => {
                    cov!(ctx);
                    self.cat = snapshot;
                    self.savepoints.clear();
                    self.locks.clear();
                    Ok(0)
                }
                None => {
                    cov!(ctx);
                    Err("there is no transaction in progress".into())
                }
            },
            Statement::Savepoint(name) => {
                if self.txn.is_none() {
                    cov!(ctx);
                    return Err("SAVEPOINT can only be used in transaction blocks".into());
                }
                cov!(ctx);
                self.savepoints.push((name.to_ascii_lowercase(), self.cat.clone()));
                Ok(0)
            }
            Statement::ReleaseSavepoint(name) => {
                cov!(ctx);
                let key = name.to_ascii_lowercase();
                match self.savepoints.iter().rposition(|(n, _)| *n == key) {
                    Some(i) => {
                        self.savepoints.truncate(i);
                        Ok(0)
                    }
                    None => {
                        cov!(ctx);
                        Err(format!("savepoint \"{name}\" does not exist"))
                    }
                }
            }
            Statement::RollbackToSavepoint(name) => {
                cov!(ctx);
                let key = name.to_ascii_lowercase();
                match self.savepoints.iter().rposition(|(n, _)| *n == key) {
                    Some(i) => {
                        cov!(ctx);
                        self.cat = self.savepoints[i].1.clone();
                        self.savepoints.truncate(i + 1);
                        Ok(0)
                    }
                    None => {
                        cov!(ctx);
                        Err(format!("savepoint \"{name}\" does not exist"))
                    }
                }
            }
            Statement::Set(s) => {
                cov!(ctx);
                if s.scope.is_some() {
                    cov!(ctx);
                }
                self.settings.insert(s.name.to_ascii_lowercase(), s.value.clone());
                Ok(0)
            }
            Statement::Reset(name) => {
                cov!(ctx);
                match self.settings.remove(&name.to_ascii_lowercase()) {
                    Some(_) => Ok(0),
                    None => {
                        cov!(ctx);
                        Err(format!("unrecognized configuration parameter \"{name}\""))
                    }
                }
            }
            Statement::Show(name) => {
                cov!(ctx);
                let key = name.to_ascii_lowercase();
                if self.settings.contains_key(&key) || key == "server_version" {
                    cov!(ctx);
                    Ok(1)
                } else {
                    cov!(ctx);
                    Err(format!("unrecognized configuration parameter \"{name}\""))
                }
            }
            Statement::Pragma { name, value } => {
                cov!(ctx);
                self.settings.insert(
                    format!("pragma.{}", name.to_ascii_lowercase()),
                    value.clone().unwrap_or_default(),
                );
                Ok(0)
            }
            Statement::Analyze(table) => {
                cov!(ctx);
                match table {
                    Some(t) => {
                        let t = self
                            .cat
                            .table_mut(t)
                            .ok_or_else(|| format!("relation \"{t}\" does not exist"))?;
                        t.analyzed = true;
                    }
                    None => {
                        cov!(ctx);
                        for t in self.cat.tables.values_mut() {
                            t.analyzed = true;
                        }
                    }
                }
                Ok(0)
            }
            Statement::Vacuum { table, full } => {
                cov!(ctx);
                if *full {
                    cov!(ctx);
                }
                if let Some(t) = table {
                    if self.cat.table(t).is_none() {
                        cov!(ctx);
                        return Err(format!("relation \"{t}\" does not exist"));
                    }
                }
                Ok(0)
            }
            Statement::Explain(inner) => {
                cov!(ctx);
                match &**inner {
                    Statement::Select(s) => {
                        // Planning exercises the optimizer without side
                        // effects.
                        let rs = run_query(&self.qenv(), ctx, &s.query)?;
                        Ok(rs.rows.len().min(1))
                    }
                    other => {
                        cov!(ctx);
                        for t in lego_sqlast::visit::table_names(other) {
                            if self.cat.table(&t).is_none() && self.cat.view(&t).is_none() {
                                cov!(ctx);
                            }
                        }
                        Ok(1)
                    }
                }
            }
            Statement::Reindex(table) => {
                cov!(ctx);
                if let Some(t) = table {
                    if self.cat.indexes_on(t).is_empty() {
                        cov!(ctx);
                    }
                    if self.cat.table(t).is_none() {
                        return Err(format!("relation \"{t}\" does not exist"));
                    }
                }
                Ok(0)
            }
            Statement::Checkpoint => {
                cov!(ctx);
                Ok(0)
            }
            Statement::Cluster(table) => {
                cov!(ctx);
                if let Some(name) = table {
                    let has_index = !self.cat.indexes_on(name).is_empty();
                    let t = self
                        .cat
                        .table_mut(name)
                        .ok_or_else(|| format!("relation \"{name}\" does not exist"))?;
                    if has_index {
                        cov!(ctx);
                        t.clustered = Some("idx".into());
                    } else {
                        cov!(ctx);
                        return Err(format!("there is no clusterable index for table \"{name}\""));
                    }
                }
                Ok(0)
            }
            Statement::Discard(what) => {
                cov!(ctx);
                if what.eq_ignore_ascii_case("ALL") {
                    cov!(ctx);
                    self.settings.clear();
                    self.prepared.clear();
                    self.cursors.clear();
                }
                Ok(0)
            }
            Statement::Listen(ch) => {
                cov!(ctx);
                self.listening.insert(ch.to_ascii_lowercase());
                Ok(0)
            }
            Statement::Unlisten(ch) => {
                cov!(ctx);
                if !self.listening.remove(&ch.to_ascii_lowercase()) {
                    cov!(ctx);
                }
                Ok(0)
            }
            Statement::Notify { channel, payload } => {
                cov!(ctx);
                if self.listening.contains(&channel.to_ascii_lowercase()) {
                    cov!(ctx);
                    self.notifications
                        .push(format!("{channel}: {}", payload.clone().unwrap_or_default()));
                } else {
                    cov!(ctx);
                }
                Ok(0)
            }
            Statement::LockTable { table, mode } => {
                cov!(ctx);
                if self.cat.table(table).is_none() {
                    return Err(format!("relation \"{table}\" does not exist"));
                }
                let mode = mode.clone().unwrap_or_else(|| "ACCESS EXCLUSIVE".into());
                let key = table.to_ascii_lowercase();
                match self.locks.get(&key) {
                    Some(held) if *held != mode => {
                        cov!(ctx);
                        Err(format!("lock mode conflict on {table}"))
                    }
                    _ => {
                        cov!(ctx);
                        self.locks.insert(key, mode);
                        Ok(0)
                    }
                }
            }
            Statement::Comment { object, name, .. } => {
                cov!(ctx);
                let exists = match object {
                    ObjectKind::Table => self.cat.table(name).is_some(),
                    ObjectKind::View => self.cat.view(name).is_some(),
                    ObjectKind::Index => self.cat.indexes.contains_key(&name.to_ascii_lowercase()),
                    other => self.cat.generic.contains_key(&(*other, name.to_ascii_lowercase())),
                };
                if exists {
                    cov!(ctx);
                    Ok(0)
                } else {
                    cov!(ctx);
                    Err(format!("{} \"{name}\" does not exist", object.keyword()))
                }
            }
            Statement::Call { name, .. } => {
                cov!(ctx);
                if self
                    .cat
                    .generic
                    .contains_key(&(ObjectKind::Procedure, name.to_ascii_lowercase()))
                {
                    cov!(ctx);
                    Ok(0)
                } else {
                    cov!(ctx);
                    Err(format!("procedure {name} does not exist"))
                }
            }
            Statement::RefreshMatView(name) => {
                cov!(ctx);
                let query = match self.cat.view(name) {
                    Some(v) if v.materialized => v.query.clone(),
                    Some(_) => {
                        cov!(ctx);
                        return Err(format!("\"{name}\" is not a materialized view"));
                    }
                    None => return Err(format!("materialized view \"{name}\" does not exist")),
                };
                let rs = run_query(&self.qenv(), ctx, &query)?;
                let v = self.cat.view_mut(name).expect("checked above");
                v.snapshot = Some((rs.columns, rs.rows));
                Ok(0)
            }
            Statement::Misc(m) => self.exec_misc(ctx, m),
        }
    }

    // -- DDL ------------------------------------------------------------------

    fn exec_create_table(&mut self, ctx: &mut ExecCtx, c: &CreateTable) -> Result<usize, String> {
        cov!(ctx);
        if c.temporary {
            cov!(ctx);
        }
        if c.if_not_exists && self.cat.table(&c.name).is_some() {
            cov!(ctx);
            return Ok(0);
        }
        if c.columns.is_empty() {
            cov!(ctx);
            return Err("a table must have at least one column".into());
        }
        let mut cols = Vec::with_capacity(c.columns.len());
        let mut seen = BTreeSet::new();
        for col in &c.columns {
            if !seen.insert(col.name.to_ascii_lowercase()) {
                cov!(ctx);
                return Err(format!("column \"{}\" specified more than once", col.name));
            }
            let mut meta = ColumnMeta {
                name: col.name.clone(),
                ty: col.ty,
                not_null: false,
                unique: false,
                primary_key: false,
                default: None,
                check: None,
                references: None,
            };
            for con in &col.constraints {
                match con {
                    ColumnConstraint::PrimaryKey => {
                        cov!(ctx);
                        meta.primary_key = true;
                        meta.not_null = true;
                        meta.unique = true;
                    }
                    ColumnConstraint::Unique => {
                        cov!(ctx);
                        meta.unique = true;
                    }
                    ColumnConstraint::NotNull => {
                        cov!(ctx);
                        meta.not_null = true;
                    }
                    ColumnConstraint::Default(e) => {
                        cov!(ctx);
                        meta.default = Some(e.clone());
                    }
                    ColumnConstraint::Check(e) => {
                        cov!(ctx);
                        meta.check = Some(e.clone());
                    }
                    ColumnConstraint::References { table, column } => {
                        cov!(ctx);
                        if self.prof.enforces_foreign_keys
                            && self.cat.table(table).is_none()
                            && !table.eq_ignore_ascii_case(&c.name)
                            && !table.is_empty()
                        {
                            cov!(ctx);
                            return Err(format!("referenced table \"{table}\" does not exist"));
                        }
                        meta.references = Some((table.clone(), column.clone()));
                    }
                }
            }
            cols.push(meta);
        }
        let mut checks = Vec::new();
        let mut fks = Vec::new();
        for con in &c.constraints {
            match con {
                TableConstraint::PrimaryKey(names) | TableConstraint::Unique(names) => {
                    cov!(ctx);
                    for n in names {
                        match cols.iter_mut().find(|cm| cm.name.eq_ignore_ascii_case(n)) {
                            Some(cm) => {
                                cm.unique = true;
                                if matches!(con, TableConstraint::PrimaryKey(_)) {
                                    cm.primary_key = true;
                                    cm.not_null = true;
                                }
                            }
                            None => {
                                cov!(ctx);
                                return Err(format!("column \"{n}\" named in key does not exist"));
                            }
                        }
                    }
                }
                TableConstraint::Check(e) => {
                    cov!(ctx);
                    checks.push(e.clone());
                }
                TableConstraint::ForeignKey { columns, ref_table, ref_columns } => {
                    cov!(ctx);
                    if self.prof.enforces_foreign_keys && self.cat.table(ref_table).is_none() {
                        cov!(ctx);
                        return Err(format!("referenced table \"{ref_table}\" does not exist"));
                    }
                    fks.push((columns.clone(), ref_table.clone(), ref_columns.clone()));
                }
            }
        }
        self.cat.add_table(TableMeta {
            name: c.name.clone(),
            temporary: c.temporary,
            columns: cols,
            checks,
            foreign_keys: fks,
            rows: vec![],
            analyzed: false,
            clustered: None,
        })?;
        Ok(0)
    }

    fn exec_create_view(&mut self, ctx: &mut ExecCtx, v: &CreateView) -> Result<usize, String> {
        cov!(ctx);
        if !self.prof.has_views {
            cov!(ctx);
            return Err("views are not supported".into());
        }
        if v.materialized && !self.prof.has_matviews {
            cov!(ctx);
            return Err("materialized views are not supported".into());
        }
        // Validate the defining query against the current schema.
        run_query(&self.qenv(), ctx, &v.query)?;
        self.cat.add_view(
            ViewMeta {
                name: v.name.clone(),
                materialized: v.materialized,
                query: (*v.query).clone(),
                snapshot: None,
            },
            v.or_replace,
        )?;
        Ok(0)
    }

    fn exec_create_index(&mut self, ctx: &mut ExecCtx, i: &CreateIndex) -> Result<usize, String> {
        cov!(ctx);
        let key = i.name.to_ascii_lowercase();
        if self.cat.indexes.contains_key(&key) {
            cov!(ctx);
            return Err(format!("index \"{}\" already exists", i.name));
        }
        let table = self
            .cat
            .table(&i.table)
            .ok_or_else(|| format!("relation \"{}\" does not exist", i.table))?;
        let mut positions = Vec::new();
        for c in &i.columns {
            match table.column_index(c) {
                Some(p) => positions.push(p),
                None => {
                    cov!(ctx);
                    return Err(format!("column \"{c}\" does not exist"));
                }
            }
        }
        if i.unique {
            cov!(ctx);
            let mut seen = BTreeSet::new();
            for row in &table.rows {
                let k: Vec<String> = positions.iter().map(|&p| row[p].key_repr()).collect();
                if !seen.insert(k.join("\u{1}")) {
                    cov!(ctx);
                    return Err(format!("could not create unique index \"{}\"", i.name));
                }
            }
        }
        self.cat.indexes.insert(
            key,
            IndexMeta {
                name: i.name.clone(),
                table: i.table.clone(),
                columns: i.columns.clone(),
                unique: i.unique,
            },
        );
        Ok(0)
    }

    fn exec_create_trigger(
        &mut self,
        ctx: &mut ExecCtx,
        t: &CreateTrigger,
    ) -> Result<usize, String> {
        cov!(ctx);
        if !self.prof.has_triggers {
            cov!(ctx);
            return Err("triggers are not supported".into());
        }
        if self.cat.table(&t.table).is_none() {
            cov!(ctx);
            return Err(format!("relation \"{}\" does not exist", t.table));
        }
        let key = t.name.to_ascii_lowercase();
        if self.cat.triggers.contains_key(&key) {
            cov!(ctx);
            return Err(format!("trigger \"{}\" already exists", t.name));
        }
        self.cat.triggers.insert(key, TriggerMeta { def: t.clone() });
        Ok(0)
    }

    fn exec_create_rule(&mut self, ctx: &mut ExecCtx, r: &CreateRule) -> Result<usize, String> {
        cov!(ctx);
        if !self.prof.has_rules {
            cov!(ctx);
            return Err("rules are not supported".into());
        }
        if self.cat.table(&r.table).is_none() && self.cat.view(&r.table).is_none() {
            cov!(ctx);
            return Err(format!("relation \"{}\" does not exist", r.table));
        }
        let key = r.name.to_ascii_lowercase();
        if self.cat.rules.contains_key(&key) && !r.or_replace {
            cov!(ctx);
            return Err(format!("rule \"{}\" already exists", r.name));
        }
        cov!(ctx);
        self.cat.rules.insert(key, RuleMeta { def: r.clone() });
        Ok(0)
    }

    fn exec_alter_table(&mut self, ctx: &mut ExecCtx, a: &AlterTable) -> Result<usize, String> {
        cov!(ctx);
        if self.cat.table(&a.name).is_none() {
            cov!(ctx);
            return Err(format!("relation \"{}\" does not exist", a.name));
        }
        match &a.action {
            AlterTableAction::AddColumn(c) => {
                cov!(ctx);
                let default = c.constraints.iter().find_map(|con| match con {
                    ColumnConstraint::Default(e) => Some(e.clone()),
                    _ => None,
                });
                let default_value = match &default {
                    Some(e) => {
                        let mut eenv = EvalEnv { cols: &vec![], row: &[], ctx, subquery: None };
                        eval(e, &mut eenv)?
                    }
                    None => Value::Null,
                };
                let t = self.cat.table_mut(&a.name).expect("checked above");
                if t.column_index(&c.name).is_some() {
                    cov!(ctx);
                    return Err(format!("column \"{}\" already exists", c.name));
                }
                t.columns.push(ColumnMeta {
                    name: c.name.clone(),
                    ty: c.ty,
                    not_null: false,
                    unique: false,
                    primary_key: false,
                    default,
                    check: None,
                    references: None,
                });
                for row in &mut t.rows {
                    row.push(default_value.clone());
                }
                t.analyzed = false;
                Ok(0)
            }
            AlterTableAction::DropColumn(name) => {
                cov!(ctx);
                let indexed = self
                    .cat
                    .indexes_on(&a.name)
                    .iter()
                    .any(|ix| ix.columns.iter().any(|c| c.eq_ignore_ascii_case(name)));
                let t = self.cat.table_mut(&a.name).expect("checked above");
                let pos = t
                    .column_index(name)
                    .ok_or_else(|| format!("column \"{name}\" does not exist"))?;
                if t.columns.len() == 1 {
                    cov!(ctx);
                    return Err("cannot drop the only column".into());
                }
                if indexed {
                    cov!(ctx);
                    return Err(format!("cannot drop column \"{name}\": used by an index"));
                }
                t.columns.remove(pos);
                for row in &mut t.rows {
                    row.remove(pos);
                }
                Ok(0)
            }
            AlterTableAction::RenameColumn { old, new } => {
                cov!(ctx);
                let t = self.cat.table_mut(&a.name).expect("checked above");
                if t.column_index(new).is_some() {
                    cov!(ctx);
                    return Err(format!("column \"{new}\" already exists"));
                }
                let pos = t
                    .column_index(old)
                    .ok_or_else(|| format!("column \"{old}\" does not exist"))?;
                t.columns[pos].name = new.clone();
                Ok(0)
            }
            AlterTableAction::RenameTo(new) => {
                cov!(ctx);
                if self.cat.table(new).is_some() || self.cat.view(new).is_some() {
                    cov!(ctx);
                    return Err(format!("relation \"{new}\" already exists"));
                }
                let mut meta = self.cat.drop_table(&a.name)?;
                meta.name = new.clone();
                self.cat.add_table(meta)?;
                Ok(0)
            }
            AlterTableAction::AlterColumnType { name, ty } => {
                cov!(ctx);
                let t = self.cat.table_mut(&a.name).expect("checked above");
                let pos = t
                    .column_index(name)
                    .ok_or_else(|| format!("column \"{name}\" does not exist"))?;
                t.columns[pos].ty = *ty;
                for row in &mut t.rows {
                    row[pos] = row[pos].coerce_to(*ty);
                }
                Ok(0)
            }
        }
    }

    fn exec_drop(&mut self, ctx: &mut ExecCtx, d: &DropStmt) -> Result<usize, String> {
        cov!(ctx);
        let missing = |ctx: &mut ExecCtx, what: String, if_exists: bool| -> Result<usize, String> {
            if if_exists {
                cov!(ctx);
                Ok(0)
            } else {
                cov!(ctx);
                Err(what)
            }
        };
        match d.object {
            ObjectKind::Table => {
                if self.cat.table(&d.name).is_none() {
                    return missing(
                        ctx,
                        format!("table \"{}\" does not exist", d.name),
                        d.if_exists,
                    );
                }
                cov!(ctx);
                self.cat.drop_table(&d.name)?;
                Ok(0)
            }
            ObjectKind::View | ObjectKind::MaterializedView => {
                cov!(ctx);
                let key = d.name.to_ascii_lowercase();
                if self.cat.views.remove(&key).is_none() {
                    return missing(
                        ctx,
                        format!("view \"{}\" does not exist", d.name),
                        d.if_exists,
                    );
                }
                Ok(0)
            }
            ObjectKind::Index => {
                cov!(ctx);
                if self.cat.indexes.remove(&d.name.to_ascii_lowercase()).is_none() {
                    return missing(
                        ctx,
                        format!("index \"{}\" does not exist", d.name),
                        d.if_exists,
                    );
                }
                Ok(0)
            }
            ObjectKind::Trigger => {
                cov!(ctx);
                if self.cat.triggers.remove(&d.name.to_ascii_lowercase()).is_none() {
                    return missing(
                        ctx,
                        format!("trigger \"{}\" does not exist", d.name),
                        d.if_exists,
                    );
                }
                Ok(0)
            }
            ObjectKind::Rule => {
                cov!(ctx);
                if self.cat.rules.remove(&d.name.to_ascii_lowercase()).is_none() {
                    return missing(
                        ctx,
                        format!("rule \"{}\" does not exist", d.name),
                        d.if_exists,
                    );
                }
                Ok(0)
            }
            other => {
                // Long-tail objects live in the generic catalog.
                ctx.hit_idx(site_id!(), other as u64);
                let key = (other, d.name.to_ascii_lowercase());
                if self.cat.generic.remove(&key).is_none() {
                    return missing(
                        ctx,
                        format!("{} \"{}\" does not exist", other.keyword(), d.name),
                        d.if_exists,
                    );
                }
                cov!(ctx);
                Ok(0)
            }
        }
    }

    fn exec_generic_ddl(&mut self, ctx: &mut ExecCtx, g: &GenericDdl) -> Result<usize, String> {
        // One dispatch site per (verb, object) pair.
        ctx.hit_idx(site_id!(), (g.verb as u64) << 8 | g.object as u64);
        let key = (g.object, g.name.to_ascii_lowercase());
        match g.verb {
            DdlVerb::Create => {
                if self.cat.generic.contains_key(&key) {
                    cov!(ctx);
                    return Err(format!("{} \"{}\" already exists", g.object.keyword(), g.name));
                }
                cov!(ctx);
                self.cat.generic.insert(
                    key,
                    GenericObject { kind: g.object, name: g.name.clone(), version: 1 },
                );
                Ok(0)
            }
            DdlVerb::Alter => match self.cat.generic.get_mut(&key) {
                Some(obj) => {
                    cov!(ctx);
                    obj.version += 1;
                    if obj.version > 3 {
                        // Repeatedly altered objects exercise a deeper path.
                        cov!(ctx);
                    }
                    Ok(0)
                }
                None => {
                    cov!(ctx);
                    Err(format!("{} \"{}\" does not exist", g.object.keyword(), g.name))
                }
            },
            DdlVerb::Drop => {
                // DROP arrives as Statement::Drop; reaching here means the
                // generic fallback path (defensive).
                cov!(ctx);
                match self.cat.generic.remove(&key) {
                    Some(_) => Ok(0),
                    None => Err(format!("{} \"{}\" does not exist", g.object.keyword(), g.name)),
                }
            }
        }
    }

    // -- DML ------------------------------------------------------------------

    fn rewrite_by_rules(
        &mut self,
        ctx: &mut ExecCtx,
        table: &str,
        event: DmlEvent,
    ) -> Result<Option<Vec<Statement>>, String> {
        if !self.prof.has_rules {
            return Ok(None);
        }
        let rules: Vec<RuleMeta> = self.cat.rules_on(table, event).into_iter().cloned().collect();
        if rules.is_empty() {
            return Ok(None);
        }
        cov!(ctx);
        let mut instead = false;
        let mut actions = Vec::new();
        for r in &rules {
            if r.def.instead {
                cov!(ctx);
                instead = true;
            }
            match &r.def.action {
                Some(a) => actions.push((**a).clone()),
                None => {
                    // DO INSTEAD NOTHING swallows the statement.
                    cov!(ctx);
                }
            }
        }
        if instead {
            Ok(Some(actions))
        } else {
            // Non-INSTEAD rules run in addition to the original statement.
            for a in actions {
                self.exec_nested(ctx, &a)?;
            }
            Ok(None)
        }
    }

    fn exec_nested(&mut self, ctx: &mut ExecCtx, stmt: &Statement) -> Result<usize, String> {
        if ctx.depth >= MAX_TRIGGER_DEPTH {
            cov!(ctx);
            return Err("trigger/rule recursion limit exceeded".into());
        }
        ctx.depth += 1;
        let r = self.exec_statement(ctx, stmt);
        ctx.depth -= 1;
        r
    }

    fn fire_triggers(
        &mut self,
        ctx: &mut ExecCtx,
        table: &str,
        event: DmlEvent,
        timing: TriggerTiming,
        affected: usize,
    ) -> Result<(), String> {
        if !self.prof.has_triggers || affected == 0 {
            return Ok(());
        }
        let trigs: Vec<TriggerMeta> = self
            .cat
            .triggers_on(table, event)
            .into_iter()
            .filter(|t| t.def.timing == timing)
            .cloned()
            .collect();
        if trigs.is_empty() {
            return Ok(());
        }
        cov!(ctx);
        for t in trigs {
            let fires = if t.def.for_each_row { affected.min(MAX_TRIGGER_FIRES) } else { 1 };
            if affected > MAX_TRIGGER_FIRES && t.def.for_each_row {
                cov!(ctx); // fire-cap path
            }
            for _ in 0..fires {
                // Trigger action errors abort the outer statement, like real
                // engines.
                self.exec_nested(ctx, &t.def.action)?;
                if ctx.crashed() {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn exec_insert(&mut self, ctx: &mut ExecCtx, i: &Insert) -> Result<usize, String> {
        cov!(ctx);
        self.check_privilege(ctx, &i.table, "INSERT")?;
        if let Some(actions) = self.rewrite_by_rules(ctx, &i.table, DmlEvent::Insert)? {
            cov!(ctx);
            let mut n = 0;
            for a in actions {
                n += self.exec_nested(ctx, &a)?;
                if ctx.crashed() {
                    return Ok(n);
                }
            }
            return Ok(n);
        }
        if self.cat.view(&i.table).is_some() {
            cov!(ctx);
            return Err(format!("cannot insert into view \"{}\"", i.table));
        }
        let table = self
            .cat
            .table(&i.table)
            .ok_or_else(|| format!("relation \"{}\" does not exist", i.table))?
            .clone();

        // Column targets.
        let positions: Vec<usize> = if i.columns.is_empty() {
            (0..table.columns.len()).collect()
        } else {
            cov!(ctx);
            let mut v = Vec::with_capacity(i.columns.len());
            for c in &i.columns {
                v.push(
                    table
                        .column_index(c)
                        .ok_or_else(|| format!("column \"{c}\" does not exist"))?,
                );
            }
            v
        };

        // Source rows (charged against the per-case row budget like any
        // other materialization).
        let src_rows: Vec<Row> = match &i.source {
            InsertSource::Values(rows) => {
                cov!(ctx);
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut row = Vec::with_capacity(r.len());
                    for e in r {
                        let mut run_subq = make_subquery_runner(&self.cat, &self.prof, &self.user);
                        let mut eenv =
                            EvalEnv { cols: &vec![], row: &[], ctx, subquery: Some(&mut run_subq) };
                        row.push(eval(e, &mut eenv)?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSource::Query(q) => {
                cov!(ctx);
                run_query(&self.qenv(), ctx, q)?.rows
            }
            InsertSource::DefaultValues => {
                cov!(ctx);
                vec![vec![]]
            }
        };
        ctx.charge_rows(src_rows.len())?;

        self.fire_triggers(ctx, &i.table, DmlEvent::Insert, TriggerTiming::Before, src_rows.len())?;
        if ctx.crashed() {
            return Ok(0);
        }

        let mut inserted = 0usize;
        for src in src_rows {
            if src.len() > positions.len() {
                cov!(ctx);
                if i.ignore {
                    cov!(ctx);
                    continue;
                }
                return Err("INSERT has more expressions than target columns".into());
            }
            // Build the full row: defaults then provided values, coerced.
            let mut row: Row = Vec::with_capacity(table.columns.len());
            for col in &table.columns {
                match &col.default {
                    Some(e) => {
                        let mut eenv = EvalEnv { cols: &vec![], row: &[], ctx, subquery: None };
                        row.push(eval(e, &mut eenv)?.coerce_to(col.ty));
                    }
                    None => row.push(Value::Null),
                }
            }
            for (vi, v) in src.into_iter().enumerate() {
                let pos = positions[vi];
                row[pos] = v.coerce_to(table.columns[pos].ty);
            }
            match self.validate_row(ctx, &table.name, &row) {
                Ok(()) => {}
                Err(e) => {
                    if i.ignore {
                        cov!(ctx); // IGNORE swallows the violation
                        continue;
                    }
                    return Err(e);
                }
            }
            let t = self.cat.table_mut(&i.table).expect("exists");
            if t.rows.len() >= MAX_TABLE_ROWS {
                cov!(ctx);
                return Err(format!("table \"{}\" is full", i.table));
            }
            t.rows.push(row);
            t.analyzed = false;
            inserted += 1;
        }
        // Batch-size-dependent paths (single-row fast path vs bulk loader).
        ctx.hit_idx(
            site_id!(),
            match inserted {
                0 => 0,
                1 => 1,
                2..=7 => 2,
                _ => 3,
            },
        );
        self.fire_triggers(ctx, &i.table, DmlEvent::Insert, TriggerTiming::After, inserted)?;
        Ok(inserted)
    }

    /// Constraint validation for one candidate row.
    fn validate_row(&mut self, ctx: &mut ExecCtx, table: &str, row: &Row) -> Result<(), String> {
        let t = self.cat.table(table).expect("exists").clone();
        let bindings: Bindings =
            t.columns.iter().map(|c| (None, c.name.to_ascii_lowercase())).collect();
        for (pos, col) in t.columns.iter().enumerate() {
            if col.not_null && row[pos].is_null() {
                cov!(ctx);
                return Err(format!("null value in column \"{}\" violates not-null", col.name));
            }
            if col.unique && !row[pos].is_null() {
                cov!(ctx);
                if t.rows.iter().any(|r| r[pos].sql_eq(&row[pos]) == Some(true)) {
                    cov!(ctx);
                    return Err(format!(
                        "duplicate key value violates unique constraint on \"{}\"",
                        col.name
                    ));
                }
            }
            if let Some(check) = &col.check {
                cov!(ctx);
                let mut eenv = EvalEnv { cols: &bindings, row, ctx, subquery: None };
                let v = eval(check, &mut eenv)?;
                if !v.is_null() && !v.is_truthy() {
                    cov!(ctx);
                    return Err(format!("check constraint on column \"{}\" violated", col.name));
                }
            }
            if let Some((ref_table, ref_col)) = &col.references {
                if self.prof.enforces_foreign_keys && !row[pos].is_null() {
                    cov!(ctx);
                    let parent = self
                        .cat
                        .table(ref_table)
                        .ok_or_else(|| format!("referenced table \"{ref_table}\" missing"))?;
                    let rpos = match ref_col {
                        Some(c) => parent
                            .column_index(c)
                            .ok_or_else(|| format!("referenced column \"{c}\" missing"))?,
                        None => 0,
                    };
                    if !parent.rows.iter().any(|r| r[rpos].sql_eq(&row[pos]) == Some(true)) {
                        cov!(ctx);
                        return Err(format!(
                            "insert violates foreign key referencing \"{ref_table}\""
                        ));
                    }
                }
            }
        }
        for check in &t.checks {
            cov!(ctx);
            let mut eenv = EvalEnv { cols: &bindings, row, ctx, subquery: None };
            let v = eval(check, &mut eenv)?;
            if !v.is_null() && !v.is_truthy() {
                cov!(ctx);
                return Err("table check constraint violated".into());
            }
        }
        // Unique indexes.
        for ix in self.cat.indexes_on(table) {
            if !ix.unique {
                continue;
            }
            cov!(ctx);
            let positions: Vec<usize> =
                ix.columns.iter().filter_map(|c| t.column_index(c)).collect();
            if positions.len() != ix.columns.len() {
                continue;
            }
            let key: Vec<String> = positions.iter().map(|&p| row[p].key_repr()).collect();
            if t.rows
                .iter()
                .any(|r| positions.iter().map(|&p| r[p].key_repr()).collect::<Vec<_>>() == key)
            {
                cov!(ctx);
                return Err(format!("duplicate key violates unique index \"{}\"", ix.name));
            }
        }
        Ok(())
    }

    fn exec_update(&mut self, ctx: &mut ExecCtx, u: &Update) -> Result<usize, String> {
        cov!(ctx);
        self.check_privilege(ctx, &u.table, "UPDATE")?;
        if let Some(actions) = self.rewrite_by_rules(ctx, &u.table, DmlEvent::Update)? {
            cov!(ctx);
            let mut n = 0;
            for a in actions {
                n += self.exec_nested(ctx, &a)?;
            }
            return Ok(n);
        }
        let table = self
            .cat
            .table(&u.table)
            .ok_or_else(|| format!("relation \"{}\" does not exist", u.table))?
            .clone();
        let bindings: Bindings = table
            .columns
            .iter()
            .map(|c| (Some(u.table.to_ascii_lowercase()), c.name.to_ascii_lowercase()))
            .collect();
        let mut targets = Vec::with_capacity(u.assignments.len());
        for (c, e) in &u.assignments {
            let pos =
                table.column_index(c).ok_or_else(|| format!("column \"{c}\" does not exist"))?;
            targets.push((pos, e.clone()));
        }
        let mut updated = 0usize;
        let mut new_rows = table.rows.clone();
        for row in new_rows.iter_mut() {
            let keep = match &u.where_ {
                None => true,
                Some(w) => {
                    let mut run_subq = make_subquery_runner(&self.cat, &self.prof, &self.user);
                    let mut eenv =
                        EvalEnv { cols: &bindings, row, ctx, subquery: Some(&mut run_subq) };
                    eval(w, &mut eenv)?.is_truthy()
                }
            };
            if !keep {
                continue;
            }
            cov!(ctx);
            let old = row.clone();
            for (pos, e) in &targets {
                let mut run_subq = make_subquery_runner(&self.cat, &self.prof, &self.user);
                let mut eenv =
                    EvalEnv { cols: &bindings, row: &old, ctx, subquery: Some(&mut run_subq) };
                row[*pos] = eval(e, &mut eenv)?.coerce_to(table.columns[*pos].ty);
            }
            // NOT NULL and CHECK re-validation on the new image.
            for (pos, col) in table.columns.iter().enumerate() {
                if col.not_null && row[pos].is_null() {
                    cov!(ctx);
                    return Err(format!("null value in column \"{}\" violates not-null", col.name));
                }
                if let Some(check) = &col.check {
                    let cols2: Bindings =
                        table.columns.iter().map(|c| (None, c.name.to_ascii_lowercase())).collect();
                    let mut eenv = EvalEnv { cols: &cols2, row, ctx, subquery: None };
                    let v = eval(check, &mut eenv)?;
                    if !v.is_null() && !v.is_truthy() {
                        cov!(ctx);
                        return Err(format!("check constraint on \"{}\" violated", col.name));
                    }
                }
            }
            updated += 1;
        }
        self.fire_triggers(ctx, &u.table, DmlEvent::Update, TriggerTiming::Before, updated)?;
        if ctx.crashed() {
            return Ok(0);
        }
        let t = self.cat.table_mut(&u.table).expect("exists");
        t.rows = new_rows;
        t.analyzed = false;
        ctx.hit_idx(
            site_id!(),
            match updated {
                0 => 0,
                1 => 1,
                2..=7 => 2,
                _ => 3,
            },
        );
        self.fire_triggers(ctx, &u.table, DmlEvent::Update, TriggerTiming::After, updated)?;
        Ok(updated)
    }

    fn exec_delete(&mut self, ctx: &mut ExecCtx, d: &Delete) -> Result<usize, String> {
        cov!(ctx);
        self.check_privilege(ctx, &d.table, "DELETE")?;
        if let Some(actions) = self.rewrite_by_rules(ctx, &d.table, DmlEvent::Delete)? {
            cov!(ctx);
            let mut n = 0;
            for a in actions {
                n += self.exec_nested(ctx, &a)?;
            }
            return Ok(n);
        }
        let table = self
            .cat
            .table(&d.table)
            .ok_or_else(|| format!("relation \"{}\" does not exist", d.table))?
            .clone();
        let bindings: Bindings = table
            .columns
            .iter()
            .map(|c| (Some(d.table.to_ascii_lowercase()), c.name.to_ascii_lowercase()))
            .collect();
        let mut kept = Vec::with_capacity(table.rows.len());
        let mut deleted = 0usize;
        for row in &table.rows {
            let gone = match &d.where_ {
                None => true,
                Some(w) => {
                    let mut run_subq = make_subquery_runner(&self.cat, &self.prof, &self.user);
                    let mut eenv =
                        EvalEnv { cols: &bindings, row, ctx, subquery: Some(&mut run_subq) };
                    eval(w, &mut eenv)?.is_truthy()
                }
            };
            if gone {
                cov!(ctx);
                deleted += 1;
            } else {
                kept.push(row.clone());
            }
        }
        self.fire_triggers(ctx, &d.table, DmlEvent::Delete, TriggerTiming::Before, deleted)?;
        if ctx.crashed() {
            return Ok(0);
        }
        let t = self.cat.table_mut(&d.table).expect("exists");
        t.rows = kept;
        t.analyzed = false;
        self.fire_triggers(ctx, &d.table, DmlEvent::Delete, TriggerTiming::After, deleted)?;
        Ok(deleted)
    }

    fn exec_with(&mut self, ctx: &mut ExecCtx, w: &WithStmt) -> Result<usize, String> {
        cov!(ctx);
        let mut temp_tables: Vec<String> = Vec::new();
        let mut result = Ok(0usize);
        for cte in &w.ctes {
            match &cte.body {
                CteBody::Dml(dml) => {
                    cov!(ctx);
                    // The § V.B case-study path: PostgreSQL's RewriteQuery
                    // handles DML inside WITH by recursing into the rule
                    // system; a DO INSTEAD NOTIFY rule replaces the DML with
                    // a utility statement the planner cannot plan — the
                    // jointree ends up NULL and replace_empty_jointree
                    // dereferences it.
                    if self.prof.has_rules {
                        let (target, event) = match &**dml {
                            Statement::Insert(i) => (Some(i.table.clone()), DmlEvent::Insert),
                            Statement::Update(u) => (Some(u.table.clone()), DmlEvent::Update),
                            Statement::Delete(d) => (Some(d.table.clone()), DmlEvent::Delete),
                            _ => (None, DmlEvent::Insert),
                        };
                        if let Some(target) = target {
                            let has_notify_instead_rule =
                                self.cat.rules_on(&target, event).iter().any(|r| {
                                    r.def.instead
                                        && matches!(
                                            r.def.action.as_deref(),
                                            Some(Statement::Notify { .. })
                                        )
                                });
                            if has_notify_instead_rule {
                                cov!(ctx);
                                if let Some(bug) = self.oracle.special(Special::PgNotifyWithRewrite)
                                {
                                    ctx.crash = Some(CrashReport::for_bug(bug));
                                    return Ok(0);
                                }
                            }
                        }
                    }
                    let r = self.exec_nested(ctx, dml);
                    if ctx.crashed() {
                        return Ok(0);
                    }
                    if let Err(e) = r {
                        result = Err(e);
                        break;
                    }
                }
                CteBody::Query(q) => {
                    cov!(ctx);
                    let rs = match run_query(&self.qenv(), ctx, q) {
                        Ok(rs) => rs,
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    };
                    // Materialize the CTE as a temporary table visible to the
                    // body statement.
                    let meta = result_to_table(&cte.name, &rs);
                    match self.cat.add_table(meta) {
                        Ok(()) => temp_tables.push(cte.name.clone()),
                        Err(e) => {
                            cov!(ctx);
                            result = Err(e);
                            break;
                        }
                    }
                }
            }
        }
        if result.is_ok() && !ctx.crashed() {
            result = self.exec_nested(ctx, &w.body);
        }
        for t in temp_tables {
            let _ = self.cat.drop_table(&t);
        }
        result
    }

    fn exec_copy(&mut self, ctx: &mut ExecCtx, c: &CopyStmt) -> Result<usize, String> {
        cov!(ctx);
        for opt in &c.options {
            if opt.eq_ignore_ascii_case("CSV") || opt.eq_ignore_ascii_case("HEADER") {
                cov!(ctx);
            }
        }
        match (&c.source, c.direction) {
            (CopySource::Query(q), CopyDirection::To) => {
                cov!(ctx);
                let rs = run_query(&self.qenv(), ctx, q)?;
                Ok(rs.rows.len())
            }
            (CopySource::Table { name, columns }, CopyDirection::To) => {
                cov!(ctx);
                self.check_privilege(ctx, name, "SELECT")?;
                let t = self
                    .cat
                    .table(name)
                    .ok_or_else(|| format!("relation \"{name}\" does not exist"))?;
                for col in columns {
                    if t.column_index(col).is_none() {
                        cov!(ctx);
                        return Err(format!("column \"{col}\" does not exist"));
                    }
                }
                Ok(t.rows.len())
            }
            (CopySource::Table { name, .. }, CopyDirection::From) => {
                cov!(ctx);
                self.check_privilege(ctx, name, "INSERT")?;
                if self.cat.table(name).is_none() {
                    return Err(format!("relation \"{name}\" does not exist"));
                }
                // No stdin in the harness: COPY FROM parses and validates but
                // transfers zero rows.
                Ok(0)
            }
            (CopySource::Query(_), CopyDirection::From) => {
                cov!(ctx);
                Err("cannot COPY FROM into a query".into())
            }
        }
    }

    // -- the statement long tail ------------------------------------------------

    fn exec_misc(&mut self, ctx: &mut ExecCtx, m: &MiscStmt) -> Result<usize, String> {
        use StandaloneKind as K;
        // Per-kind site plus a transaction-sensitive branch: the same
        // statement inside and outside a transaction covers differently.
        ctx.hit_idx(site_id!(), m.kind as u64);
        if self.in_txn() {
            ctx.hit_idx(site_id!(), m.kind as u64);
        }
        let arg1 = m.arg.as_deref().and_then(|a| a.split_whitespace().next()).map(str::to_string);
        match m.kind {
            K::DeclareCursor => {
                let name = arg1.ok_or("DECLARE requires a cursor name")?;
                if !self.cursors.insert(name.to_ascii_lowercase()) {
                    cov!(ctx);
                    return Err(format!("cursor \"{name}\" already exists"));
                }
                cov!(ctx);
                Ok(0)
            }
            K::Fetch | K::Move => {
                cov!(ctx);
                let name = arg1.unwrap_or_default();
                if self.cursors.contains(&name.to_ascii_lowercase()) {
                    cov!(ctx);
                    Ok(1)
                } else {
                    cov!(ctx);
                    Err(format!("cursor \"{name}\" does not exist"))
                }
            }
            K::CloseCursor => {
                cov!(ctx);
                let name = arg1.unwrap_or_default();
                if self.cursors.remove(&name.to_ascii_lowercase()) {
                    Ok(0)
                } else {
                    cov!(ctx);
                    Err(format!("cursor \"{name}\" does not exist"))
                }
            }
            K::PrepareStmt => {
                cov!(ctx);
                let name = arg1.ok_or("PREPARE requires a name")?;
                if !self.prepared.insert(name.to_ascii_lowercase()) {
                    cov!(ctx);
                    return Err(format!("prepared statement \"{name}\" already exists"));
                }
                Ok(0)
            }
            K::ExecuteStmt | K::ExecuteImmediate => {
                cov!(ctx);
                let name = arg1.unwrap_or_default();
                if m.kind == K::ExecuteImmediate
                    || self.prepared.contains(&name.to_ascii_lowercase())
                {
                    cov!(ctx);
                    Ok(0)
                } else {
                    cov!(ctx);
                    Err(format!("prepared statement \"{name}\" does not exist"))
                }
            }
            K::Deallocate => {
                cov!(ctx);
                let name = arg1.unwrap_or_default();
                if self.prepared.remove(&name.to_ascii_lowercase()) {
                    Ok(0)
                } else {
                    cov!(ctx);
                    Err(format!("prepared statement \"{name}\" does not exist"))
                }
            }
            K::XaBegin => {
                if self.xa_active {
                    cov!(ctx);
                    return Err("XA transaction already active".into());
                }
                cov!(ctx);
                self.xa_active = true;
                Ok(0)
            }
            K::XaCommit | K::XaRollback => {
                if !self.xa_active {
                    cov!(ctx);
                    return Err("no active XA transaction".into());
                }
                cov!(ctx);
                self.xa_active = false;
                Ok(0)
            }
            K::PrepareTransaction => {
                cov!(ctx);
                if self.txn.take().is_none() {
                    cov!(ctx);
                    return Err("PREPARE TRANSACTION requires a transaction".into());
                }
                self.prepared_txns.insert(arg1.unwrap_or_default());
                Ok(0)
            }
            K::CommitPrepared | K::RollbackPrepared => {
                cov!(ctx);
                let gid = arg1.unwrap_or_default();
                if self.prepared_txns.remove(&gid) {
                    cov!(ctx);
                    Ok(0)
                } else {
                    cov!(ctx);
                    Err(format!("prepared transaction \"{gid}\" does not exist"))
                }
            }
            K::Handler => {
                cov!(ctx);
                self.handler_open = !self.handler_open;
                if self.handler_open {
                    cov!(ctx);
                }
                Ok(0)
            }
            K::Use => {
                cov!(ctx);
                self.current_db = arg1.ok_or("USE requires a database name")?;
                Ok(0)
            }
            K::SetRole | K::SetSessionAuthorization => {
                cov!(ctx);
                match arg1 {
                    Some(u)
                        if !u.eq_ignore_ascii_case("NONE")
                            && !u.eq_ignore_ascii_case("DEFAULT") =>
                    {
                        cov!(ctx);
                        self.user = u;
                    }
                    _ => {
                        cov!(ctx);
                        self.user = "admin".into();
                    }
                }
                Ok(0)
            }
            K::SetTransaction | K::SetConstraints => {
                cov!(ctx);
                if !self.in_txn() {
                    cov!(ctx);
                    return Err(format!(
                        "{} can only be used in transaction blocks",
                        m.kind.name()
                    ));
                }
                Ok(0)
            }
            K::LockTables => {
                cov!(ctx);
                let name = arg1.unwrap_or_default();
                if !name.is_empty() && self.cat.table(&name).is_none() {
                    cov!(ctx);
                    return Err(format!("table \"{name}\" does not exist"));
                }
                self.locks.insert(name.to_ascii_lowercase(), "TABLE".into());
                Ok(0)
            }
            K::UnlockTables => {
                cov!(ctx);
                if self.locks.is_empty() {
                    cov!(ctx);
                }
                self.locks.clear();
                Ok(0)
            }
            K::RenameTable => {
                cov!(ctx);
                // `RENAME TABLE a TO b`
                let words: Vec<&str> = m.arg.as_deref().unwrap_or("").split_whitespace().collect();
                if words.len() >= 3 && words[1].eq_ignore_ascii_case("TO") {
                    cov!(ctx);
                    let (old, new) = (words[0], words[2]);
                    if self.cat.table(new).is_some() {
                        cov!(ctx);
                        return Err(format!("table \"{new}\" already exists"));
                    }
                    let mut meta = self.cat.drop_table(old)?;
                    meta.name = new.to_string();
                    self.cat.add_table(meta)?;
                    Ok(0)
                } else {
                    cov!(ctx);
                    Err("malformed RENAME TABLE".into())
                }
            }
            K::RenameUser | K::SetPassword | K::SetDefaultRole => {
                cov!(ctx);
                if self.cat.users.is_empty() {
                    cov!(ctx);
                }
                Ok(0)
            }
            K::CheckTable | K::ChecksumTable | K::OptimizeTable | K::RepairTable | K::Rebuild => {
                cov!(ctx);
                let name = arg1.unwrap_or_default();
                match self.cat.table(&name) {
                    Some(t) => {
                        if t.rows.is_empty() {
                            cov!(ctx);
                        } else {
                            cov!(ctx);
                        }
                        Ok(0)
                    }
                    None => {
                        cov!(ctx);
                        Err(format!("table \"{name}\" does not exist"))
                    }
                }
            }
            K::ExecProcedure => {
                cov!(ctx);
                let name = arg1.unwrap_or_default();
                if self
                    .cat
                    .generic
                    .contains_key(&(ObjectKind::Procedure, name.to_ascii_lowercase()))
                {
                    cov!(ctx);
                    Ok(0)
                } else {
                    cov!(ctx);
                    Err(format!("procedure {name} does not exist"))
                }
            }
            K::Put => {
                cov!(ctx);
                self.settings.insert(
                    format!("put.{}", arg1.unwrap_or_default().to_ascii_lowercase()),
                    String::new(),
                );
                Ok(0)
            }
            K::Shutdown | K::Restart | K::KillStmt => {
                cov!(ctx);
                // Administrative statements are rejected in the harness (they
                // would kill the server under test).
                Err(format!("{} is not permitted", m.kind.name()))
            }
            K::FlushStmt
            | K::ResetPersist
            | K::ResetMaster
            | K::ResetSlave
            | K::PurgeBinaryLogs => {
                cov!(ctx);
                self.settings.retain(|k, _| !k.starts_with("cache."));
                Ok(0)
            }
            K::LoadData | K::LoadXml | K::ImportTable | K::BulkImport => {
                cov!(ctx);
                if self.cat.tables.is_empty() {
                    cov!(ctx);
                    return Err("no table to load into".into());
                }
                Ok(0)
            }
            K::Signal | K::Resignal => {
                cov!(ctx);
                Err("signal raised".into())
            }
            k if k.name().starts_with("SHOW") => {
                // All SHOW variants branch on catalog emptiness.
                ctx.hit_idx(site_id!(), k as u64);
                if self.cat.tables.is_empty() {
                    ctx.hit_idx(site_id!(), k as u64);
                } else if self.cat.total_rows() > 0 {
                    ctx.hit_idx(site_id!(), k as u64);
                }
                Ok(1)
            }
            _ => {
                // Default behaviour: a branch keyed by whether any schema
                // exists yet, so even exotic statements have order-sensitive
                // coverage.
                if self.cat.tables.is_empty() && self.cat.generic.is_empty() {
                    ctx.hit_idx(site_id!(), m.kind as u64);
                } else {
                    ctx.hit_idx(site_id!(), m.kind as u64);
                }
                Ok(0)
            }
        }
    }
}

/// Does running `cur` directly after `prev` exercise a distinct interaction
/// path? Yes when `prev` perturbed state `cur` consults: DDL invalidates the
/// plan cache consulted by queries and later DDL; DML dirties buffers read
/// by queries and maintenance commands; DCL changes the privilege cache;
/// TCL changes visibility; session/utility statements perturb settings used
/// by everything *except* other utility statements. Returns the interaction
/// class, or `None` for the shared fast path.
fn meaningful_interaction(prev: StmtKind, cur: StmtKind) -> Option<u16> {
    use lego_sqlast::kind::StmtCategory as C;
    let (pc, cc) = (prev.category(), cur.category());
    // The always-related core: DDL invalidates plans consulted by queries
    // and DML; DDL on the same object class re-validates; transaction
    // control changes visibility for everything.
    let core_related = match (pc, cc) {
        (C::Ddl, C::Dql) | (C::Ddl, C::Dml) => true,
        (C::Ddl, C::Ddl) => {
            matches!((prev, cur), (StmtKind::Ddl(_, a), StmtKind::Ddl(_, b)) if a == b)
        }
        (C::Dml, C::Dql) | (C::Dml, C::Dml) => true,
        (C::Dcl, C::Dql) | (C::Dcl, C::Dml) => true,
        (C::Tcl, _) | (_, C::Tcl) => true,
        _ => false,
    };
    // Beyond the core, relatedness is *sparse* at the statement-type level —
    // the paper's challenge C2: "many statement types are not closely
    // related, and forming them into a sequence does not cover new logic".
    // A deterministic ~12% of type pairs share hidden state (caches, flags,
    // object namespaces) and therefore interact; the rest take the shared
    // fast path and yield nothing.
    let related = core_related || {
        let h = (prev.code() as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(cur.code() as u64)
            .wrapping_mul(0xff51_afd7_ed55_8ccd);
        (h >> 16) % 100 < 12
    };
    if !related {
        return None;
    }
    // Fine class: distinguish the core relational kinds individually, the
    // long tail by category, mirroring how much dedicated interaction code
    // each has in a real engine.
    let fine = |k: StmtKind| -> u16 {
        match k {
            StmtKind::Ddl(verb, obj)
                if matches!(
                    obj,
                    ObjectKind::Table
                        | ObjectKind::View
                        | ObjectKind::MaterializedView
                        | ObjectKind::Index
                        | ObjectKind::Trigger
                        | ObjectKind::Rule
                ) =>
            {
                100 + (verb as u16) * 8 + obj as u16 % 8
            }
            StmtKind::Other(k2)
                if matches!(
                    k2,
                    StandaloneKind::Select
                        | StandaloneKind::Insert
                        | StandaloneKind::Update
                        | StandaloneKind::Delete
                        | StandaloneKind::With
                        | StandaloneKind::Copy
                        | StandaloneKind::Notify
                        | StandaloneKind::Begin
                        | StandaloneKind::Commit
                        | StandaloneKind::Rollback
                        | StandaloneKind::Grant
                        | StandaloneKind::Revoke
                        | StandaloneKind::Set
                        | StandaloneKind::Analyze
                        | StandaloneKind::Vacuum
                        | StandaloneKind::Truncate
                        | StandaloneKind::Explain
                ) =>
            {
                200 + k2 as u16
            }
            other => match other.category() {
                C::Ddl => 1,
                C::Dql => 2,
                C::Dml => 3,
                C::Dcl => 4,
                C::Tcl => 5,
                C::Util => 6,
            },
        }
    };
    Some(fine(prev))
}

/// Build a self-contained subquery runner over an immutable catalog snapshot.
fn make_subquery_runner<'a>(
    cat: &'a Catalog,
    prof: &'a Profile,
    user: &'a str,
) -> impl FnMut(&Query, &mut ExecCtx) -> Result<Vec<Row>, String> + 'a {
    move |q: &Query, ctx: &mut ExecCtx| {
        let env = QueryEnv::new(cat, prof, user);
        run_query(&env, ctx, q).map(|rs| rs.rows)
    }
}

fn infer_type(v: Option<&Value>) -> DataType {
    match v {
        Some(Value::Int(_)) | Some(Value::Bool(_)) => DataType::Int,
        Some(Value::Float(_)) => DataType::Float,
        Some(Value::Blob(_)) => DataType::Blob,
        _ => DataType::Text,
    }
}

fn result_to_table(name: &str, rs: &ResultSet) -> TableMeta {
    TableMeta {
        name: name.to_string(),
        temporary: true,
        columns: rs
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| ColumnMeta {
                name: if c.is_empty() { format!("column{}", i + 1) } else { c.clone() },
                ty: infer_type(rs.rows.first().and_then(|r| r.get(i))),
                not_null: false,
                unique: false,
                primary_key: false,
                default: None,
                check: None,
                references: None,
            })
            .collect(),
        checks: vec![],
        foreign_keys: vec![],
        rows: rs.rows.clone(),
        analyzed: false,
        clustered: None,
    }
}
