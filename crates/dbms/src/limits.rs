//! Per-case execution budgets.
//!
//! Real AFL harnesses kill a target that exceeds a wall-clock timeout; the
//! paper's SQUIRREL anecdote (§ II-C3) is a 945-statement seed that hung the
//! harness for 23 minutes. Wall-clock guards are nondeterministic, so we
//! bound the three quantities that actually make a case expensive —
//! statements executed, rows materialized, and expression recursion depth —
//! and surface a trip as [`Outcome::Aborted`](crate::Outcome::Aborted). The
//! limits are deterministic functions of the case, so two runs at the same
//! seed abort the same cases at the same points.

use serde::{Deserialize, Serialize};

/// Why a case was aborted mid-execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// The case executed more statements than [`Limits::max_statements`]
    /// (trigger/rule cascades count toward the same budget).
    StatementBudget,
    /// The case materialized more rows than [`Limits::max_rows`] across all
    /// scans, joins, sorts, and writes.
    RowBudget,
    /// Expression evaluation recursed deeper than [`Limits::max_eval_depth`].
    EvalDepth,
}

impl AbortReason {
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::StatementBudget => "statement_budget",
            AbortReason::RowBudget => "row_budget",
            AbortReason::EvalDepth => "eval_depth",
        }
    }
}

/// Per-case execution budgets, applied to every [`ExecCtx`](crate::ctx::ExecCtx).
///
/// Defaults are far above anything the generators produce (the paper's
/// `LEN = 5` sequences and ≤1024-row tables stay orders of magnitude below
/// them), so they only fire on pathological cases — which must never be
/// retained in the corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Limits {
    /// Maximum statements executed per case, including trigger and rule
    /// cascades (paper anecdote: a 945-statement seed; default 2048).
    pub max_statements: usize,
    /// Maximum rows materialized per case across all operators
    /// (default 1 Mi rows — a cross join of two full 1024-row tables).
    pub max_rows: usize,
    /// Maximum expression-evaluation recursion depth (default 128).
    pub max_eval_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_statements: 2048, max_rows: 1 << 20, max_eval_depth: 128 }
    }
}

impl Limits {
    /// Effectively-unlimited budgets (unit tests that stress one dimension).
    pub fn unbounded() -> Self {
        Limits { max_statements: usize::MAX, max_rows: usize::MAX, max_eval_depth: usize::MAX }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_have_distinct_names() {
        let names = [AbortReason::StatementBudget, AbortReason::RowBudget, AbortReason::EvalDepth]
            .map(AbortReason::name);
        assert_eq!(names.len(), {
            let mut v = names.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        });
    }

    #[test]
    fn defaults_are_generous() {
        let l = Limits::default();
        assert!(l.max_statements >= 1024);
        assert!(l.max_rows >= 1 << 20);
        assert!(l.max_eval_depth >= 64);
        assert!(Limits::unbounded().max_rows > l.max_rows);
    }
}
