//! Determinism contracts of oracle-enabled campaigns (acceptance criteria):
//! same seed → same reports, and the parallel path stays byte-for-byte
//! reproducible with oracles on. Runs against the clean engine (no injected
//! fault), so these tests coexist with the default multithreaded runner.

use lego::campaign::{
    run_campaign_durable, run_campaign_parallel_durable, run_campaign_parallel_with_oracles,
    run_campaign_with_oracles, Budget, FuzzEngine, ParallelOpts,
};
use lego::checkpoint::CheckpointCfg;
use lego::fuzzer::{Config, LegoFuzzer};
use lego::OracleConfig;
use lego_observe::Telemetry;
use lego_sqlast::Dialect;
use std::path::PathBuf;

fn lego_factory(
    dialect: Dialect,
    base_seed: u64,
) -> impl Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync {
    move |worker| {
        let rng_seed = base_seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let cfg = Config { rng_seed, ..Config::default() };
        Box::new(LegoFuzzer::new(dialect, cfg))
    }
}

fn opts(workers: usize) -> ParallelOpts {
    ParallelOpts { workers, sync_every: 4 }
}

const BUDGET: Budget = Budget { units: 20_000, snapshots: 10 };

#[test]
fn serial_oracle_campaign_is_deterministic() {
    let run = || {
        let cfg = Config { rng_seed: 0x0dac1e, ..Config::default() };
        let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
        run_campaign_with_oracles(
            &mut engine,
            Dialect::Postgres,
            BUDGET,
            &Telemetry::disabled(),
            OracleConfig::all(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert!(a.oracle_checks > 0, "campaign never reached an oracle-eligible query");
}

#[test]
fn workers1_oracle_campaign_matches_serial() {
    let cfg = Config { rng_seed: 0x5eed, ..Config::default() };
    let mut engine = LegoFuzzer::new(Dialect::MySql, cfg);
    let serial = run_campaign_with_oracles(
        &mut engine,
        Dialect::MySql,
        BUDGET,
        &Telemetry::disabled(),
        OracleConfig::all(),
    );
    let parallel = run_campaign_parallel_with_oracles(
        lego_factory(Dialect::MySql, 0x5eed),
        Dialect::MySql,
        BUDGET,
        opts(1),
        &Telemetry::disabled(),
        OracleConfig::all(),
    );
    assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
}

#[test]
fn three_worker_oracle_campaign_is_byte_for_byte_reproducible() {
    let run = || {
        run_campaign_parallel_with_oracles(
            lego_factory(Dialect::Postgres, 42),
            Dialect::Postgres,
            BUDGET,
            opts(3),
            &Telemetry::disabled(),
            OracleConfig::all(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.workers, 3);
}

/// Fresh per-test WAL directory: concurrent campaigns must never share
/// `worker00.wal`.
fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego_odet_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// All four oracles: the three logic oracles plus recovery.
fn all_plus_recovery() -> OracleConfig {
    OracleConfig { recovery: true, ..OracleConfig::all() }
}

#[test]
fn serial_recovery_campaign_is_deterministic() {
    let dir = wal_dir("serial");
    let run = || {
        let cfg = Config { rng_seed: 0x0dac1e, ..Config::default() };
        let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
        run_campaign_durable(
            &mut engine,
            Dialect::Postgres,
            BUDGET,
            &Telemetry::disabled(),
            all_plus_recovery(),
            &CheckpointCfg::disabled(),
            Some(&dir),
        )
        .expect("campaign completes")
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert!(a.oracle_checks > 0, "campaign never reached an oracle-eligible query");
    assert_eq!(a.durability_bugs, 0, "clean engine must report no durability bugs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workers1_recovery_campaign_matches_serial() {
    let dir = wal_dir("w1");
    let cfg = Config { rng_seed: 0x5eed, ..Config::default() };
    let mut engine = LegoFuzzer::new(Dialect::MySql, cfg);
    let serial = run_campaign_durable(
        &mut engine,
        Dialect::MySql,
        BUDGET,
        &Telemetry::disabled(),
        all_plus_recovery(),
        &CheckpointCfg::disabled(),
        Some(&dir),
    )
    .expect("serial campaign completes");
    let parallel = run_campaign_parallel_durable(
        lego_factory(Dialect::MySql, 0x5eed),
        Dialect::MySql,
        BUDGET,
        opts(1),
        &Telemetry::disabled(),
        all_plus_recovery(),
        &CheckpointCfg::disabled(),
        Some(&dir),
    )
    .expect("parallel campaign completes");
    assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn three_worker_recovery_campaign_is_byte_for_byte_reproducible() {
    let dir = wal_dir("w3");
    let run = || {
        run_campaign_parallel_durable(
            lego_factory(Dialect::Postgres, 42),
            Dialect::Postgres,
            BUDGET,
            opts(3),
            &Telemetry::disabled(),
            all_plus_recovery(),
            &CheckpointCfg::disabled(),
            Some(&dir),
        )
        .expect("campaign completes")
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.workers, 3);
    // Every worker journaled to its own file.
    for w in 0..3 {
        assert!(dir.join(format!("worker{w:02}.wal")).exists(), "worker {w} WAL missing");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_location_never_influences_findings() {
    // The WAL path is environment, not input: an explicit --wal-dir and the
    // default temp-dir placement must produce byte-identical reports.
    let dir = wal_dir("loc");
    let run = |d: Option<&PathBuf>| {
        let cfg = Config { rng_seed: 0xd15c, ..Config::default() };
        let mut engine = LegoFuzzer::new(Dialect::Comdb2, cfg);
        run_campaign_durable(
            &mut engine,
            Dialect::Comdb2,
            BUDGET,
            &Telemetry::disabled(),
            OracleConfig::recovery_only(),
            &CheckpointCfg::disabled(),
            d.map(|p| p.as_path()),
        )
        .expect("campaign completes")
    };
    let explicit = run(Some(&dir));
    let default = run(None);
    assert_eq!(explicit.deterministic_json(), default.deterministic_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oracles_disabled_is_byte_identical_to_the_plain_campaign() {
    // The oracle hook must be a strict no-op when disabled: the pre-oracle
    // entry points are wrappers passing `OracleConfig::disabled()`.
    let mk = || {
        let cfg = Config { rng_seed: 7, ..Config::default() };
        LegoFuzzer::new(Dialect::Comdb2, cfg)
    };
    let plain = lego::run_campaign(&mut mk(), Dialect::Comdb2, BUDGET);
    let disabled = run_campaign_with_oracles(
        &mut mk(),
        Dialect::Comdb2,
        BUDGET,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
    );
    assert_eq!(plain.deterministic_json(), disabled.deterministic_json());
}
