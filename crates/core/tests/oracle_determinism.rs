//! Determinism contracts of oracle-enabled campaigns (acceptance criteria):
//! same seed → same reports, and the parallel path stays byte-for-byte
//! reproducible with oracles on. Runs against the clean engine (no injected
//! fault), so these tests coexist with the default multithreaded runner.

use lego::campaign::{
    run_campaign_parallel_with_oracles, run_campaign_with_oracles, Budget, FuzzEngine, ParallelOpts,
};
use lego::fuzzer::{Config, LegoFuzzer};
use lego::OracleConfig;
use lego_observe::Telemetry;
use lego_sqlast::Dialect;

fn lego_factory(
    dialect: Dialect,
    base_seed: u64,
) -> impl Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync {
    move |worker| {
        let rng_seed = base_seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let cfg = Config { rng_seed, ..Config::default() };
        Box::new(LegoFuzzer::new(dialect, cfg))
    }
}

fn opts(workers: usize) -> ParallelOpts {
    ParallelOpts { workers, sync_every: 4 }
}

const BUDGET: Budget = Budget { units: 20_000, snapshots: 10 };

#[test]
fn serial_oracle_campaign_is_deterministic() {
    let run = || {
        let cfg = Config { rng_seed: 0x0dac1e, ..Config::default() };
        let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
        run_campaign_with_oracles(
            &mut engine,
            Dialect::Postgres,
            BUDGET,
            &Telemetry::disabled(),
            OracleConfig::all(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert!(a.oracle_checks > 0, "campaign never reached an oracle-eligible query");
}

#[test]
fn workers1_oracle_campaign_matches_serial() {
    let cfg = Config { rng_seed: 0x5eed, ..Config::default() };
    let mut engine = LegoFuzzer::new(Dialect::MySql, cfg);
    let serial = run_campaign_with_oracles(
        &mut engine,
        Dialect::MySql,
        BUDGET,
        &Telemetry::disabled(),
        OracleConfig::all(),
    );
    let parallel = run_campaign_parallel_with_oracles(
        lego_factory(Dialect::MySql, 0x5eed),
        Dialect::MySql,
        BUDGET,
        opts(1),
        &Telemetry::disabled(),
        OracleConfig::all(),
    );
    assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
}

#[test]
fn three_worker_oracle_campaign_is_byte_for_byte_reproducible() {
    let run = || {
        run_campaign_parallel_with_oracles(
            lego_factory(Dialect::Postgres, 42),
            Dialect::Postgres,
            BUDGET,
            opts(3),
            &Telemetry::disabled(),
            OracleConfig::all(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.workers, 3);
}

#[test]
fn oracles_disabled_is_byte_identical_to_the_plain_campaign() {
    // The oracle hook must be a strict no-op when disabled: the pre-oracle
    // entry points are wrappers passing `OracleConfig::disabled()`.
    let mk = || {
        let cfg = Config { rng_seed: 7, ..Config::default() };
        LegoFuzzer::new(Dialect::Comdb2, cfg)
    };
    let plain = lego::run_campaign(&mut mk(), Dialect::Comdb2, BUDGET);
    let disabled = run_campaign_with_oracles(
        &mut mk(),
        Dialect::Comdb2,
        BUDGET,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
    );
    assert_eq!(plain.deterministic_json(), disabled.deterministic_json());
}
