//! The analyzer-vs-engine conformance oracle, end to end.
//!
//! The analyzer and the engine agree on everything the agreement suite
//! covers, so a real divergence cannot be provoked from the outside. Instead
//! the planted `overaccept_commit` analyzer fault (see
//! `lego_sqlsema::faults`) makes the binder wrongly accept `COMMIT` outside
//! a transaction; the engine then rejects the statement at runtime and the
//! campaign must surface the disagreement as a `SemaDivergence` finding —
//! deduplicated by fingerprint and delta-debugged like every other logic
//! bug.
//!
//! Kept in its own test binary: the fault switch is global to the process.

use lego::campaign::{run_campaign_sema, Budget, FuzzEngine};
use lego::checkpoint::CheckpointCfg;
use lego::observe::Telemetry;
use lego_dbms::ExecReport;
use lego_oracle::{OracleConfig, OracleKind};
use lego_sqlast::{Dialect, TestCase};
use lego_sqlsema::faults::FaultGuard;
use std::sync::Arc;

/// Hands out a fixed cycle of hand-written cases — no RNG, no corpus — so
/// the campaign sees exactly the fixtures below, repeatedly.
struct Fixtures {
    cases: Vec<Arc<TestCase>>,
    next: usize,
}

impl Fixtures {
    fn new(scripts: &[&str]) -> Self {
        let cases = scripts
            .iter()
            .map(|sql| Arc::new(lego_sqlparser::parse_script(sql).expect("fixture must parse")))
            .collect();
        Self { cases, next: 0 }
    }
}

impl FuzzEngine for Fixtures {
    fn name(&self) -> &'static str {
        "fixtures"
    }
    fn next_case(&mut self) -> Arc<TestCase> {
        let case = self.cases[self.next % self.cases.len()].clone();
        self.next += 1;
        case
    }
    fn feedback(&mut self, _case: &Arc<TestCase>, _report: &ExecReport, _new_coverage: bool) {}
    fn corpus(&self) -> Vec<Arc<TestCase>> {
        self.cases.clone()
    }
}

#[test]
fn planted_overacceptance_yields_exactly_one_reduced_divergence_finding() {
    let _fault = FaultGuard::enable_overaccept_commit();
    // Two healthy fixtures plus the divergent one, which the cycle serves
    // many times over the budget — the fingerprint dedup must collapse every
    // repeat (and the padding statements must not split the identity).
    let mut engine = Fixtures::new(&[
        "CREATE TABLE t0 (c0 INT); INSERT INTO t0 (c0) VALUES (1); COMMIT; SELECT c0 FROM t0;",
        "CREATE TABLE t1 (c0 INT); SELECT c0 FROM t1;",
        "CREATE TABLE t2 (c0 INT); INSERT INTO t2 (c0) VALUES (7); COMMIT; SELECT c0 FROM t2;",
    ]);
    let stats = run_campaign_sema(
        &mut engine,
        Dialect::Postgres,
        Budget::units(2_000),
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
        false,
        true,
    )
    .expect("campaign completes");

    assert_eq!(
        stats.sema_divergences,
        1,
        "expected exactly one deduped divergence, got {} ({} logic bugs total)",
        stats.sema_divergences,
        stats.logic_bugs.len()
    );
    let finding = stats
        .logic_bugs
        .iter()
        .find(|f| f.bug.oracle == OracleKind::Sema)
        .expect("divergence finding rides the logic-bug channel");
    assert_eq!(finding.bug.query, "COMMIT", "divergence must point at the lying verdict");
    assert!(
        finding.bug.detail.contains("engine rejected"),
        "direction must be analyzer-accepts/engine-rejects: {}",
        finding.bug.detail
    );
    // Delta debugging keeps the disagreement while shedding the scaffold:
    // `COMMIT` alone still diverges, so nothing else may survive.
    assert_eq!(finding.reduced_sql.trim(), "COMMIT;", "reducer kept scaffold statements");
    // The un-reduced reproducer is one of the two divergent fixtures.
    assert!(finding.case_sql.contains("COMMIT"), "case_sql lost the divergent statement");
}

#[test]
fn healthy_analyzer_reports_no_divergence_on_the_same_fixtures() {
    // No FaultGuard: the analyzer honestly rejects the bare COMMITs, so the
    // cases are skipped (or audited and found to *agree*: the analyzer said
    // Reject and the engine erred) and no finding appears.
    let mut engine = Fixtures::new(&[
        "CREATE TABLE t0 (c0 INT); INSERT INTO t0 (c0) VALUES (1); COMMIT; SELECT c0 FROM t0;",
        "CREATE TABLE t1 (c0 INT); SELECT c0 FROM t1;",
    ]);
    let stats = run_campaign_sema(
        &mut engine,
        Dialect::Postgres,
        Budget::units(2_000),
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
        false,
        true,
    )
    .expect("campaign completes");
    assert_eq!(stats.sema_divergences, 0);
    assert!(stats.sema_rejects > 0, "the bare COMMIT fixture must be statically rejected");
    assert!(stats.sema_skipped_stmts > 0);
}
