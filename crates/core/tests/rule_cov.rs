//! Contracts of the grammar-rule coverage dimension (`--rule-cov`).
//!
//! The tentpole promises:
//! * **Off is free** — with `rule_cov == false` the `_full` entry points are
//!   byte-identical to the pre-existing `_durable` paths (same exploration
//!   order, same findings, same deterministic report).
//! * **On is deterministic** — serial reruns, `workers == 1` vs serial, and
//!   N-worker reruns are byte-identical; checkpoint/resume reproduces the
//!   uninterrupted run; resuming under a flipped flag is rejected.
//! * **On steers** — rule novelty admits corpus entries the branch map and
//!   sequence feedback alone reject.

use lego::campaign::{
    run_campaign_durable, run_campaign_full, run_campaign_parallel_durable,
    run_campaign_parallel_full, Budget, FuzzEngine, ParallelOpts,
};
use lego::checkpoint::{load_campaign_checkpoint, CheckpointCfg};
use lego::fuzzer::{Config, LegoFuzzer};
use lego::observe::Telemetry;
use lego_dbms::ExecReport;
use lego_oracle::OracleConfig;
use lego_sqlast::{Dialect, TestCase};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego_rule_cov_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Serial campaign with the rule-coverage flag, everything else disabled.
fn serial(engine: &mut dyn FuzzEngine, rule_cov: bool) -> lego::CampaignStats {
    run_campaign_full(
        engine,
        Dialect::Postgres,
        Budget::units(20_000),
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
        rule_cov,
    )
    .expect("campaign without checkpointing cannot fail")
}

fn factory(base_seed: u64, rule_cov: bool) -> impl Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync {
    move |worker| {
        let rng_seed = base_seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let cfg = Config { rng_seed, rule_cov, ..Config::default() };
        Box::new(LegoFuzzer::new(Dialect::Postgres, cfg))
    }
}

#[test]
fn off_flag_is_byte_identical_to_the_durable_path() {
    let cfg = Config { rng_seed: 0x1e60, ..Config::default() };
    let mut a = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
    let durable = run_campaign_durable(
        &mut a,
        Dialect::Postgres,
        Budget::units(20_000),
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
    )
    .unwrap();
    let mut b = LegoFuzzer::new(Dialect::Postgres, cfg);
    let full_off = serial(&mut b, false);
    assert_eq!(
        durable.deterministic_json(),
        full_off.deterministic_json(),
        "rule_cov=false must be byte-identical to the pre-existing path"
    );
    assert_eq!(full_off.rule_branches, 0, "no rule map is kept when the dimension is off");
}

#[test]
fn rule_cov_campaigns_are_deterministic_and_cover_rules() {
    let run = || {
        let cfg = Config { rng_seed: 0x121e, rule_cov: true, ..Config::default() };
        let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
        serial(&mut engine, true)
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json(), "serial rerun diverged");
    assert!(a.rule_branches > 10, "rule map barely populated: {}", a.rule_branches);
}

#[test]
fn workers1_parallel_full_is_byte_identical_to_serial_full() {
    let cfg = Config { rng_seed: 0x5eed, rule_cov: true, ..Config::default() };
    let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
    let serial_stats = serial(&mut engine, true);
    let parallel = run_campaign_parallel_full(
        factory(0x5eed, true),
        Dialect::Postgres,
        Budget::units(20_000),
        ParallelOpts { workers: 1, sync_every: 4 },
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
        true,
    )
    .unwrap();
    assert_eq!(serial_stats.deterministic_json(), parallel.deterministic_json());
}

#[test]
fn three_worker_rule_cov_rerun_is_byte_identical() {
    let run = |rule_cov: bool| {
        run_campaign_parallel_full(
            factory(42, rule_cov),
            Dialect::Postgres,
            Budget::units(24_000),
            ParallelOpts { workers: 3, sync_every: 4 },
            &Telemetry::disabled(),
            OracleConfig::disabled(),
            &CheckpointCfg::disabled(),
            None,
            rule_cov,
        )
        .unwrap()
    };
    let a = run(true);
    let b = run(true);
    assert_eq!(a.deterministic_json(), b.deterministic_json(), "3-worker rerun diverged");
    assert!(a.rule_branches > 10, "merged rule map barely populated: {}", a.rule_branches);
    // And the off flag stays identical to the pre-existing parallel path.
    let off = run(false);
    let durable = run_campaign_parallel_durable(
        factory(42, false),
        Dialect::Postgres,
        Budget::units(24_000),
        ParallelOpts { workers: 3, sync_every: 4 },
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
    )
    .unwrap();
    assert_eq!(off.deterministic_json(), durable.deterministic_json());
}

/// Wraps LEGO and records the campaign's admit verdict for every executed
/// case, so two campaigns' admission streams can be compared case by case.
struct Recording {
    inner: LegoFuzzer,
    log: Vec<(String, bool)>,
}

impl Recording {
    fn new(cfg: Config) -> Self {
        Self { inner: LegoFuzzer::new(Dialect::Postgres, cfg), log: Vec::new() }
    }
}

impl FuzzEngine for Recording {
    fn name(&self) -> &'static str {
        "recording"
    }
    fn next_case(&mut self) -> Arc<TestCase> {
        self.inner.next_case()
    }
    fn feedback(&mut self, case: &Arc<TestCase>, report: &ExecReport, new_coverage: bool) {
        self.log.push((case.to_sql(), new_coverage));
        self.inner.feedback(case, report, new_coverage);
    }
    fn rule_feedback(&mut self, case: &Arc<TestCase>, new_rule_edges: usize) {
        self.inner.rule_feedback(case, new_rule_edges);
    }
    fn corpus(&self) -> Vec<Arc<TestCase>> {
        self.inner.corpus()
    }
}

#[test]
fn rule_novelty_admits_cases_the_branch_map_alone_rejects() {
    // Same engine seed and engine-side config (rule_cov off in BOTH engines,
    // so the generated case streams are identical up to the first divergent
    // admission): the only difference is the campaign-level rule map.
    let cfg = Config { rng_seed: 0xad17, ..Config::default() };
    let mut off = Recording::new(cfg.clone());
    let _ = serial(&mut off, false);
    let mut on = Recording::new(cfg);
    let stats_on = serial(&mut on, true);
    assert!(stats_on.rule_branches > 0);

    // Walk the common prefix: identical cases, identical verdicts — until
    // the rule map admits a case the branch map rejected. After that point
    // the corpora (and therefore the case streams) legitimately diverge.
    let mut diverged = None;
    for (i, (a, b)) in off.log.iter().zip(on.log.iter()).enumerate() {
        assert_eq!(a.0, b.0, "case streams diverged before any admission did (exec {i})");
        if a.1 != b.1 {
            diverged = Some((i, a.1, b.1));
            break;
        }
    }
    let (exec, off_verdict, on_verdict) =
        diverged.expect("rule coverage never changed an admission verdict within the budget");
    assert!(
        !off_verdict && on_verdict,
        "first divergence at exec {exec} must be a rule-novelty admit (off={off_verdict}, on={on_verdict})"
    );
}

fn truncate_checkpoints(dir: &std::path::Path, worker: usize, keep: usize) {
    for seq in (keep + 1).. {
        let path = dir.join(format!("worker{worker:02}_ckpt{seq:04}.json"));
        if !path.exists() {
            break;
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn serial_rule_cov_resume_is_byte_identical() {
    let dir = tmpdir("resume");
    let budget = Budget::units(20_000);
    let cadence = 6_000;
    let cfg = Config { rng_seed: 0x1e60, rule_cov: true, ..Config::default() };

    let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
    let full = run_campaign_full(
        &mut engine,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: Some(dir.clone()), resume: None },
        None,
        true,
    )
    .expect("full run completes");

    truncate_checkpoints(&dir, 0, 1);
    let resume = load_campaign_checkpoint(&dir).expect("checkpoint loads");
    assert!(resume.meta.rule_cov, "meta must record the rule-coverage flag");
    assert!(
        !resume.workers[0].rule_coverage.is_empty(),
        "worker checkpoint must persist the rule map"
    );

    // Resuming under the opposite flag would change the exploration order;
    // the campaign must refuse rather than silently diverge.
    let mut wrong = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
    let err = run_campaign_full(
        &mut wrong,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: None, resume: Some(resume) },
        None,
        false,
    )
    .expect_err("flag mismatch must be rejected");
    assert!(err.contains("rule_cov"), "unhelpful mismatch error: {err}");

    let resume = load_campaign_checkpoint(&dir).expect("checkpoint reloads");
    let mut fresh = LegoFuzzer::new(Dialect::Postgres, cfg);
    let resumed = run_campaign_full(
        &mut fresh,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: None, resume: Some(resume) },
        None,
        true,
    )
    .expect("resumed run completes");
    assert_eq!(
        full.deterministic_json(),
        resumed.deterministic_json(),
        "rule-cov resume diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
