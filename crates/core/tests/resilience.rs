//! Fault-tolerance contracts of the campaign supervisor.
//!
//! Three promises are exercised end to end, against *actually* faulty
//! engines (via the `lego-dbms` planted-fault switches):
//!
//! 1. **Panic isolation** — an engine panic mid-case becomes a recorded,
//!    deduplicated crash finding; the campaign runs to budget exhaustion.
//! 2. **Hang guards** — a spinning case trips its per-case execution budget,
//!    is counted and reported, and is never admitted to the corpus.
//! 3. **Worker-death tolerance** — a worker thread dying outside the
//!    per-case isolation boundary forfeits only its own budget slice; the
//!    join merges the survivors.
//!
//! Plus the checkpoint/resume determinism guarantee: a campaign interrupted
//! at checkpoint N and resumed produces the byte-identical deterministic
//! report of an uninterrupted run with the same checkpoint cadence.
//!
//! The fault switches are process-global, so every test that flips one
//! holds `FAULT_LOCK` for its whole body (the cargo test harness runs tests
//! in this binary on multiple threads).

use lego::campaign::{
    run_campaign, run_campaign_durable, run_campaign_parallel_resilient, run_campaign_resilient,
    Budget, FuzzEngine, ParallelOpts,
};
use lego::checkpoint::{load_campaign_checkpoint, CheckpointCfg};
use lego::fuzzer::{Config, LegoFuzzer};
use lego::observe::{Event, MemorySink, Telemetry};
use lego_dbms::{ExecReport, PANIC_BUG_ID};
use lego_oracle::OracleConfig;
use lego_sqlast::{Dialect, TestCase};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> MutexGuard<'static, ()> {
    // A failed fault test must not wedge the others.
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego_resilience_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic engine that cycles through a fixed script of cases and
/// records the admission verdict (`new_coverage`) each one received.
struct ScriptedEngine {
    cases: Vec<Arc<TestCase>>,
    next: usize,
    verdicts: Vec<(String, bool)>,
}

impl ScriptedEngine {
    fn new(scripts: &[&str]) -> Self {
        let cases = scripts
            .iter()
            .map(|s| Arc::new(lego_sqlparser::parse_script(s).expect("scripted case parses")))
            .collect();
        Self { cases, next: 0, verdicts: Vec::new() }
    }
}

impl FuzzEngine for ScriptedEngine {
    fn name(&self) -> &'static str {
        "SCRIPTED"
    }

    fn next_case(&mut self) -> Arc<TestCase> {
        let case = Arc::clone(&self.cases[self.next % self.cases.len()]);
        self.next += 1;
        case
    }

    fn feedback(&mut self, case: &Arc<TestCase>, _report: &ExecReport, new_coverage: bool) {
        self.verdicts.push((case.to_sql(), new_coverage));
    }

    fn corpus(&self) -> Vec<Arc<TestCase>> {
        Vec::new()
    }
}

/// An engine that panics on its `n`-th case — *outside* the per-case
/// isolation boundary, modelling a bug in the fuzzer itself rather than in
/// the DBMS under test.
struct DyingEngine {
    inner: ScriptedEngine,
    dies_at: usize,
}

impl FuzzEngine for DyingEngine {
    fn name(&self) -> &'static str {
        "DYING"
    }

    fn next_case(&mut self) -> Arc<TestCase> {
        if self.inner.next >= self.dies_at {
            panic!("injected worker death");
        }
        self.inner.next_case()
    }

    fn feedback(&mut self, case: &Arc<TestCase>, report: &ExecReport, new_coverage: bool) {
        self.inner.feedback(case, report, new_coverage);
    }

    fn corpus(&self) -> Vec<Arc<TestCase>> {
        Vec::new()
    }
}

const SCRIPT: [&str; 4] = [
    "CREATE TABLE t (a INT);",
    "INSERT INTO t VALUES (1);",
    "CREATE TRIGGER x1 AFTER INSERT ON t FOR EACH ROW DELETE FROM t;",
    "SELECT * FROM t;",
];

#[test]
fn engine_panic_becomes_a_recorded_finding_and_campaign_survives() {
    let _lock = fault_lock();
    let _fault = lego_dbms::faults::FaultGuard::enable_panic_on_create_trigger();
    let mut engine = ScriptedEngine::new(&SCRIPT);
    let stats = run_campaign(&mut engine, Dialect::Postgres, Budget::units(150));

    // The campaign survived to budget exhaustion and recorded exactly one
    // deduplicated panic finding (the same panic re-fires every cycle).
    assert!(stats.units >= 150, "campaign stopped early: {} units", stats.units);
    assert_eq!(stats.bugs.len(), 1, "expected one deduplicated panic finding");
    let bug = &stats.bugs[0];
    assert_eq!(bug.crash.bug_id, PANIC_BUG_ID);
    assert!(bug.crash.identifier.contains("PANIC"), "identifier: {}", bug.crash.identifier);
    // Panic findings skip delta debugging: the reproducer is the whole case.
    assert_eq!(bug.reduced_sql, bug.case_sql);
    // A panicking case is never admitted.
    assert!(engine
        .verdicts
        .iter()
        .filter(|(sql, _)| sql.contains("TRIGGER"))
        .all(|&(_, admitted)| !admitted));
}

#[test]
fn panic_campaigns_are_deterministic_across_worker_counts() {
    let _lock = fault_lock();
    let _fault = lego_dbms::faults::FaultGuard::enable_panic_on_create_trigger();
    let factory =
        || |_w: usize| Box::new(ScriptedEngine::new(&SCRIPT)) as Box<dyn FuzzEngine + Send>;
    for workers in [1usize, 3] {
        let opts = ParallelOpts { workers, sync_every: 4 };
        let run = || {
            run_campaign_parallel_resilient(
                factory(),
                Dialect::Postgres,
                Budget::units(900),
                opts,
                &Telemetry::disabled(),
                OracleConfig::disabled(),
                &CheckpointCfg::disabled(),
            )
            .expect("campaign completes")
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.deterministic_json(),
            b.deterministic_json(),
            "nondeterministic panic campaign at workers={workers}"
        );
        assert_eq!(a.bugs.len(), 1, "workers={workers}");
        assert_eq!(a.bugs[0].crash.bug_id, PANIC_BUG_ID);
        assert_eq!(a.workers_lost, 0);
    }
}

#[test]
fn hang_guard_aborts_spinning_cases_and_never_retains_them() {
    let _lock = fault_lock();
    let _fault = lego_dbms::faults::FaultGuard::enable_spin_on_create_trigger();
    let mem = Arc::new(MemorySink::new());
    let tel = Telemetry::builder().sink(mem.clone()).seed(1).build();
    let mut engine = ScriptedEngine::new(&SCRIPT);
    let stats = run_campaign_resilient(
        &mut engine,
        Dialect::Postgres,
        Budget::units(400),
        &tel,
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
    )
    .expect("campaign completes");

    assert!(stats.cases_aborted > 0, "hang guard never fired");
    assert!(stats.bugs.is_empty(), "a hang is not a crash");
    // Every abort surfaced in telemetry with its budget reason.
    let aborts: Vec<String> = mem
        .snapshot()
        .iter()
        .filter_map(|e| match e {
            Event::CaseAborted { reason, .. } => Some(reason.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(aborts.len(), stats.cases_aborted);
    assert!(aborts.iter().all(|r| r == "row_budget"), "reasons: {aborts:?}");
    // Aborted cases are never admitted to the corpus.
    assert!(engine
        .verdicts
        .iter()
        .filter(|(sql, _)| sql.contains("TRIGGER"))
        .all(|&(_, admitted)| !admitted));
}

#[test]
fn dead_worker_forfeits_only_its_own_slice() {
    // No fault switch involved: the death is injected in the engine.
    let mem = Arc::new(MemorySink::new());
    let tel = Telemetry::builder().sink(mem.clone()).seed(1).build();
    let factory = |w: usize| -> Box<dyn FuzzEngine + Send> {
        if w == 1 {
            Box::new(DyingEngine { inner: ScriptedEngine::new(&SCRIPT), dies_at: 5 })
        } else {
            Box::new(ScriptedEngine::new(&SCRIPT))
        }
    };
    let stats = run_campaign_parallel_resilient(
        factory,
        Dialect::Postgres,
        Budget::units(900),
        ParallelOpts { workers: 3, sync_every: 2 },
        &tel,
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
    )
    .expect("campaign must survive a dead worker");

    assert_eq!(stats.workers_lost, 1);
    assert_eq!(stats.fuzzer, "SCRIPTED", "fuzzer name comes from a survivor");
    // Both survivors ran their full slices (300 units each).
    assert!(stats.units >= 600, "survivors forfeited work: {} units", stats.units);
    assert!(stats.branches > 0);
    let deaths: Vec<(usize, String)> = mem
        .snapshot()
        .iter()
        .filter_map(|e| match e {
            Event::WorkerDied { worker, error } => Some((*worker, error.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(deaths.len(), 1);
    assert_eq!(deaths[0].0, 1);
    assert!(deaths[0].1.contains("injected worker death"), "error: {}", deaths[0].1);
}

/// Delete every checkpoint file of `worker` with a sequence number above
/// `keep`, simulating a campaign killed shortly after checkpoint `keep`.
fn truncate_checkpoints(dir: &std::path::Path, worker: usize, keep: usize) {
    for seq in (keep + 1).. {
        let path = dir.join(format!("worker{worker:02}_ckpt{seq:04}.json"));
        if !path.exists() {
            break;
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn serial_resume_is_byte_identical_to_uninterrupted_run() {
    let dir = tmpdir("serial");
    let budget = Budget::units(20_000);
    let cfg = Config { rng_seed: 0x1e60, ..Config::default() };
    let cadence = 6_000;

    // Uninterrupted run, checkpointing as it goes.
    let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
    let full = run_campaign_resilient(
        &mut engine,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: Some(dir.clone()), resume: None },
    )
    .expect("full run completes");

    // Simulate a crash shortly after the first checkpoint, then resume.
    truncate_checkpoints(&dir, 0, 1);
    let resume = load_campaign_checkpoint(&dir).expect("checkpoint loads");
    assert_eq!(resume.workers[0].seq, 1);
    let mut fresh = LegoFuzzer::new(Dialect::Postgres, cfg);
    let resumed = run_campaign_resilient(
        &mut fresh,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: None, resume: Some(resume) },
    )
    .expect("resumed run completes");

    assert_eq!(
        full.deterministic_json(),
        resumed.deterministic_json(),
        "resume diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_resume_is_byte_identical_to_uninterrupted_run() {
    let dir = tmpdir("parallel");
    let budget = Budget::units(30_000);
    let workers = 3;
    let opts = ParallelOpts { workers, sync_every: 4 };
    let cadence = 3_000;
    let factory = |w: usize| -> Box<dyn FuzzEngine + Send> {
        let rng_seed = 0x1e60 ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Box::new(LegoFuzzer::new(Dialect::Postgres, Config { rng_seed, ..Config::default() }))
    };

    let full = run_campaign_parallel_resilient(
        factory,
        Dialect::Postgres,
        budget,
        opts,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: Some(dir.clone()), resume: None },
    )
    .expect("full run completes");

    // Kill the campaign "after" every worker's first checkpoint and resume.
    for w in 0..workers {
        truncate_checkpoints(&dir, w, 1);
    }
    let resume = load_campaign_checkpoint(&dir).expect("checkpoint loads");
    assert!(resume.workers.iter().all(|w| w.seq == 1));
    let resumed = run_campaign_parallel_resilient(
        factory,
        Dialect::Postgres,
        budget,
        opts,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: None, resume: Some(resume) },
    )
    .expect("resumed run completes");

    assert_eq!(
        full.deterministic_json(),
        resumed.deterministic_json(),
        "parallel resume diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serial_resume_with_recovery_oracle_is_byte_identical() {
    // Checkpoint/resume must be WAL-aware: a resumed recovery campaign
    // re-creates its per-worker WAL from scratch on every oracle check, so
    // the report is byte-identical to the uninterrupted run even though the
    // interruption discarded the WAL file mid-flight.
    let ckpt_dir = tmpdir("recovery_ckpt");
    let wal_a = tmpdir("recovery_wal_a");
    let wal_b = tmpdir("recovery_wal_b");
    let budget = Budget::units(20_000);
    let cfg = Config { rng_seed: 0x1e60, ..Config::default() };
    let cadence = 6_000;
    let oracles = OracleConfig::recovery_only();

    let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
    let full = run_campaign_durable(
        &mut engine,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        oracles,
        &CheckpointCfg { every_units: cadence, dir: Some(ckpt_dir.clone()), resume: None },
        Some(&wal_a),
    )
    .expect("full run completes");

    // Simulate a crash shortly after the first checkpoint — which also
    // tears down the WAL directory — then resume into a fresh one.
    truncate_checkpoints(&ckpt_dir, 0, 1);
    let _ = std::fs::remove_dir_all(&wal_a);
    let resume = load_campaign_checkpoint(&ckpt_dir).expect("checkpoint loads");
    assert_eq!(resume.workers[0].seq, 1);
    // The checkpoint recorded that the recovery oracle was on.
    assert_eq!(resume.meta.oracles, (false, false, false, true));
    let mut fresh = LegoFuzzer::new(Dialect::Postgres, cfg);
    let resumed = run_campaign_durable(
        &mut fresh,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        oracles,
        &CheckpointCfg { every_units: cadence, dir: None, resume: Some(resume) },
        Some(&wal_b),
    )
    .expect("resumed run completes");

    assert_eq!(
        full.deterministic_json(),
        resumed.deterministic_json(),
        "recovery-oracle resume diverged from the uninterrupted run"
    );
    assert!(full.oracle_checks > 0, "campaign never reached an oracle-eligible query");
    for dir in [&ckpt_dir, &wal_b] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn resume_rejects_a_mismatched_worker_count() {
    let dir = tmpdir("mismatch");
    let factory = |w: usize| -> Box<dyn FuzzEngine + Send> {
        let rng_seed = 7 ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Box::new(LegoFuzzer::new(Dialect::Postgres, Config { rng_seed, ..Config::default() }))
    };
    run_campaign_parallel_resilient(
        factory,
        Dialect::Postgres,
        Budget::units(6_000),
        ParallelOpts { workers: 2, sync_every: 4 },
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: 2_000, dir: Some(dir.clone()), resume: None },
    )
    .expect("seeding run completes");
    let resume = load_campaign_checkpoint(&dir).expect("checkpoint loads");
    let err = run_campaign_parallel_resilient(
        factory,
        Dialect::Postgres,
        Budget::units(6_000),
        ParallelOpts { workers: 3, sync_every: 4 },
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: 2_000, dir: None, resume: Some(resume) },
    )
    .unwrap_err();
    assert!(err.contains("worker count"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
