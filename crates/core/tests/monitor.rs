//! Live monitoring plane contracts.
//!
//! The monitoring plane (HTTP server, SSE broadcast, time-series recorder,
//! trace collector) must be a pure *read-side* observer: a campaign served
//! live is byte-identical to the same campaign unobserved, `/status`
//! answers agree with the final `CampaignStats`, and a campaign that dies
//! still flushes its sinks.

use lego::campaign::{
    run_campaign, run_campaign_observed, run_campaign_parallel_resilient, Budget, CampaignStats,
    FuzzEngine, ParallelOpts,
};
use lego::checkpoint::CheckpointCfg;
use lego::fuzzer::{Config, LegoFuzzer};
use lego::observe::http::MonitorConfig;
use lego::observe::{
    BroadcastSink, Event, EventSink, MetricsRegistry, MonitorServer, Telemetry, TimeSeriesRecorder,
    TraceCollector,
};
use lego::OracleConfig;
use lego_dbms::ExecReport;
use lego_sqlast::{Dialect, TestCase};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego_monitor_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

fn serial_stats(seed: u64, budget: Budget, tel: &Telemetry) -> CampaignStats {
    let cfg = Config { rng_seed: seed, ..Config::default() };
    let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
    run_campaign_observed(&mut engine, Dialect::Postgres, budget, tel)
}

#[test]
fn status_and_metrics_agree_with_campaign_stats() {
    let budget = Budget::execs(200);
    let broadcast = Arc::new(BroadcastSink::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let tel = Telemetry::builder()
        .metrics(metrics.clone())
        .live_sink(broadcast.clone())
        .seed(0x5eed)
        .build();
    let config = MonitorConfig {
        run_name: "monitor-test".into(),
        workers: 1,
        seed: 0x5eed,
        extra: vec![("dialect".into(), "postgres".into())],
    };
    let mut server =
        MonitorServer::bind("127.0.0.1:0", tel.clone(), Some(broadcast), config).unwrap();
    let addr = server.local_addr();

    assert!(get(addr, "/healthz").ends_with("ok\n"));

    let stats = serial_stats(0x5eed, budget, &tel);

    // The vendored serde has no JSON parser, so the consistency check pins
    // exact substrings of the handcrafted /status JSON.
    let status = get(addr, "/status");
    assert!(status.contains("\"run\":\"monitor-test\""), "{status}");
    assert!(status.contains(&format!("\"execs\":{}", stats.execs)), "{status}");
    assert!(status.contains(&format!("\"branches\":{}", stats.branches)), "{status}");
    assert!(status.contains(&format!("\"corpus\":{}", stats.corpus_size)), "{status}");
    assert!(status.contains(&format!("\"bugs\":{}", stats.bugs.len())), "{status}");
    assert!(status.contains(&format!("\"logic_bugs\":{}", stats.logic_bugs.len())), "{status}");
    assert!(status.contains("\"stage_profile\":{"), "{status}");
    assert!(status.contains("\"stage\":\"execution\""), "{status}");

    let prom = get(addr, "/metrics");
    assert!(prom.contains(&format!("lego_execs_total {}", stats.execs)), "{prom}");
    assert!(prom.contains("# TYPE lego_exec_latency_us histogram"), "{prom}");
    assert!(prom.contains("lego_exec_latency_us_count"), "{prom}");
    assert_eq!(
        metrics.histogram_stats("lego_exec_latency_us").map(|(_, n)| n),
        Some(stats.execs as u64),
        "one latency observation per exec"
    );

    server.shutdown();
}

#[test]
fn full_monitoring_plane_does_not_perturb_the_campaign() {
    let budget = Budget::execs(250);
    let dir = tmpdir("parity");

    // Bare run: no telemetry at all.
    let cfg = Config { rng_seed: 0xabcd, ..Config::default() };
    let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
    let off = run_campaign(&mut engine, Dialect::Postgres, budget);

    // Fully instrumented run: server + SSE client + recorder + trace.
    let broadcast = Arc::new(BroadcastSink::new());
    let trace = Arc::new(TraceCollector::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let tel = Telemetry::builder()
        .metrics(metrics)
        .live_sink(broadcast.clone())
        .trace(trace.clone())
        .seed(0xabcd)
        .build();
    let mut server =
        MonitorServer::bind("127.0.0.1:0", tel.clone(), Some(broadcast), MonitorConfig::default())
            .unwrap();
    let mut recorder =
        TimeSeriesRecorder::start(&dir.join("plot_data.csv"), 25, tel.live_arc().unwrap()).unwrap();
    // Attach a live SSE client for the duration of the run.
    let addr = server.local_addr();
    let mut sse = TcpStream::connect(addr).unwrap();
    sse.write_all(b"GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();

    let on = serial_stats(0xabcd, budget, &tel);
    recorder.finish();
    let trace_path = dir.join("trace.json");
    trace.write_chrome_trace(&trace_path).unwrap();
    server.shutdown();
    drop(sse);

    assert_eq!(
        off.deterministic_json(),
        on.deterministic_json(),
        "the monitoring plane perturbed the campaign"
    );
    assert!(trace.span_count() > 0, "trace recorded no spans");
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace_text.contains("\"traceEvents\":["), "{trace_text}");
    assert!(trace_text.contains("\"name\":\"execution\""), "{trace_text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recorder wired to the *campaign's* live counters samples real progress.
#[test]
fn plot_data_tracks_campaign_progress() {
    let dir = tmpdir("plot");
    let tel = Telemetry::builder().seed(1).build();
    let csv = dir.join("plot_data.csv");
    let mut recorder = TimeSeriesRecorder::start(&csv, 20, tel.live_arc().unwrap()).unwrap();
    let stats = serial_stats(1, Budget::execs(300), &tel);
    recorder.finish();

    let text = std::fs::read_to_string(&csv).unwrap();
    let rows: Vec<&str> = text.lines().skip(1).collect();
    assert!(rows.len() >= 2, "want baseline + closing row: {text}");
    let parsed: Vec<Vec<f64>> =
        rows.iter().map(|r| r.split(',').map(|v| v.parse().unwrap()).collect()).collect();
    let last = parsed.last().unwrap();
    assert_eq!(last[1] as usize, stats.execs, "closing row execs: {text}");
    assert!(last[3] > 0.0, "closing row branches: {text}");
    // Time and branches are monotone across rows.
    for pair in parsed.windows(2) {
        assert!(pair[1][0] >= pair[0][0], "time not monotone");
        assert!(pair[1][3] >= pair[0][3], "branches not monotone");
    }
    let json = std::fs::read_to_string(dir.join("plot_data.json")).unwrap();
    assert!(json.starts_with("{\"columns\":[\"t_s\""), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A sink that records how often it was flushed — the observable side
/// effect of `Telemetry::finish`.
#[derive(Default)]
struct FlushProbe {
    flushes: AtomicUsize,
}

impl EventSink for FlushProbe {
    fn emit(&self, _ev: &Event) {}
    fn flush(&self) {
        self.flushes.fetch_add(1, Ordering::SeqCst);
    }
}

/// An engine whose every case panics immediately: all workers die and the
/// resilient supervisor errors out — which must still flush telemetry.
struct InstantDeath;

impl FuzzEngine for InstantDeath {
    fn name(&self) -> &'static str {
        "INSTANT-DEATH"
    }
    fn next_case(&mut self) -> Arc<TestCase> {
        panic!("injected instant worker death");
    }
    fn feedback(&mut self, _case: &Arc<TestCase>, _report: &ExecReport, _nc: bool) {}
    fn corpus(&self) -> Vec<Arc<TestCase>> {
        Vec::new()
    }
}

#[test]
fn dead_campaign_still_flushes_telemetry() {
    let probe = Arc::new(FlushProbe::default());
    let tel = Telemetry::builder().sink(probe.clone()).heartbeat(2).build();
    let result = run_campaign_parallel_resilient(
        |_w| Box::new(InstantDeath) as Box<dyn FuzzEngine + Send>,
        Dialect::Postgres,
        Budget::units(5_000),
        ParallelOpts { workers: 2, sync_every: 4 },
        &tel,
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
    );
    assert!(result.is_err(), "all workers dead must surface an error");
    assert!(
        probe.flushes.load(Ordering::SeqCst) > 0,
        "error exit skipped the final telemetry flush"
    );
}
