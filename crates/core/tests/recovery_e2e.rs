//! End-to-end triage pipeline test for the recovery (durability) oracle.
//!
//! A known lost-write defect is injected behind the test-only
//! `lego_dbms::faults` flag: at every WAL sync the final pending record is
//! marked durable but its bytes never reach the file. A campaign with the
//! recovery oracle enabled must then:
//!
//! 1. detect the defect (replay of the WAL diverges from the state the
//!    engine claimed was durable),
//! 2. collapse every affected case into exactly one deduplicated finding
//!    (the divergence class, not the case text, is the bug's identity), and
//! 3. reduce the reproducer to at most 3 statements.
//!
//! The fault flag is process-global, so every campaign-with-fault test
//! lives in this binary and serializes on one lock.

use lego::campaign::{run_campaign_durable, Budget, FuzzEngine};
use lego::checkpoint::CheckpointCfg;
use lego::observe::{Event, MemorySink, Telemetry};
use lego::oracle::{OracleKind, OracleSuite};
use lego::OracleConfig;
use lego_dbms::faults::FaultGuard;
use lego_sqlast::{Dialect, TestCase};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fresh per-test WAL directory: concurrent campaigns must never share
/// `worker00.wal`.
fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego_recovery_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic replay engine: cycles through a fixed case list (the
/// oracle-e2e idiom — each case reaches new engine branches, so each is
/// corpus-accepted and oracle-checked).
struct Replay {
    cases: Vec<Arc<TestCase>>,
    next: usize,
}

impl Replay {
    fn new(scripts: &[&str]) -> Self {
        let cases = scripts
            .iter()
            .map(|s| Arc::new(lego_sqlparser::parse_script(s).expect("replay SQL parses")))
            .collect();
        Self { cases, next: 0 }
    }
}

impl FuzzEngine for Replay {
    fn name(&self) -> &'static str {
        "replay"
    }
    fn next_case(&mut self) -> Arc<TestCase> {
        let case = Arc::clone(&self.cases[self.next % self.cases.len()]);
        self.next += 1;
        case
    }
    fn feedback(&mut self, _case: &Arc<TestCase>, _report: &lego_dbms::ExecReport, _new: bool) {}
    fn corpus(&self) -> Vec<Arc<TestCase>> {
        self.cases.clone()
    }
}

const VARIANT_A: &str = "CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);
SELECT * FROM t WHERE a > 1;";

const VARIANT_B: &str = "CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (5, 50), (6, 60), (7, 70);
UPDATE t SET b = 0 WHERE a = 5;
SELECT * FROM t WHERE a > 5;";

fn run_recovery_campaign(dir: &Path, tel: &Telemetry) -> lego::CampaignStats {
    let mut engine = Replay::new(&[VARIANT_A, VARIANT_B]);
    run_campaign_durable(
        &mut engine,
        Dialect::Postgres,
        Budget::units(400),
        tel,
        OracleConfig::recovery_only(),
        &CheckpointCfg::disabled(),
        Some(dir),
    )
    .expect("campaign completes")
}

#[test]
fn injected_lost_write_is_found_deduped_and_reduced() {
    let _lock = fault_lock();
    let _guard = FaultGuard::enable_wal_drops_last_record();
    let dir = wal_dir("fault");
    let mem = Arc::new(MemorySink::new());
    let tel = Telemetry::builder().sink(mem.clone()).seed(1).build();
    let stats = run_recovery_campaign(&dir, &tel);

    // Both variants were corpus-accepted and recovery-checked.
    assert!(stats.oracle_checks >= 2, "oracle_checks = {}", stats.oracle_checks);
    // Every affected case collapsed into exactly one durability finding.
    assert_eq!(stats.logic_bugs.len(), 1, "{:#?}", stats.logic_bugs);
    assert_eq!(stats.durability_bugs, 1);
    let finding = &stats.logic_bugs[0];
    assert_eq!(finding.bug.oracle, OracleKind::Recovery);
    assert_eq!(finding.bug.dialect, Dialect::Postgres);
    assert!(
        finding.bug.query.contains("replay divergence"),
        "divergence class is the bug identity: {}",
        finding.bug.query
    );

    // The reducer shrank the reproducer (any synced statement reproduces a
    // dropped record, so the kernel is tiny).
    let reduced = lego_sqlparser::parse_script(&finding.reduced_sql).expect("reduced SQL parses");
    assert!(reduced.len() <= 3, "want <= 3 statements:\n{}", finding.reduced_sql);

    // The reproducer still trips the oracle with the same identity.
    let mut suite =
        OracleSuite::with_wal(Dialect::Postgres, OracleConfig::recovery_only(), Some(&dir), 99);
    assert!(suite.bug_persists(&reduced, finding.fingerprint()));

    // The finding surfaced through telemetry as a durability event (not a
    // plain logic-bug event).
    let events = mem.snapshot();
    assert!(
        events.iter().any(|e| matches!(e, Event::DurabilityBugFound { .. })),
        "no DurabilityBugFound event emitted"
    );
    assert!(
        !events.iter().any(|e| matches!(e, Event::LogicBugFound { .. })),
        "durability findings must not double-report as logic bugs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_campaign_with_fault_is_deterministic() {
    let _lock = fault_lock();
    let _guard = FaultGuard::enable_wal_drops_last_record();
    let dir = wal_dir("det");
    let run = || run_recovery_campaign(&dir, &Telemetry::disabled());
    assert_eq!(run().deterministic_json(), run().deterministic_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_engine_reports_no_durability_bugs() {
    let _lock = fault_lock();
    // No fault: the same campaign must stay silent (oracle soundness on the
    // defect-free engine), and the WAL files must actually exist.
    let dir = wal_dir("clean");
    let stats = run_recovery_campaign(&dir, &Telemetry::disabled());
    assert!(stats.logic_bugs.is_empty(), "{:#?}", stats.logic_bugs);
    assert_eq!(stats.durability_bugs, 0);
    assert!(stats.oracle_checks > 0);
    let wal = dir.join("worker00.wal");
    assert!(wal.exists(), "recovery oracle never journaled to {}", wal.display());
    let bytes = std::fs::read(&wal).expect("read WAL");
    assert!(bytes.starts_with(b"LEGOWAL1"), "WAL magic missing");
    let _ = std::fs::remove_dir_all(&dir);
}
