//! End-to-end triage pipeline test for the logic-bug oracles.
//!
//! A known wrong-result defect is injected behind the test-only
//! `lego_dbms::faults` flag (the WHERE filter silently drops its last
//! qualifying row). A campaign with oracles enabled must then:
//!
//! 1. detect the defect (NoREC: the un-filtered scan form bypasses the
//!    faulty filter),
//! 2. collapse duplicate findings across literal variants of the same query
//!    shape into exactly one report, and
//! 3. reduce the reproducer to at most 3 statements.
//!
//! The fault flag is process-global, so every campaign-with-fault test
//! lives in this binary and serializes on one lock.

use lego::campaign::{run_campaign_with_oracles, Budget, FuzzEngine};
use lego::oracle::OracleKind;
use lego::OracleConfig;
use lego_dbms::faults::FaultGuard;
use lego_observe::Telemetry;
use lego_sqlast::{Dialect, TestCase};
use std::sync::{Arc, Mutex};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic replay engine: cycles through a fixed case list. The cases
/// share one SELECT skeleton (same tables/columns/operators, different
/// literals) so every oracle finding has the same fingerprint, but each case
/// adds a fresh statement kind so each gains new coverage and is
/// oracle-checked.
struct Replay {
    cases: Vec<Arc<TestCase>>,
    next: usize,
}

impl Replay {
    fn new(scripts: &[&str]) -> Self {
        let cases = scripts
            .iter()
            .map(|s| Arc::new(lego_sqlparser::parse_script(s).expect("replay SQL parses")))
            .collect();
        Self { cases, next: 0 }
    }
}

impl FuzzEngine for Replay {
    fn name(&self) -> &'static str {
        "replay"
    }
    fn next_case(&mut self) -> Arc<TestCase> {
        let case = Arc::clone(&self.cases[self.next % self.cases.len()]);
        self.next += 1;
        case
    }
    fn feedback(&mut self, _case: &Arc<TestCase>, _report: &lego_dbms::ExecReport, _new: bool) {}
    fn corpus(&self) -> Vec<Arc<TestCase>> {
        self.cases.clone()
    }
}

/// Two literal variants of the same buggy query shape, plus noise
/// statements for the reducer to strip. The second case updates rows so it
/// reaches engine branches the first did not (UPDATE path) and is therefore
/// corpus-accepted and checked too.
const VARIANT_A: &str = "CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);
SELECT * FROM t WHERE a > 1;";

const VARIANT_B: &str = "CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (5, 50), (6, 60), (7, 70);
UPDATE t SET b = 0 WHERE a = 5;
SELECT * FROM t WHERE a > 5;";

#[test]
fn injected_logic_bug_is_found_deduped_and_reduced() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let _guard = FaultGuard::enable_where_drops_last_row();
    let mut engine = Replay::new(&[VARIANT_A, VARIANT_B]);
    let oracles = OracleConfig { tlp: false, norec: true, differential: false, recovery: false };
    let stats = run_campaign_with_oracles(
        &mut engine,
        Dialect::Postgres,
        Budget::units(400),
        &Telemetry::disabled(),
        oracles,
    );

    // Both variants were corpus-accepted and oracle-checked.
    assert!(stats.oracle_checks >= 2, "oracle_checks = {}", stats.oracle_checks);
    // The oracle found the injected defect; literal variants of the same
    // query shape collapsed into exactly one deduplicated report.
    assert_eq!(stats.logic_bugs.len(), 1, "{:#?}", stats.logic_bugs);
    let finding = &stats.logic_bugs[0];
    assert_eq!(finding.bug.oracle, OracleKind::Norec);
    assert_eq!(finding.bug.dialect, Dialect::Postgres);
    assert!(finding.bug.query.contains("FROM t"), "{}", finding.bug.query);

    // The reducer shrank the reproducer to the kernel: CREATE + INSERT +
    // SELECT (3 statements), with noise statements stripped.
    let reduced = lego_sqlparser::parse_script(&finding.reduced_sql).expect("reduced SQL parses");
    assert!(reduced.len() <= 3, "want <= 3 statements:\n{}", finding.reduced_sql);
    assert!(!finding.reduced_sql.contains("UPDATE"), "{}", finding.reduced_sql);

    // The reproducer still trips the oracle with the same identity.
    let mut suite = lego::oracle::OracleSuite::new(Dialect::Postgres, oracles);
    assert!(suite.bug_persists(&reduced, finding.fingerprint()));
}

#[test]
fn oracle_campaign_with_fault_is_deterministic() {
    let _lock = FAULT_LOCK.lock().unwrap();
    let _guard = FaultGuard::enable_where_drops_last_row();
    let run = || {
        let mut engine = Replay::new(&[VARIANT_A, VARIANT_B]);
        run_campaign_with_oracles(
            &mut engine,
            Dialect::Postgres,
            Budget::units(400),
            &Telemetry::disabled(),
            OracleConfig::all(),
        )
    };
    assert_eq!(run().deterministic_json(), run().deterministic_json());
}

#[test]
fn clean_engine_reports_no_logic_bugs() {
    let _lock = FAULT_LOCK.lock().unwrap();
    // No fault: the same campaign must stay silent (oracle soundness on the
    // defect-free engine).
    let mut engine = Replay::new(&[VARIANT_A, VARIANT_B]);
    let stats = run_campaign_with_oracles(
        &mut engine,
        Dialect::Postgres,
        Budget::units(400),
        &Telemetry::disabled(),
        OracleConfig::all(),
    );
    assert!(stats.logic_bugs.is_empty(), "{:#?}", stats.logic_bugs);
    assert!(stats.oracle_checks > 0);
}
