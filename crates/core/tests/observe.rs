//! Observability contracts: telemetry must describe the campaign without
//! perturbing it.
//!
//! The hard promise of `lego-observe` is that turning instrumentation on
//! changes nothing about what the fuzzer does — same cases, same coverage,
//! same bugs, byte-for-byte — and that the event stream itself is a
//! deterministic function of (seed, worker count).

use lego::campaign::{
    run_campaign, run_campaign_observed, run_campaign_parallel_observed, Budget, CampaignStats,
    FuzzEngine, ParallelOpts,
};
use lego::fuzzer::{Config, LegoFuzzer};
use lego::observe::{Event, MemorySink, MetricsRegistry, Telemetry};
use lego_sqlast::Dialect;
use std::path::PathBuf;
use std::sync::Arc;

fn lego_factory(
    dialect: Dialect,
    base_seed: u64,
) -> impl Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync {
    move |worker| {
        let rng_seed = base_seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let cfg = Config { rng_seed, ..Config::default() };
        Box::new(LegoFuzzer::new(dialect, cfg))
    }
}

fn opts(workers: usize) -> ParallelOpts {
    ParallelOpts { workers, sync_every: 4 }
}

/// A fully-loaded telemetry handle plus its memory sink for inspection.
fn observed() -> (Telemetry, Arc<MemorySink>, Arc<MetricsRegistry>) {
    let mem = Arc::new(MemorySink::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let tel = Telemetry::builder().sink(mem.clone()).metrics(metrics.clone()).seed(0x5eed).build();
    (tel, mem, metrics)
}

fn serial_stats(dialect: Dialect, seed: u64, budget: Budget, tel: &Telemetry) -> CampaignStats {
    let cfg = Config { rng_seed: seed, ..Config::default() };
    let mut engine = LegoFuzzer::new(dialect, cfg);
    run_campaign_observed(&mut engine, dialect, budget, tel)
}

#[test]
fn telemetry_does_not_perturb_serial_campaigns() {
    let budget = Budget::execs(150);
    for dialect in [Dialect::Postgres, Dialect::MariaDb] {
        let cfg = Config { rng_seed: 0x5eed, ..Config::default() };
        let mut engine = LegoFuzzer::new(dialect, cfg);
        let off = run_campaign(&mut engine, dialect, budget);
        let (tel, mem, _) = observed();
        let on = serial_stats(dialect, 0x5eed, budget, &tel);
        assert_eq!(
            off.deterministic_json(),
            on.deterministic_json(),
            "telemetry changed the campaign on {dialect:?}"
        );
        assert!(!mem.is_empty(), "enabled telemetry produced no events");
        // The profile rides on the observed stats only, outside the
        // deterministic section.
        assert!(off.stage_profile.is_none());
        assert!(on.stage_profile.is_some());
    }
}

#[test]
fn telemetry_does_not_perturb_parallel_campaigns() {
    let budget = Budget::units(30_000);
    let off = run_campaign_parallel_observed(
        lego_factory(Dialect::Postgres, 42),
        Dialect::Postgres,
        budget,
        opts(3),
        &Telemetry::disabled(),
    );
    let (tel, mem, _) = observed();
    let on = run_campaign_parallel_observed(
        lego_factory(Dialect::Postgres, 42),
        Dialect::Postgres,
        budget,
        opts(3),
        &tel,
    );
    assert_eq!(
        off.deterministic_json(),
        on.deterministic_json(),
        "telemetry changed the 3-worker campaign"
    );
    assert!(!mem.is_empty());
    assert!(on.stage_profile.is_some());
}

/// The merged event stream is a deterministic function of seed and worker
/// count: two identical runs produce byte-identical JSONL.
#[test]
fn event_stream_is_deterministic_per_worker_count() {
    for workers in [1usize, 3] {
        let run = || {
            let (tel, mem, _) = observed();
            let stats = run_campaign_parallel_observed(
                lego_factory(Dialect::Postgres, 7),
                Dialect::Postgres,
                Budget::units(20_000),
                opts(workers),
                &tel,
            );
            let lines: Vec<String> = mem.snapshot().iter().map(Event::to_json).collect();
            (stats, lines)
        };
        let (stats_a, a) = run();
        let (stats_b, b) = run();
        assert_eq!(a, b, "event stream diverged between identical runs at workers={workers}");
        assert_eq!(stats_a.deterministic_json(), stats_b.deterministic_json());
        assert!(!a.is_empty());
    }
}

#[test]
fn event_stream_is_consistent_with_stats() {
    let (tel, mem, metrics) = observed();
    let stats = run_campaign_parallel_observed(
        lego_factory(Dialect::MariaDb, 1),
        Dialect::MariaDb,
        Budget::units(40_000),
        opts(3),
        &tel,
    );
    let events = mem.snapshot();
    let ends: Vec<&Event> = events.iter().filter(|e| matches!(e, Event::ExecEnd { .. })).collect();
    assert_eq!(ends.len(), stats.execs, "one ExecEnd per executed case");
    let starts = events.iter().filter(|e| matches!(e, Event::ExecStart { .. })).count();
    assert_eq!(starts, stats.execs);

    // Statement-validity counters: the event stream, the stats and the
    // metrics registry all agree.
    let (mut ok, mut err) = (0u64, 0u64);
    for e in &events {
        if let Event::ExecEnd { ok: o, err: e2, statements, .. } = e {
            ok += o;
            err += e2;
            assert_eq!(o + e2, *statements, "ok + err covers every statement");
        }
    }
    assert_eq!(ok, stats.stmts_ok as u64);
    assert_eq!(err, stats.stmts_err as u64);
    assert!(stats.validity_pct() > 0.0 && stats.validity_pct() <= 100.0);
    assert_eq!(metrics.counter("lego_execs_total"), stats.execs as u64);
    assert_eq!(metrics.counter("lego_statements_ok_total"), stats.stmts_ok as u64);

    // Every reported bug surfaces in the event stream. Workers deduplicate
    // locally and the join deduplicates across workers, so the stream may
    // hold more BugFound events than the final report — but the set of
    // distinct stack hashes must match exactly.
    let mut hashes: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::BugFound { stack_hash, .. } => Some(*stack_hash),
            _ => None,
        })
        .collect();
    let raw = hashes.len();
    hashes.sort_unstable();
    hashes.dedup();
    assert!(raw >= stats.bugs.len());
    assert_eq!(hashes.len(), stats.bugs.len(), "BugFound stack hashes != deduplicated bugs");

    // Operator attribution: every coverage-gain edge total is backed by at
    // least one gaining case, and the profile echoes the event stream.
    let profile = stats.stage_profile.expect("observed run profiles");
    let gained: u64 = profile.operator_gains.iter().map(|g| g.edges_gained).sum();
    let event_gain: u64 = events
        .iter()
        .filter_map(|e| match e {
            Event::CoverageGain { edges, .. } => Some(*edges),
            _ => None,
        })
        .sum();
    assert_eq!(gained, event_gain);
    assert!(gained > 0, "campaign gained no attributed edges");
    assert!(!profile.stages.is_empty());
}

#[test]
fn deterministic_json_strips_profile_but_keeps_validity() {
    let (tel, _mem, _) = observed();
    let stats = serial_stats(Dialect::Postgres, 3, Budget::execs(80), &tel);
    let json = stats.deterministic_json();
    // The key stays (serialized as null) but no timing data may survive.
    assert!(!json.contains("total_ms"), "timing leaked into deterministic stats");
    assert!(!json.contains("share_pct"));
    assert!(!json.contains("operator_gains"));
    assert!(json.contains("stmts_ok"), "validity counters are deterministic and must stay");
}

#[test]
fn bug_artifacts_are_replayable_sql() {
    let dir =
        std::env::temp_dir().join(format!("lego-observe-test-{}", std::process::id())).join("bugs");
    let _ = std::fs::remove_dir_all(&dir);
    let tel = Telemetry::builder().bug_artifacts(dir.clone()).seed(1).build();
    let cfg = Config { rng_seed: 1, ..Config::default() };
    let mut engine = LegoFuzzer::new(Dialect::MariaDb, cfg);
    let stats = run_campaign_observed(&mut engine, Dialect::MariaDb, Budget::units(40_000), &tel);
    assert!(!stats.bugs.is_empty(), "campaign found no bugs to dump");
    let files: Vec<PathBuf> = std::fs::read_dir(dir.join("mariadb"))
        .expect("artifact dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(files.len(), stats.bugs.len(), "one artifact per deduplicated bug");
    for f in &files {
        let body = std::fs::read_to_string(f).unwrap();
        assert!(body.starts_with("-- lego bug artifact\n"), "missing header in {f:?}");
        assert!(body.contains("-- dialect: mariadb\n"));
        let sql: String =
            body.lines().filter(|l| !l.starts_with("--")).collect::<Vec<_>>().join("\n");
        assert!(
            lego_sqlparser::parse_script(&sql).is_ok(),
            "artifact body is not replayable SQL: {f:?}"
        );
    }
    let _ = std::fs::remove_dir_all(dir.parent().unwrap());
}

#[test]
fn metrics_exports_are_well_formed() {
    let (tel, _mem, metrics) = observed();
    serial_stats(Dialect::Postgres, 9, Budget::execs(120), &tel);
    let prom = metrics.prometheus_text();
    assert!(prom.lines().any(|l| l.starts_with("lego_execs_total ")));
    let json = metrics.json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"lego_execs_total\""));
}
