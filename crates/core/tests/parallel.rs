//! Determinism and soundness contracts of the parallel campaign path.
//!
//! The parallel runner promises that results depend only on the engine
//! seeds and the worker count — never on thread scheduling — and that the
//! single-worker path is *exactly* the serial campaign.

use lego::campaign::{
    run_campaign, run_campaign_parallel, Budget, CampaignStats, FuzzEngine, ParallelOpts,
};
use lego::fuzzer::{Config, LegoFuzzer};
use lego_sqlast::Dialect;

const ALL_DIALECTS: [Dialect; 4] =
    [Dialect::Postgres, Dialect::MySql, Dialect::MariaDb, Dialect::Comdb2];

/// Engine factory giving each worker shard its own RNG stream; worker 0
/// uses the base seed itself so `workers == 1` reproduces a serial run.
fn lego_factory(
    dialect: Dialect,
    base_seed: u64,
) -> impl Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync {
    move |worker| {
        let rng_seed = base_seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let cfg = Config { rng_seed, ..Config::default() };
        Box::new(LegoFuzzer::new(dialect, cfg))
    }
}

fn opts(workers: usize) -> ParallelOpts {
    ParallelOpts { workers, sync_every: 4 }
}

fn unique_stack_hashes(stats: &CampaignStats) -> bool {
    let mut hs: Vec<u64> = stats.bugs.iter().map(|b| b.crash.stack_hash()).collect();
    let n = hs.len();
    hs.sort_unstable();
    hs.dedup();
    hs.len() == n
}

#[test]
fn workers1_parallel_is_byte_identical_to_serial() {
    let budget = Budget::execs(150);
    for dialect in ALL_DIALECTS {
        let cfg = Config { rng_seed: 0x5eed, ..Config::default() };
        let mut engine = LegoFuzzer::new(dialect, cfg);
        let serial = run_campaign(&mut engine, dialect, budget);
        let parallel =
            run_campaign_parallel(lego_factory(dialect, 0x5eed), dialect, budget, opts(1));
        assert_eq!(
            serial.deterministic_json(),
            parallel.deterministic_json(),
            "workers=1 diverged from serial on {dialect:?}"
        );
    }
}

#[test]
fn same_seed_and_worker_count_is_deterministic() {
    let budget = Budget::units(30_000);
    let run = || {
        run_campaign_parallel(
            lego_factory(Dialect::Postgres, 42),
            Dialect::Postgres,
            budget,
            opts(3),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.workers, 3);
}

#[test]
fn merged_coverage_is_sound() {
    let budget = Budget::units(60_000);
    let one = run_campaign_parallel(
        lego_factory(Dialect::Postgres, 7),
        Dialect::Postgres,
        budget,
        opts(1),
    );
    let four = run_campaign_parallel(
        lego_factory(Dialect::Postgres, 7),
        Dialect::Postgres,
        budget,
        opts(4),
    );
    // Splitting one budget across four shards trades per-shard depth for
    // seed diversity; the union must stay within a few percent of the
    // single deep run (the values are deterministic, the margin guards
    // against engine evolution).
    assert!(
        four.branches * 100 >= one.branches * 90,
        "4-worker merge lost too much coverage: {} vs {}",
        four.branches,
        one.branches
    );
    // At equal *wall-clock* — every worker gets the budget the single
    // worker had — parallelism must strictly add coverage.
    let wall = Budget { units: budget.units * 4, snapshots: budget.snapshots };
    let four_wall =
        run_campaign_parallel(lego_factory(Dialect::Postgres, 7), Dialect::Postgres, wall, opts(4));
    assert!(
        four_wall.branches >= one.branches,
        "equal-wall-clock parallel run lost coverage: {} < {}",
        four_wall.branches,
        one.branches
    );
    // The merged curve is monotone like the serial one.
    for w in four.coverage_curve.windows(2) {
        assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1, "non-monotone curve: {w:?}");
    }
    assert_eq!(four.coverage_curve.len(), budget.snapshots + 1);
    // The last curve point accounts for the whole campaign: nothing any
    // worker observed is dropped by the merge.
    let last = *four.coverage_curve.last().unwrap();
    assert_eq!(last, (four.units, four.branches));
}

#[test]
fn bugs_are_deduplicated_across_workers() {
    let budget = Budget::units(40_000);
    let stats =
        run_campaign_parallel(lego_factory(Dialect::MariaDb, 1), Dialect::MariaDb, budget, opts(4));
    assert!(unique_stack_hashes(&stats), "duplicate bug report crossed the worker join");
}

/// Crash-free engine that always replays the same two-statement case, so
/// every execution costs exactly the same number of budget units.
struct FixedCase(std::sync::Arc<lego_sqlast::TestCase>);

impl FixedCase {
    fn new() -> Self {
        Self(std::sync::Arc::new(lego_sqlparser::parse_script("SELECT 1;\nSELECT 2;").unwrap()))
    }
}

impl FuzzEngine for FixedCase {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn next_case(&mut self) -> std::sync::Arc<lego_sqlast::TestCase> {
        std::sync::Arc::clone(&self.0)
    }
    fn feedback(
        &mut self,
        _case: &std::sync::Arc<lego_sqlast::TestCase>,
        _report: &lego_dbms::ExecReport,
        _new: bool,
    ) {
    }
    fn corpus(&self) -> Vec<std::sync::Arc<lego_sqlast::TestCase>> {
        vec![std::sync::Arc::clone(&self.0)]
    }
}

#[test]
fn budget_overshoot_is_at_most_one_case_per_worker() {
    // Fixed-cost, crash-free cases make the overshoot exactly measurable:
    // each worker may only exceed its slice by its final in-flight case.
    let budget = Budget::units(10_001);
    let per_case = {
        // Measure the actual unit cost of one case via a tiny serial run.
        let mut probe = FixedCase::new();
        let one = run_campaign(&mut probe, Dialect::Postgres, Budget::units(1));
        one.units
    };
    let factory = |_worker: usize| -> Box<dyn FuzzEngine + Send> { Box::new(FixedCase::new()) };
    let stats = run_campaign_parallel(factory, Dialect::Postgres, budget, opts(4));
    assert!(stats.units >= budget.units, "budget underrun: {}", stats.units);
    assert!(
        stats.units < budget.units + 4 * per_case,
        "overshoot beyond one case per worker: {} (per-case cost {per_case})",
        stats.units
    );
}
