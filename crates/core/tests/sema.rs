//! Contracts of the static sequence analyzer dimension (`--sema`).
//!
//! The tentpole promises:
//! * **Off is free** — with `sema == false` the `_sema` entry points are
//!   byte-identical to the pre-existing `_full` paths (same exploration
//!   order, same findings, same deterministic report).
//! * **On is deterministic** — serial reruns, `workers == 1` vs serial, and
//!   N-worker reruns are byte-identical; checkpoint/resume reproduces the
//!   uninterrupted run; resuming under a flipped flag is rejected.
//! * **On skips** — statically-rejected cases are charged to the budget but
//!   never executed (minus the 1-in-16 audit slice), and the skipped
//!   statements move `raw_validity_pct` below `validity_pct`.

use lego::campaign::{
    run_campaign_full, run_campaign_parallel_full, run_campaign_parallel_sema, run_campaign_sema,
    Budget, FuzzEngine, ParallelOpts,
};
use lego::checkpoint::{load_campaign_checkpoint, CheckpointCfg};
use lego::fuzzer::{Config, LegoFuzzer};
use lego::observe::Telemetry;
use lego_oracle::OracleConfig;
use lego_sqlast::Dialect;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego_sema_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Serial campaign with the analyzer flag, everything else disabled.
fn serial(engine: &mut dyn FuzzEngine, sema: bool) -> lego::CampaignStats {
    run_campaign_sema(
        engine,
        Dialect::Postgres,
        Budget::units(20_000),
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
        false,
        sema,
    )
    .expect("campaign without checkpointing cannot fail")
}

fn factory(base_seed: u64, sema: bool) -> impl Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync {
    move |worker| {
        let rng_seed = base_seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let cfg = Config { rng_seed, sema, ..Config::default() };
        Box::new(LegoFuzzer::new(Dialect::Postgres, cfg))
    }
}

#[test]
fn off_flag_is_byte_identical_to_the_full_path() {
    let cfg = Config { rng_seed: 0x1e60, ..Config::default() };
    let mut a = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
    let full = run_campaign_full(
        &mut a,
        Dialect::Postgres,
        Budget::units(20_000),
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
        false,
    )
    .unwrap();
    let mut b = LegoFuzzer::new(Dialect::Postgres, cfg);
    let sema_off = serial(&mut b, false);
    assert_eq!(
        full.deterministic_json(),
        sema_off.deterministic_json(),
        "sema=false must be byte-identical to the pre-existing path"
    );
    assert_eq!(sema_off.sema_rejects, 0, "no analyzer runs when the dimension is off");
    assert_eq!(sema_off.sema_skipped_stmts, 0);
    assert_eq!(sema_off.sema_divergences, 0);
    // With nothing skipped the two validity views coincide.
    assert!((sema_off.validity_pct() - sema_off.raw_validity_pct()).abs() < f64::EPSILON);
}

#[test]
fn sema_campaigns_are_deterministic_and_skip_statically_invalid_cases() {
    let run = || {
        let cfg = Config { rng_seed: 0x5e3a, sema: true, ..Config::default() };
        let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
        serial(&mut engine, true)
    };
    let a = run();
    let b = run();
    assert_eq!(a.deterministic_json(), b.deterministic_json(), "serial rerun diverged");
    assert!(a.sema_rejects > 0, "the analyzer never rejected anything within the budget");
    assert!(a.sema_skipped_stmts > 0, "rejected cases must be skipped, not just counted");
    // Skipped statements enter only the raw denominator, so the raw view
    // can never exceed the attempted-statements view.
    assert!(
        a.raw_validity_pct() <= a.validity_pct(),
        "raw {} > attempted {}",
        a.raw_validity_pct(),
        a.validity_pct()
    );
    // The analyzer is sound on its Accept verdicts, so a campaign against
    // our own engine surfaces no conformance divergence.
    assert_eq!(a.sema_divergences, 0, "unexpected analyzer-vs-engine divergence");
}

#[test]
fn workers1_parallel_sema_is_byte_identical_to_serial_sema() {
    let cfg = Config { rng_seed: 0x5eed, sema: true, ..Config::default() };
    let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg);
    let serial_stats = serial(&mut engine, true);
    let parallel = run_campaign_parallel_sema(
        factory(0x5eed, true),
        Dialect::Postgres,
        Budget::units(20_000),
        ParallelOpts { workers: 1, sync_every: 4 },
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
        false,
        true,
    )
    .unwrap();
    assert_eq!(serial_stats.deterministic_json(), parallel.deterministic_json());
}

#[test]
fn three_worker_sema_rerun_is_byte_identical() {
    let run = |sema: bool| {
        run_campaign_parallel_sema(
            factory(42, sema),
            Dialect::Postgres,
            Budget::units(24_000),
            ParallelOpts { workers: 3, sync_every: 4 },
            &Telemetry::disabled(),
            OracleConfig::disabled(),
            &CheckpointCfg::disabled(),
            None,
            false,
            sema,
        )
        .unwrap()
    };
    let a = run(true);
    let b = run(true);
    assert_eq!(a.deterministic_json(), b.deterministic_json(), "3-worker rerun diverged");
    assert!(a.sema_rejects > 0, "no worker rejected anything within the budget");
    // And the off flag stays identical to the pre-existing parallel path.
    let off = run(false);
    let full = run_campaign_parallel_full(
        factory(42, false),
        Dialect::Postgres,
        Budget::units(24_000),
        ParallelOpts { workers: 3, sync_every: 4 },
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg::disabled(),
        None,
        false,
    )
    .unwrap();
    assert_eq!(off.deterministic_json(), full.deterministic_json());
}

fn truncate_checkpoints(dir: &std::path::Path, worker: usize, keep: usize) {
    for seq in (keep + 1).. {
        let path = dir.join(format!("worker{worker:02}_ckpt{seq:04}.json"));
        if !path.exists() {
            break;
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn serial_sema_resume_is_byte_identical() {
    let dir = tmpdir("resume");
    let budget = Budget::units(20_000);
    let cadence = 6_000;
    let cfg = Config { rng_seed: 0x1e60, sema: true, ..Config::default() };

    let mut engine = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
    let full = run_campaign_sema(
        &mut engine,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: Some(dir.clone()), resume: None },
        None,
        false,
        true,
    )
    .expect("full run completes");

    truncate_checkpoints(&dir, 0, 1);
    let resume = load_campaign_checkpoint(&dir).expect("checkpoint loads");
    assert!(resume.meta.sema, "meta must record the analyzer flag");

    // Resuming under the opposite flag would change both the unit accounting
    // and the exploration order; the campaign must refuse rather than
    // silently diverge.
    let mut wrong = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
    let err = run_campaign_sema(
        &mut wrong,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: None, resume: Some(resume) },
        None,
        false,
        false,
    )
    .expect_err("flag mismatch must be rejected");
    assert!(err.contains("sema"), "unhelpful mismatch error: {err}");

    let resume = load_campaign_checkpoint(&dir).expect("checkpoint reloads");
    let mut fresh = LegoFuzzer::new(Dialect::Postgres, cfg);
    let resumed = run_campaign_sema(
        &mut fresh,
        Dialect::Postgres,
        budget,
        &Telemetry::disabled(),
        OracleConfig::disabled(),
        &CheckpointCfg { every_units: cadence, dir: None, resume: Some(resume) },
        None,
        false,
        true,
    )
    .expect("resumed run completes");
    assert_eq!(
        full.deterministic_json(),
        resumed.deterministic_json(),
        "sema resume diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
