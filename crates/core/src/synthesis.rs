//! Progressive sequence synthesis — Algorithm 3 of the paper.
//!
//! The *Prefix Sequence* index `PS` maps `(ending type τ, length λ)` to the
//! indexes of already-generated sequences in `S`, so that when a new affinity
//! `t1 → t2` is discovered, only the sequences containing that new affinity
//! are synthesized (Figure 6), never the whole space again.
//!
//! The store works entirely on packed `u128` sequence keys (see
//! [`crate::ngram::pack_seq`]): campaign profiles showed Algorithm 3's
//! enumeration dominating the feedback stage, and at ~200k recorded
//! sequences per campaign the per-node `Vec` allocation and SipHash of the
//! obvious `Vec<StmtKind>` representation were the entire cost. Appending a
//! statement type is one shift-or, duplicate probes hit an open-addressing
//! set, and a recorded sequence is a single `u128` push.

use crate::affinity::AffinityMap;
use crate::ngram::{pack_seq, unpack_seq, SeqKeySet, MAX_PACKED_SEQ};
use lego_sqlast::StmtKind;

/// The synthesized-sequence store: `S`, `PS`, and the length limit `LEN`.
#[derive(Clone, Debug)]
pub struct SequenceStore {
    /// `S`: every recorded sequence as a packed key, in record order (the
    /// order is the checkpoint format — `PS` reconstructs from it).
    seqs: Vec<u128>,
    /// The `PS` index, flattened: row `code(τ)·(LEN+1) + λ` lists the
    /// indexes (into `seqs`) of recorded sequences ending in τ with length
    /// λ. A flat table instead of a `HashMap` keyed by `(τ, λ)`: `record`
    /// appends on every explored node, and the SipHash per append was
    /// measurable in campaign profiles.
    ps: Vec<Vec<u32>>,
    /// Every sequence ever recorded; duplicate suppression, so
    /// re-discovering an affinity (or reaching the same sequence through two
    /// synthesis paths) never re-instantiates it. Probed once per explored
    /// node — the hottest loop of the feedback stage.
    seen: SeqKeySet,
    max_len: usize,
    /// Global cap on stored sequences (state-explosion guard, § II C1).
    cap: usize,
    /// How many sequences were dropped due to caps (reported, never silent).
    pub truncated: usize,
}

impl SequenceStore {
    /// `max_len` is the paper's `LEN` (default 5 in [`crate::Config`]);
    /// `starters` seed the store with length-1 prefixes ("beginning from
    /// specific starting statement types, e.g. CREATE TABLE").
    pub fn new(max_len: usize, starters: &[StmtKind]) -> Self {
        let mut store = Self::empty(max_len);
        for &s in starters {
            store.record(pack_seq(&[s]), 1, s);
        }
        store
    }

    /// Rebuild a store from a checkpointed sequence list (in original record
    /// order, which reconstructs the `PS` index exactly) plus the truncation
    /// counter. The starters are already part of `seqs`, so the caller passes
    /// the full list and no separate starter set.
    pub fn from_parts(max_len: usize, seqs: Vec<Vec<StmtKind>>, truncated: usize) -> Self {
        let mut store = Self::empty(max_len);
        for seq in seqs {
            let last = *seq.last().expect("checkpointed sequences are non-empty");
            store.record(pack_seq(&seq), seq.len(), last);
        }
        store.truncated = truncated;
        store
    }

    fn empty(max_len: usize) -> Self {
        assert!(max_len >= 2, "LEN must allow at least one affinity");
        assert!(max_len <= MAX_PACKED_SEQ, "packed sequence keys support LEN <= {MAX_PACKED_SEQ}");
        Self {
            seqs: Vec::new(),
            ps: vec![Vec::new(); StmtKind::COUNT * (max_len + 1)],
            seen: SeqKeySet::new(),
            max_len,
            cap: 200_000,
            truncated: 0,
        }
    }

    pub fn max_len(&self) -> usize {
        self.max_len
    }

    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Materialize the stored sequences in record order (checkpoint
    /// serialization and tests; campaigns never call this per case).
    pub fn sequences(&self) -> Vec<Vec<StmtKind>> {
        self.seqs.iter().map(|&k| unpack_seq(k)).collect()
    }

    /// Record a sequence given its packed key, length, and final type;
    /// returns `true` if it was genuinely new and under the cap. Callers on
    /// the synthesis walk pre-prune via `seen`, so a duplicate here is only
    /// possible from `new`/`from_parts` replays.
    fn record(&mut self, key: u128, len: usize, last: StmtKind) -> bool {
        if self.seen.contains(key) {
            return false;
        }
        if self.seqs.len() >= self.cap {
            self.truncated += 1;
            return false;
        }
        self.seen.insert(key);
        let idx = self.seqs.len() as u32;
        let row = self.ps_row(last, len);
        self.ps[row].push(idx);
        self.seqs.push(key);
        true
    }

    #[inline]
    fn ps_row(&self, last: StmtKind, len: usize) -> usize {
        last.code() as usize * (self.max_len + 1) + len
    }

    /// Algorithm 3: when affinity `t1 → t2` is newly discovered, synthesize
    /// every new sequence (≤ `LEN`) containing it, up to `limit` sequences
    /// per call (an engineering guard; overflow is counted in `truncated`).
    /// Returns the new sequences as packed keys, in discovery order.
    pub fn on_new_affinity(
        &mut self,
        t1: StmtKind,
        t2: StmtKind,
        map: &AffinityMap,
        limit: usize,
    ) -> Vec<u128> {
        let t2_lane = t2.code() as u128 + 1;
        let mut out: Vec<u128> = Vec::new();
        for level in 1..self.max_len {
            // Index walk instead of a row snapshot: sequences recorded while
            // this level is processed are strictly longer than `level`, so
            // the row can only grow at later levels — the walk sees exactly
            // what a per-level snapshot would.
            let row = self.ps_row(t1, level);
            let mut i = 0;
            while i < self.ps[row].len() {
                let prefix = self.seqs[self.ps[row][i] as usize];
                i += 1;
                if out.len() >= limit {
                    self.truncated += 1;
                    return out;
                }
                let key = prefix | (t2_lane << (level * 16));
                // Closure pruning: every recorded sequence had its whole
                // extension subtree explored (under the map current at its
                // record time, and later edges re-explore via their own
                // `on_new_affinity` call), so a seen node's subtree is seen
                // too — descending it can only rediscover duplicates.
                if self.seen.contains(key) {
                    continue;
                }
                if self.record(key, level + 1, t2) {
                    out.push(key);
                }
                self.list_seq(level + 1, t2, key, map, limit, &mut out);
            }
        }
        out
    }

    /// The recursive `listSeq` of Algorithm 3: extend the length-`level`
    /// sequence `key` with every affinity-compatible next type until `LEN`.
    fn list_seq(
        &mut self,
        level: usize,
        node_type: StmtKind,
        key: u128,
        map: &AffinityMap,
        limit: usize,
        out: &mut Vec<u128>,
    ) {
        if level >= self.max_len {
            return;
        }
        for next in map.successors(node_type) {
            if out.len() >= limit {
                self.truncated += 1;
                return;
            }
            let child = key | ((next.code() as u128 + 1) << (level * 16));
            // Same closure pruning as `on_new_affinity`: a seen node's
            // subtree holds only duplicates, skip the descent.
            if self.seen.contains(child) {
                continue;
            }
            self.list_seq(level + 1, next, child, map, limit, out);
            if out.len() >= limit {
                self.truncated += 1;
                return;
            }
            if self.record(child, level + 1, next) {
                out.push(child);
            }
        }
    }
}

/// Kind-level plausibility probe for `--sema` campaigns: decode the packed
/// sequence and ask the static analyzer whether every statement type is
/// supported by the dialect and none is unconditionally rejected by the
/// engine. Synthesized drafts that fail this are dead on arrival — no
/// instantiation can make them execute — so the campaign drops them before
/// paying for AST generation.
pub fn plausible_key(key: u128, dialect: lego_sqlast::Dialect) -> bool {
    lego_sqlsema::plausible_sequence(&unpack_seq(key), dialect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlast::kind::{DdlVerb, ObjectKind, StandaloneKind, StmtKind};

    const CT: StmtKind = StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table);
    const INS: StmtKind = StmtKind::Other(StandaloneKind::Insert);
    const SEL: StmtKind = StmtKind::Other(StandaloneKind::Select);
    const UPD: StmtKind = StmtKind::Other(StandaloneKind::Update);

    /// Decode a discovery batch for readable assertions.
    fn unpacked(keys: &[u128]) -> Vec<Vec<StmtKind>> {
        keys.iter().map(|&k| unpack_seq(k)).collect()
    }

    #[test]
    fn paper_example_length_two() {
        // "suppose the length of target sequence is 2, current sequence is
        // CREATE TABLE, type-affinity is CREATE TABLE -> [INSERT, SELECT]:
        // we get CREATE TABLE, INSERT and CREATE TABLE, SELECT."
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(2, &[CT]);
        map.insert(CT, INS);
        let got = store.on_new_affinity(CT, INS, &map, 1000);
        assert_eq!(unpacked(&got), vec![vec![CT, INS]]);
        map.insert(CT, SEL);
        let got = store.on_new_affinity(CT, SEL, &map, 1000);
        assert_eq!(unpacked(&got), vec![vec![CT, SEL]]);
    }

    #[test]
    fn new_affinity_extends_existing_prefixes() {
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(3, &[CT]);
        map.insert(CT, INS);
        store.on_new_affinity(CT, INS, &map, 1000);
        map.insert(INS, SEL);
        let got = store.on_new_affinity(INS, SEL, &map, 1000);
        // Extends [CT, INS] -> [CT, INS, SEL]; no prefix ends with INS at
        // level 1 (INS is not a starter).
        assert!(unpacked(&got).contains(&vec![CT, INS, SEL]));
    }

    #[test]
    fn forward_closure_via_list_seq() {
        // Affinities arriving out of order still produce the full chain:
        // (INS, SEL) first (useless), then (CT, INS) triggers listSeq which
        // walks INS -> SEL.
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(3, &[CT]);
        map.insert(INS, SEL);
        let got = store.on_new_affinity(INS, SEL, &map, 1000);
        assert!(got.is_empty());
        map.insert(CT, INS);
        let got = unpacked(&store.on_new_affinity(CT, INS, &map, 1000));
        assert!(got.contains(&vec![CT, INS]));
        assert!(got.contains(&vec![CT, INS, SEL]));
    }

    #[test]
    fn sequences_never_exceed_len() {
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(4, &[CT]);
        for (a, b) in [(CT, INS), (INS, SEL), (SEL, UPD), (UPD, INS)] {
            map.insert(a, b);
            store.on_new_affinity(a, b, &map, 10_000);
        }
        assert!(store.sequences().iter().all(|s| s.len() <= 4));
        assert!(store.sequences().iter().any(|s| s.len() == 4));
    }

    #[test]
    fn per_call_limit_counts_truncation() {
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(5, &[CT]);
        // A dense affinity graph explodes; the limit must hold.
        let kinds = [CT, INS, SEL, UPD];
        for &a in &kinds {
            for &b in &kinds {
                if a != b {
                    map.insert(a, b);
                }
            }
        }
        let got = store.on_new_affinity(CT, INS, &map, 16);
        assert!(got.len() <= 16);
        assert!(store.truncated > 0);
    }

    #[test]
    fn repeated_affinity_discovery_is_idempotent() {
        // `on_new_affinity` called twice for the same pair must not record
        // (and hence never re-instantiate) the same sequences again.
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(3, &[CT]);
        map.insert(CT, INS);
        let first = store.on_new_affinity(CT, INS, &map, 1000);
        assert!(!first.is_empty());
        let before = store.len();
        let again = store.on_new_affinity(CT, INS, &map, 1000);
        assert!(again.is_empty(), "duplicate discovery synthesized {again:?}");
        assert_eq!(store.len(), before);
    }

    #[test]
    fn from_parts_reconstructs_the_prefix_index() {
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(3, &[CT]);
        map.insert(CT, INS);
        store.on_new_affinity(CT, INS, &map, 1000);
        let rebuilt = SequenceStore::from_parts(3, store.sequences(), store.truncated);
        assert_eq!(rebuilt.sequences(), store.sequences());
        // The rebuilt PS index must extend prefixes exactly like the
        // original would.
        map.insert(INS, SEL);
        let (mut a, mut b) = (store, rebuilt);
        assert_eq!(
            a.on_new_affinity(INS, SEL, &map, 1000),
            b.on_new_affinity(INS, SEL, &map, 1000)
        );
    }

    #[test]
    fn duplicate_cycles_are_bounded_by_len() {
        // A <-> B ping-pong must terminate at LEN.
        let a = CT;
        let b = INS;
        let mut map = AffinityMap::new();
        map.insert(a, b);
        map.insert(b, a);
        let mut store = SequenceStore::new(5, &[a]);
        store.on_new_affinity(a, b, &map, 100_000);
        store.on_new_affinity(b, a, &map, 100_000);
        assert!(store.sequences().iter().all(|s| s.len() <= 5));
    }
}
