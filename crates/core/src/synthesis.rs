//! Progressive sequence synthesis — Algorithm 3 of the paper.
//!
//! The *Prefix Sequence* index `PS` maps `(ending type τ, length λ)` to the
//! indexes of already-generated sequences in `S`, so that when a new affinity
//! `t1 → t2` is discovered, only the sequences containing that new affinity
//! are synthesized (Figure 6), never the whole space again.

use crate::affinity::AffinityMap;
use lego_sqlast::StmtKind;
use std::collections::{HashMap, HashSet};

/// The synthesized-sequence store: `S`, `PS`, and the length limit `LEN`.
#[derive(Clone, Debug)]
pub struct SequenceStore {
    seqs: Vec<Vec<StmtKind>>,
    ps: HashMap<(StmtKind, usize), Vec<usize>>,
    /// Every sequence ever recorded; [`SequenceStore::record`] uses it to
    /// drop duplicates, so re-discovering an affinity (or reaching the same
    /// sequence through two synthesis paths) never re-instantiates it.
    seen: HashSet<Vec<StmtKind>>,
    max_len: usize,
    /// Global cap on stored sequences (state-explosion guard, § II C1).
    cap: usize,
    /// How many sequences were dropped due to caps (reported, never silent).
    pub truncated: usize,
}

impl SequenceStore {
    /// `max_len` is the paper's `LEN` (default 5 in [`crate::Config`]);
    /// `starters` seed the store with length-1 prefixes ("beginning from
    /// specific starting statement types, e.g. CREATE TABLE").
    pub fn new(max_len: usize, starters: &[StmtKind]) -> Self {
        assert!(max_len >= 2, "LEN must allow at least one affinity");
        let mut store = Self {
            seqs: Vec::new(),
            ps: HashMap::new(),
            seen: HashSet::new(),
            max_len,
            cap: 200_000,
            truncated: 0,
        };
        for &s in starters {
            store.record(vec![s]);
        }
        store
    }

    /// Rebuild a store from a checkpointed sequence list (in original record
    /// order, which reconstructs the `PS` index exactly) plus the truncation
    /// counter. The starters are already part of `seqs`, so the caller passes
    /// the full list and no separate starter set.
    pub fn from_parts(max_len: usize, seqs: Vec<Vec<StmtKind>>, truncated: usize) -> Self {
        assert!(max_len >= 2, "LEN must allow at least one affinity");
        let mut store = Self {
            seqs: Vec::new(),
            ps: HashMap::new(),
            seen: HashSet::new(),
            max_len,
            cap: 200_000,
            truncated: 0,
        };
        for seq in seqs {
            store.record(seq);
        }
        store.truncated = truncated;
        store
    }

    pub fn max_len(&self) -> usize {
        self.max_len
    }

    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    pub fn sequences(&self) -> &[Vec<StmtKind>] {
        &self.seqs
    }

    fn record(&mut self, seq: Vec<StmtKind>) -> Option<usize> {
        // Duplicate guard: the same sequence can be reached through several
        // synthesis paths (and `on_new_affinity` re-extends every matching
        // prefix each call); recording it again would double its `PS` entry
        // and re-instantiate it forever.
        if self.seen.contains(&seq) {
            return None;
        }
        if self.seqs.len() >= self.cap {
            self.truncated += 1;
            return None;
        }
        self.seen.insert(seq.clone());
        let idx = self.seqs.len();
        let key = (*seq.last().expect("sequences are non-empty"), seq.len());
        self.ps.entry(key).or_default().push(idx);
        self.seqs.push(seq);
        Some(idx)
    }

    /// Algorithm 3: when affinity `t1 → t2` is newly discovered, synthesize
    /// every new sequence (≤ `LEN`) containing it, up to `limit` sequences
    /// per call (an engineering guard; overflow is counted in `truncated`).
    pub fn on_new_affinity(
        &mut self,
        t1: StmtKind,
        t2: StmtKind,
        map: &AffinityMap,
        limit: usize,
    ) -> Vec<Vec<StmtKind>> {
        let mut out: Vec<Vec<StmtKind>> = Vec::new();
        for level in 1..self.max_len {
            let prefix_idx: Vec<usize> = match self.ps.get(&(t1, level)) {
                None => continue,
                Some(v) => v.clone(),
            };
            for seq_index in prefix_idx {
                if out.len() >= limit {
                    self.truncated += 1;
                    return out;
                }
                let mut seq = self.seqs[seq_index].clone();
                seq.push(t2);
                if self.record(seq.clone()).is_some() {
                    out.push(seq.clone());
                }
                self.list_seq(level + 1, t2, &mut seq, map, limit, &mut out);
            }
        }
        out
    }

    /// The recursive `listSeq` of Algorithm 3: extend `seq` with every
    /// affinity-compatible next type until `LEN`.
    fn list_seq(
        &mut self,
        level: usize,
        node_type: StmtKind,
        seq: &mut Vec<StmtKind>,
        map: &AffinityMap,
        limit: usize,
        out: &mut Vec<Vec<StmtKind>>,
    ) {
        if level >= self.max_len {
            return;
        }
        let succ: Vec<StmtKind> = map.successors(node_type).collect();
        for next in succ {
            if out.len() >= limit {
                self.truncated += 1;
                return;
            }
            seq.push(next);
            self.list_seq(level + 1, next, seq, map, limit, out);
            if out.len() >= limit {
                self.truncated += 1;
                seq.pop();
                return;
            }
            if self.record(seq.clone()).is_some() {
                out.push(seq.clone());
            }
            seq.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlast::kind::{DdlVerb, ObjectKind, StandaloneKind, StmtKind};

    const CT: StmtKind = StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table);
    const INS: StmtKind = StmtKind::Other(StandaloneKind::Insert);
    const SEL: StmtKind = StmtKind::Other(StandaloneKind::Select);
    const UPD: StmtKind = StmtKind::Other(StandaloneKind::Update);

    #[test]
    fn paper_example_length_two() {
        // "suppose the length of target sequence is 2, current sequence is
        // CREATE TABLE, type-affinity is CREATE TABLE -> [INSERT, SELECT]:
        // we get CREATE TABLE, INSERT and CREATE TABLE, SELECT."
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(2, &[CT]);
        map.insert(CT, INS);
        let got = store.on_new_affinity(CT, INS, &map, 1000);
        assert_eq!(got, vec![vec![CT, INS]]);
        map.insert(CT, SEL);
        let got = store.on_new_affinity(CT, SEL, &map, 1000);
        assert_eq!(got, vec![vec![CT, SEL]]);
    }

    #[test]
    fn new_affinity_extends_existing_prefixes() {
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(3, &[CT]);
        map.insert(CT, INS);
        store.on_new_affinity(CT, INS, &map, 1000);
        map.insert(INS, SEL);
        let got = store.on_new_affinity(INS, SEL, &map, 1000);
        // Extends [CT, INS] -> [CT, INS, SEL]; no prefix ends with INS at
        // level 1 (INS is not a starter).
        assert!(got.contains(&vec![CT, INS, SEL]));
    }

    #[test]
    fn forward_closure_via_list_seq() {
        // Affinities arriving out of order still produce the full chain:
        // (INS, SEL) first (useless), then (CT, INS) triggers listSeq which
        // walks INS -> SEL.
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(3, &[CT]);
        map.insert(INS, SEL);
        let got = store.on_new_affinity(INS, SEL, &map, 1000);
        assert!(got.is_empty());
        map.insert(CT, INS);
        let got = store.on_new_affinity(CT, INS, &map, 1000);
        assert!(got.contains(&vec![CT, INS]));
        assert!(got.contains(&vec![CT, INS, SEL]));
    }

    #[test]
    fn sequences_never_exceed_len() {
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(4, &[CT]);
        for (a, b) in [(CT, INS), (INS, SEL), (SEL, UPD), (UPD, INS)] {
            map.insert(a, b);
            store.on_new_affinity(a, b, &map, 10_000);
        }
        assert!(store.sequences().iter().all(|s| s.len() <= 4));
        assert!(store.sequences().iter().any(|s| s.len() == 4));
    }

    #[test]
    fn per_call_limit_counts_truncation() {
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(5, &[CT]);
        // A dense affinity graph explodes; the limit must hold.
        let kinds = [CT, INS, SEL, UPD];
        for &a in &kinds {
            for &b in &kinds {
                if a != b {
                    map.insert(a, b);
                }
            }
        }
        let got = store.on_new_affinity(CT, INS, &map, 16);
        assert!(got.len() <= 16);
        assert!(store.truncated > 0);
    }

    #[test]
    fn repeated_affinity_discovery_is_idempotent() {
        // `on_new_affinity` called twice for the same pair must not record
        // (and hence never re-instantiate) the same sequences again.
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(3, &[CT]);
        map.insert(CT, INS);
        let first = store.on_new_affinity(CT, INS, &map, 1000);
        assert!(!first.is_empty());
        let before = store.len();
        let again = store.on_new_affinity(CT, INS, &map, 1000);
        assert!(again.is_empty(), "duplicate discovery synthesized {again:?}");
        assert_eq!(store.len(), before);
    }

    #[test]
    fn from_parts_reconstructs_the_prefix_index() {
        let mut map = AffinityMap::new();
        let mut store = SequenceStore::new(3, &[CT]);
        map.insert(CT, INS);
        store.on_new_affinity(CT, INS, &map, 1000);
        let rebuilt = SequenceStore::from_parts(3, store.sequences().to_vec(), store.truncated);
        assert_eq!(rebuilt.sequences(), store.sequences());
        // The rebuilt PS index must extend prefixes exactly like the
        // original would.
        map.insert(INS, SEL);
        let (mut a, mut b) = (store, rebuilt);
        assert_eq!(
            a.on_new_affinity(INS, SEL, &map, 1000),
            b.on_new_affinity(INS, SEL, &map, 1000)
        );
    }

    #[test]
    fn duplicate_cycles_are_bounded_by_len() {
        // A <-> B ping-pong must terminate at LEN.
        let a = CT;
        let b = INS;
        let mut map = AffinityMap::new();
        map.insert(a, b);
        map.insert(b, a);
        let mut store = SequenceStore::new(5, &[a]);
        store.on_new_affinity(a, b, &map, 100_000);
        store.on_new_affinity(b, a, &map, 100_000);
        assert!(store.sequences().iter().all(|s| s.len() <= 5));
    }
}
