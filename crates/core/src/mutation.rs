//! Conventional (syntax-preserving, within-statement) mutations — the
//! structure/data mutations all coverage-guided DBMS fuzzers share
//! (SQUIRREL-style), deliberately *unable* to change the SQL Type Sequence.

use crate::gen::{gen_expr, gen_literal, SchemaModel};
use crate::instantiate::fix_case;
use lego_sqlast::ast::*;
use lego_sqlast::expr::*;
use lego_sqlast::skeleton::rebind;
use lego_sqlast::{Dialect, TestCase};
use lego_sqlsema::Sema;
use rand::rngs::SmallRng;
use rand::Rng;

/// Apply one random within-statement mutation to a random statement of the
/// case; the result keeps the exact same SQL Type Sequence.
pub fn conventional_mutate(case: &TestCase, rng: &mut SmallRng) -> TestCase {
    conventional_mutate_stacked(case, rng, 1)
}

/// Apply up to `stack` within-statement mutations (SQUIRREL stacks several
/// structure/data edits per generated input).
pub fn conventional_mutate_stacked(case: &TestCase, rng: &mut SmallRng, stack: usize) -> TestCase {
    let mut out = case.clone();
    if out.statements.is_empty() {
        return out;
    }
    let n = rng.gen_range(1..=stack.max(1));
    for _ in 0..n {
        let idx = rng.gen_range(0..out.statements.len());
        let schema = SchemaModel::of_statements(&out.statements[..idx]);
        let cols = schema.random_table(rng).map(|t| t.columns.clone()).unwrap_or_default();
        let before = out.statements[idx].kind();
        mutate_statement(&mut out.statements[idx], &cols, rng);
        debug_assert_eq!(
            out.statements[idx].kind(),
            before,
            "conventional mutation changed the type"
        );
    }
    fix_case(&mut out, rng);
    out
}

/// The relation name a statement *introduces* (as opposed to references);
/// [`sema_repair`] must not rewrite it, or a CREATE would collide with the
/// very relation the repair redirected it to.
fn defined_relation(stmt: &Statement) -> Option<&str> {
    match stmt {
        Statement::CreateTable(c) => Some(&c.name),
        Statement::CreateView(c) => Some(&c.name),
        Statement::CreateTableAs { name, .. } => Some(name),
        Statement::AlterTable(a) => match &a.action {
            AlterTableAction::RenameTo(n) => Some(n),
            _ => None,
        },
        _ => None,
    }
}

/// Dependency repair for `--sema` campaigns: walk the static binder over the
/// case and rewrite every table reference the binder can *prove* dangling
/// (the relation definitely does not exist at that point) to the
/// alphabetically first relation in scope. Definition targets are exempt,
/// and references the binder is merely unsure about are left alone — only
/// provably-dead edges get repaired. The binder steps over each repaired
/// statement, so later statements bind against the post-repair scope.
///
/// Deterministic by construction (no RNG draws), which keeps `--sema`
/// campaigns replay-identical. Returns the number of rewritten references.
pub fn sema_repair(case: &mut TestCase, dialect: Dialect) -> usize {
    let mut binder = Sema::new(dialect).binder();
    let mut repaired = 0usize;
    for stmt in &mut case.statements {
        let in_scope = binder.relations_in_scope();
        if let Some(target) = in_scope.first() {
            let defined = defined_relation(stmt).map(str::to_owned);
            rebind(
                stmt,
                |t: &mut String| {
                    if defined.as_deref() != Some(t.as_str())
                        && binder.relation_definitely_absent(t)
                    {
                        *t = target.clone();
                        repaired += 1;
                    }
                },
                |_c| {},
                |_l| {},
            );
        }
        binder.step(stmt);
    }
    repaired
}

fn mutate_statement(stmt: &mut Statement, cols: &[(String, DataType)], rng: &mut SmallRng) {
    // Try a structure mutation specific to the statement shape; fall back to
    // literal tweaking, which applies to anything with data.
    let done = match stmt {
        Statement::Select(s) => mutate_query(&mut s.query, cols, rng),
        Statement::Update(u) => {
            match rng.gen_range(0..3) {
                0 => {
                    u.where_ = if u.where_.is_some() && rng.gen_bool(0.5) {
                        None
                    } else {
                        Some(gen_expr(cols, rng, 2))
                    };
                }
                1 => {
                    if let Some((_, e)) = u.assignments.first_mut() {
                        *e = gen_expr(cols, rng, 1);
                    }
                }
                _ => {
                    if !cols.is_empty() {
                        let c = cols[rng.gen_range(0..cols.len())].clone();
                        u.assignments.push((c.0, gen_literal(c.1, rng)));
                    }
                }
            }
            true
        }
        Statement::Delete(d) => {
            d.where_ = if d.where_.is_some() && rng.gen_bool(0.4) {
                None
            } else {
                Some(gen_expr(cols, rng, 2))
            };
            true
        }
        Statement::Insert(i) => {
            match (&mut i.source, rng.gen_range(0..3)) {
                (InsertSource::Values(rows), 0) => {
                    // Add a row shaped like the first.
                    if let Some(first) = rows.first().cloned() {
                        rows.push(first.iter().map(|_| gen_literal(DataType::Int, rng)).collect());
                    }
                    true
                }
                (InsertSource::Values(rows), 1) => {
                    if rows.len() > 1 {
                        let k = rng.gen_range(0..rows.len());
                        rows.remove(k);
                    }
                    true
                }
                _ => {
                    // Toggling IGNORE is a structure change, not a type change.
                    i.ignore = !i.ignore;
                    true
                }
            }
        }
        Statement::CreateIndex(ci) => {
            ci.unique = !ci.unique;
            true
        }
        Statement::CreateView(v) => mutate_query(&mut v.query, cols, rng),
        Statement::With(w) => match &mut *w.body {
            Statement::Select(s) => mutate_query(&mut s.query, cols, rng),
            Statement::Delete(d) => {
                d.where_ = Some(gen_expr(cols, rng, 1));
                true
            }
            _ => false,
        },
        _ => false,
    };
    if !done {
        // Data mutation: perturb literals in place.
        rebind(
            stmt,
            |_t| {},
            |_c| {},
            |l| {
                if rng.gen_bool(0.5) {
                    match l {
                        Expr::Integer(v) => {
                            *v = v
                                .wrapping_add(rng.gen_range(-10i64..100))
                                .wrapping_mul(if rng.gen_bool(0.1) { -1 } else { 1 })
                        }
                        Expr::Float(v) => *v *= 2.5,
                        Expr::Str(s) => s.push('x'),
                        Expr::Bool(b) => *b = !*b,
                        _ => {}
                    }
                }
            },
        );
    }
}

/// Structure mutations over a query (the grey "mutation areas" of Fig. 1).
fn mutate_query(q: &mut Query, cols: &[(String, DataType)], rng: &mut SmallRng) -> bool {
    match rng.gen_range(0..6) {
        0 => {
            // WHERE add/replace/remove — the paper's running example turns
            // `WHERE v1=1` into `ORDER BY v1`.
            if let SetExpr::Select(sel) = &mut q.body {
                sel.where_ = if sel.where_.is_some() && rng.gen_bool(0.4) {
                    None
                } else {
                    Some(gen_expr(cols, rng, 2))
                };
                return true;
            }
            false
        }
        1 => {
            if q.order_by.is_empty() && !cols.is_empty() {
                q.order_by.push(OrderItem {
                    expr: Expr::col(cols[rng.gen_range(0..cols.len())].0.clone()),
                    desc: rng.gen_bool(0.5),
                });
            } else if !q.order_by.is_empty() {
                if rng.gen_bool(0.5) {
                    q.order_by[0].desc = !q.order_by[0].desc;
                } else {
                    q.order_by.clear();
                }
            }
            true
        }
        2 => {
            if let SetExpr::Select(sel) = &mut q.body {
                sel.distinct = !sel.distinct;
                return true;
            }
            false
        }
        3 => {
            q.limit = match q.limit {
                Some(_) if rng.gen_bool(0.4) => None,
                _ => Some(Expr::Integer(rng.gen_range(0..100))),
            };
            true
        }
        4 => {
            if let SetExpr::Select(sel) = &mut q.body {
                if sel.group_by.is_empty() && !cols.is_empty() {
                    let key = cols[rng.gen_range(0..cols.len())].0.clone();
                    sel.group_by = vec![Expr::col(key.clone())];
                    sel.projection = vec![
                        SelectItem::Expr { expr: Expr::col(key), alias: None },
                        SelectItem::Expr { expr: Expr::Func(FuncCall::star("COUNT")), alias: None },
                    ];
                } else {
                    sel.group_by.clear();
                }
                return true;
            }
            false
        }
        _ => {
            if let SetExpr::Select(sel) = &mut q.body {
                if !cols.is_empty() && rng.gen_bool(0.35) {
                    // Window-function projection (structure-level mutation).
                    let wf = ["ROW_NUMBER", "RANK", "LEAD"][rng.gen_range(0..3)];
                    let args = if wf == "LEAD" { vec![gen_expr(cols, rng, 0)] } else { vec![] };
                    sel.projection.push(SelectItem::Expr {
                        expr: Expr::Window {
                            func: FuncCall::new(wf, args),
                            spec: WindowSpec {
                                partition_by: vec![],
                                order_by: vec![OrderItem {
                                    expr: Expr::col(cols[rng.gen_range(0..cols.len())].0.clone()),
                                    desc: false,
                                }],
                                frame: None,
                            },
                        },
                        alias: None,
                    });
                } else {
                    sel.projection = vec![if rng.gen_bool(0.5) {
                        SelectItem::Star
                    } else {
                        SelectItem::Expr { expr: gen_expr(cols, rng, 1), alias: None }
                    }];
                }
                return true;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlparser::parse_script;
    use rand::SeedableRng;

    fn fig1_seed() -> TestCase {
        parse_script(
            "CREATE TABLE t1 (v1 INT, v2 INT);\n\
             INSERT INTO t1 VALUES (1, 1);\n\
             INSERT INTO t1 VALUES (2, 1);\n\
             SELECT v2 FROM t1 WHERE v1 = 1;",
        )
        .unwrap()
    }

    #[test]
    fn conventional_mutation_preserves_type_sequence() {
        let seed = fig1_seed();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let mutant = conventional_mutate(&seed, &mut rng);
            assert_eq!(mutant.type_sequence(), seed.type_sequence());
        }
    }

    #[test]
    fn conventional_mutation_changes_something() {
        let seed = fig1_seed();
        let mut rng = SmallRng::seed_from_u64(10);
        let changed =
            (0..50).map(|_| conventional_mutate(&seed, &mut rng)).filter(|m| *m != seed).count();
        assert!(changed > 30, "mutations were mostly no-ops: {changed}/50");
    }

    #[test]
    fn sema_repair_rewrites_dangling_references() {
        let mut case = parse_script(
            "CREATE TABLE t1 (v1 INT);\n\
             INSERT INTO missing VALUES (1);\n\
             SELECT * FROM nowhere;",
        )
        .unwrap();
        let n = sema_repair(&mut case, Dialect::Postgres);
        assert_eq!(n, 2, "both dangling references repaired: {}", case.to_sql());
        let sql = case.to_sql();
        assert!(!sql.contains("missing") && !sql.contains("nowhere"), "{sql}");
        // The repaired case now executes cleanly.
        let mut db = lego_dbms::Dbms::new(lego_sqlast::Dialect::Postgres);
        let r = db.execute_case(&case);
        assert!(r.errors.is_empty(), "repaired case still errors: {:?}", r.errors);
    }

    #[test]
    fn sema_repair_is_deterministic_and_leaves_valid_cases_alone() {
        let mut a = fig1_seed();
        let mut b = fig1_seed();
        assert_eq!(sema_repair(&mut a, Dialect::Postgres), 0);
        assert_eq!(sema_repair(&mut b, Dialect::Postgres), 0);
        assert_eq!(a, b);
        assert_eq!(a, fig1_seed(), "valid case must be untouched");
    }

    #[test]
    fn sema_repair_exempts_definition_targets() {
        // The CREATE's own name is absent by definition; repairing it into
        // the in-scope relation would produce a duplicate-table collision.
        let mut case = parse_script(
            "CREATE TABLE t1 (v1 INT);\n\
             CREATE TABLE t2 (v1 INT);",
        )
        .unwrap();
        assert_eq!(sema_repair(&mut case, Dialect::Postgres), 0);
        assert!(case.to_sql().contains("t2"));
    }

    #[test]
    fn mutants_remain_executable() {
        let seed = fig1_seed();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut clean = 0;
        for _ in 0..50 {
            let mutant = conventional_mutate(&seed, &mut rng);
            let mut db = lego_dbms::Dbms::new(lego_sqlast::Dialect::Postgres);
            let r = db.execute_case(&mutant);
            if r.errors.is_empty() {
                clean += 1;
            }
        }
        assert!(clean >= 35, "only {clean}/50 mutants executed cleanly");
    }
}
