//! The seed pool: retained test cases with selection heuristics.
//!
//! Coverage-guided fuzzers prefer small, fast seeds (paper § II C3 — a
//! 945-statement seed hung SQUIRREL for 23 minutes). Selection here is
//! biased toward short seeds and recent additions.

use lego_sqlast::TestCase;
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;

#[derive(Clone, Debug)]
pub struct Seed {
    /// Shared with the scheduler and corpus exports: admitting a case and
    /// re-scheduling it are `Arc` bumps, not deep clones of the AST.
    pub case: Arc<TestCase>,
    pub id: usize,
    /// Execution cost proxy: statements executed when first run.
    pub cost: usize,
    /// How many times this seed has been scheduled for mutation.
    pub scheduled: usize,
}

#[derive(Default)]
pub struct SeedPool {
    seeds: Vec<Seed>,
}

impl SeedPool {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, case: Arc<TestCase>, cost: usize) -> usize {
        let id = self.seeds.len();
        self.seeds.push(Seed { case, id, cost, scheduled: 0 });
        id
    }

    /// Rebuild a pool from checkpointed seeds. Ids are re-assigned by
    /// position, which matches how [`SeedPool::add`] assigned them.
    pub fn from_parts(seeds: Vec<(TestCase, usize, usize)>) -> Self {
        Self {
            seeds: seeds
                .into_iter()
                .enumerate()
                .map(|(id, (case, cost, scheduled))| Seed {
                    case: Arc::new(case),
                    id,
                    cost,
                    scheduled,
                })
                .collect(),
        }
    }

    /// Iterate retained seeds in insertion order (checkpoint serialization).
    pub fn seeds(&self) -> impl Iterator<Item = &Seed> {
        self.seeds.iter()
    }

    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    pub fn cases(&self) -> impl Iterator<Item = &Arc<TestCase>> {
        self.seeds.iter().map(|s| &s.case)
    }

    /// Pick the next seed to mutate: 60% favour the newest quarter (depth
    /// exploitation), otherwise a cost-weighted draw over the whole pool.
    pub fn pick(&mut self, rng: &mut SmallRng) -> Option<&Seed> {
        if self.seeds.is_empty() {
            return None;
        }
        let n = self.seeds.len();
        let idx = if rng.gen_bool(0.6) && n > 4 {
            rng.gen_range(n - n / 4..n)
        } else {
            // Two tries, keep the cheaper seed.
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if self.seeds[a].cost <= self.seeds[b].cost {
                a
            } else {
                b
            }
        };
        self.seeds[idx].scheduled += 1;
        Some(&self.seeds[idx])
    }

    pub fn get(&self, id: usize) -> Option<&Seed> {
        self.seeds.get(id)
    }

    /// Halve the most recently added seed's cost (floor 1), making it win
    /// more best-of-two draws in [`SeedPool::pick`]. Used by rule-coverage
    /// feedback to favour seeds that unlocked new grammar productions;
    /// deterministic (no RNG, pure function of pool state).
    pub fn boost_newest(&mut self) {
        if let Some(seed) = self.seeds.last_mut() {
            seed.cost = (seed.cost / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlparser::parse_script;
    use rand::SeedableRng;

    fn case(sql: &str) -> Arc<TestCase> {
        Arc::new(parse_script(sql).unwrap())
    }

    #[test]
    fn add_and_pick() {
        let mut pool = SeedPool::new();
        assert!(pool.pick(&mut SmallRng::seed_from_u64(0)).is_none());
        pool.add(case("SELECT 1;"), 1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(pool.pick(&mut rng).is_some());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn cheap_seeds_win_the_cost_weighted_arm() {
        // With <= 4 seeds the recency arm is disabled, so selection is pure
        // best-of-two on cost: the cheap seed must win ~75% of draws.
        let mut pool = SeedPool::new();
        pool.add(case("SELECT 1;"), 1);
        pool.add(case("SELECT 1; SELECT 2; SELECT 3; SELECT 4; SELECT 5;"), 50);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut cheap = 0;
        for _ in 0..600 {
            if pool.pick(&mut rng).unwrap().cost == 1 {
                cheap += 1;
            }
        }
        assert!(cheap > 380, "cheap picked only {cheap}/600");
    }

    #[test]
    fn recency_arm_fires_sixty_percent() {
        // 8 seeds; the newest quarter (ids 6, 7) is deliberately expensive,
        // so the cost-weighted arm almost never lands there (it picks an
        // expensive seed only when both of its draws are expensive:
        // (2/8)^2 ≈ 6%). Hits in the newest quarter therefore estimate the
        // recency-arm rate: 0.6 + 0.4·0.0625 ≈ 62.5% of 1000 draws. The old
        // 0.3 rate would put the expectation near 325 — far below the band.
        let mut pool = SeedPool::new();
        for _ in 0..6 {
            pool.add(case("SELECT 1;"), 1);
        }
        for _ in 0..2 {
            pool.add(case("SELECT 1; SELECT 2; SELECT 3;"), 100);
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let newest = (0..1000).filter(|_| pool.pick(&mut rng).unwrap().id >= 6).count();
        assert!((540..=710).contains(&newest), "newest-quarter picks = {newest}/1000");
    }

    #[test]
    fn boost_newest_halves_cost_with_floor_one() {
        let mut pool = SeedPool::new();
        pool.boost_newest(); // empty pool: no-op
        pool.add(case("SELECT 1;"), 9);
        pool.add(case("SELECT 2;"), 10);
        pool.boost_newest();
        assert_eq!(pool.get(1).unwrap().cost, 5);
        assert_eq!(pool.get(0).unwrap().cost, 9, "only the newest seed is boosted");
        for _ in 0..4 {
            pool.boost_newest();
        }
        assert_eq!(pool.get(1).unwrap().cost, 1);
    }

    #[test]
    fn scheduled_counter_increments() {
        let mut pool = SeedPool::new();
        let id = pool.add(case("SELECT 1;"), 1);
        let mut rng = SmallRng::seed_from_u64(1);
        pool.pick(&mut rng);
        assert_eq!(pool.get(id).unwrap().scheduled, 1);
    }
}
