//! Crash-reproducer reduction (triage support).
//!
//! The paper distinguishes bugs "from unique crashes by comparing the call
//! stack" and then analyzes them manually; a minimal reproducer makes that
//! manual step tractable. This module shrinks a crashing test case while
//! preserving the *same* crash (same stack hash):
//!
//! 1. statement-level delta debugging (drop chunks, then single statements),
//! 2. literal simplification (replace literals with canonical small values).
//!
//! The shrink algorithm itself lives in [`lego_oracle::reduce::reduce_with`],
//! parameterized over an arbitrary "still fails" predicate; this module
//! instantiates it with the crash predicate. The logic-bug instantiation is
//! [`lego_oracle::reduce::reduce_logic_bug`].

use lego_dbms::{CrashReport, Dbms};
use lego_oracle::reduce::reduce_with;
use lego_sqlast::{Dialect, TestCase};

/// Does this case still produce the same crash? Resets and reuses the one
/// triage instance rather than constructing a DBMS per candidate — reduction
/// runs hundreds of candidate executions per bug.
fn still_crashes(db: &mut Dbms, case: &TestCase, want: u64) -> bool {
    db.reset();
    let report = db.execute_case(case);
    let hit = report.crash().map(|c| c.stack_hash()) == Some(want);
    db.recycle(report.coverage);
    hit
}

/// Shrink a crashing test case, preserving its crash identity. Returns the
/// reduced case and the number of executions spent.
pub fn reduce_case(case: &TestCase, dialect: Dialect, crash: &CrashReport) -> (TestCase, usize) {
    let want = crash.stack_hash();
    let mut db = Dbms::new(dialect);
    debug_assert!(still_crashes(&mut db, case, want), "input must reproduce the crash");
    reduce_with(case, |candidate| still_crashes(&mut db, candidate, want))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure-3-style MySQL crasher padded with noise statements.
    fn noisy_crasher() -> TestCase {
        lego_sqlparser::parse_script(
            "CREATE TABLE pad1 (z INT);\n\
             INSERT INTO pad1 VALUES (123456);\n\
             CREATE TABLE v0 (v1 YEAR);\n\
             ANALYZE pad1;\n\
             INSERT INTO v0 VALUES (2021), (1999);\n\
             SELECT * FROM pad1;\n\
             CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0;\n\
             SELECT LEAD (v1) OVER (ORDER BY v1) AS v1 FROM v0;",
        )
        .unwrap()
    }

    fn crash_of(case: &TestCase) -> CrashReport {
        Dbms::new(Dialect::MySql).execute_case(case).crash().cloned().expect("must crash")
    }

    #[test]
    fn reducer_shrinks_and_preserves_the_crash() {
        let case = noisy_crasher();
        let crash = crash_of(&case);
        let (reduced, execs) = reduce_case(&case, Dialect::MySql, &crash);
        assert!(reduced.len() < case.len(), "no shrinkage: {}", reduced.to_sql());
        assert!(execs > 0);
        let re_crash = crash_of(&reduced);
        assert_eq!(re_crash.stack_hash(), crash.stack_hash());
        // The sequence kernel must survive: trigger + window select.
        let sql = reduced.to_sql();
        assert!(sql.contains("CREATE TRIGGER"), "{sql}");
        assert!(sql.contains("OVER"), "{sql}");
    }

    #[test]
    fn reducer_reaches_the_two_statement_kernel_for_the_case_study() {
        let case = lego_sqlparser::parse_script(
            "CREATE TABLE v0 (v1 INT);\n\
             SELECT 1;\n\
             CREATE RULE r1 AS ON INSERT TO v0 DO INSTEAD NOTIFY ch;\n\
             ANALYZE v0;\n\
             WITH c AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v1 = 0;",
        )
        .unwrap();
        let crash = Dbms::new(Dialect::Postgres)
            .execute_case(&case)
            .crash()
            .cloned()
            .expect("case-study crash");
        let (reduced, _) = reduce_case(&case, Dialect::Postgres, &crash);
        // CREATE TABLE + CREATE RULE + WITH is the irreducible core.
        assert!(reduced.len() <= 3, "{}", reduced.to_sql());
    }

    #[test]
    fn literals_are_simplified() {
        let case = noisy_crasher();
        let crash = crash_of(&case);
        let (reduced, _) = reduce_case(&case, Dialect::MySql, &crash);
        assert!(!reduced.to_sql().contains("123456"));
    }
}
