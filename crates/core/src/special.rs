//! "Special features" seed templates for grammar-rule coverage mode.
//!
//! FuzzySQL's observation (PAPERS.md): the hidden bugs live in the dialect
//! corners — views, triggers, rules, privileges, session state, bulk I/O,
//! window frames — exactly the grammar productions mundane seeds never
//! touch. These templates are deliberately *excluded* from
//! [`crate::seeds::initial_corpus`] (that corpus must stay mundane so
//! sequence synthesis has something to discover) and are only queued when
//! `Config::rule_cov` is on, where the rule-coverage map can credit them
//! for the productions they unlock and `rule_feedback` can boost the ones
//! that pay off.

use lego_sqlast::{Dialect, TestCase};

/// The raw template scripts for a dialect (public so tests and docs can
/// show them). Order is fixed — the campaign queue is deterministic.
pub fn special_scripts(dialect: Dialect) -> Vec<&'static str> {
    let mut scripts = vec![
        // Views over a base table, then a query through the view.
        "CREATE TABLE s1 (a INT, b INT);\n\
         INSERT INTO s1 VALUES (1, 2);\n\
         CREATE VIEW sv1 AS SELECT a, b FROM s1 WHERE a > 0;\n\
         SELECT * FROM sv1;\n\
         DROP VIEW sv1;",
        // Trigger-ish DDL: AFTER INSERT trigger plus the firing insert.
        "CREATE TABLE s2 (n INT);\n\
         CREATE TRIGGER st2 AFTER INSERT ON s2 FOR EACH ROW UPDATE s2 SET n = 0;\n\
         INSERT INTO s2 VALUES (7);\n\
         DROP TRIGGER st2;",
        // Privileges: GRANT then REVOKE on the same object.
        "CREATE TABLE s3 (x INT);\n\
         GRANT SELECT, INSERT ON s3 TO u1;\n\
         INSERT INTO s3 VALUES (3);\n\
         REVOKE INSERT ON s3 FROM u1;",
        // Session state: SET variants around a query.
        "CREATE TABLE s4 (v INT);\n\
         SET search_mode = 'strict';\n\
         INSERT INTO s4 VALUES (4);\n\
         SET @@SESSION.explicit_for_timestamp = OFF;\n\
         SELECT v FROM s4;",
        // Bulk I/O: COPY both directions.
        "CREATE TABLE s5 (c INT);\n\
         COPY s5 FROM STDIN;\n\
         COPY s5 TO STDOUT;\n\
         SELECT COUNT(*) FROM s5;",
        // Window frames: ROWS BETWEEN with ORDER BY inside OVER.
        "CREATE TABLE s6 (g INT, v INT);\n\
         INSERT INTO s6 VALUES (1, 10);\n\
         INSERT INTO s6 VALUES (1, 20);\n\
         SELECT g, SUM(v) OVER (PARTITION BY g ORDER BY v ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM s6;",
    ];
    if dialect == Dialect::Postgres {
        // CREATE RULE is the Postgres-only corner from the paper's case
        // study (§ V-C).
        scripts.push(
            "CREATE TABLE s7 (r INT);\n\
             CREATE RULE sr7 AS ON INSERT TO s7 DO NOTHING;\n\
             INSERT INTO s7 VALUES (1);\n\
             DROP RULE sr7;",
        );
    }
    scripts
}

/// The parsed template pack for a dialect.
pub fn special_templates(dialect: Dialect) -> Vec<TestCase> {
    special_scripts(dialect)
        .iter()
        .map(|s| {
            lego_sqlparser::parse_script(s)
                .unwrap_or_else(|e| panic!("bad special template for {dialect:?}: {e}\n{s}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_templates_parse_and_roundtrip_for_every_dialect() {
        for d in Dialect::ALL {
            let pack = special_templates(d);
            assert!(pack.len() >= 6, "{d:?}");
            for case in pack {
                let sql = case.to_sql();
                let again = lego_sqlparser::parse_script(&sql)
                    .unwrap_or_else(|e| panic!("{d:?} template does not roundtrip: {e}\n{sql}"));
                assert_eq!(case, again);
            }
        }
    }

    #[test]
    fn special_templates_cover_the_exotic_grammar() {
        let all = special_scripts(Dialect::Postgres).join("\n");
        for needle in ["VIEW", "TRIGGER", "GRANT", "REVOKE", "SET", "COPY", "OVER (", "RULE"] {
            assert!(all.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn special_templates_traverse_rules_the_seed_corpus_does_not() {
        use lego_coverage::{CovRecorder, GlobalCoverage};
        let mut virgin = GlobalCoverage::new();
        for case in crate::seeds::initial_corpus(Dialect::Postgres) {
            let (_, map) = lego_sqlparser::parse_script_traced(&case.to_sql(), CovRecorder::new());
            virgin.merge(&map);
        }
        // Every template must unlock at least one parser rule edge the
        // mundane corpus never traversed.
        for case in special_templates(Dialect::Postgres) {
            let sql = case.to_sql();
            let (_, map) = lego_sqlparser::parse_script_traced(&sql, CovRecorder::new());
            let mut probe = GlobalCoverage::from_sparse(&virgin.to_sparse());
            assert!(probe.merge(&map), "template adds no new rules:\n{sql}");
        }
    }
}
